//! The ε̂-parameterized `C_ε` oracle: judges `CERTIFY` events against
//! the clock readings actually recorded in the execution.
//!
//! Two clauses:
//!
//! 1. **Soundness** — every certificate must be *true*: at each
//!    `CERTIFY`, the pairwise skew between the certifying node and each
//!    covered peer (reconstructed from the latest recorded
//!    `clock − now` of each node, plus a small drift slack) must not
//!    exceed the certified ε̂. A component that certifies a bound it did
//!    not achieve fails here.
//! 2. **Achievement** — the protocol must actually *deliver*: every
//!    node's last certificate must cover all of its peers and certify
//!    `ε̂ ≤ bound`, the Theorem 6.5-style prediction the caller derives
//!    from `(d₂ − d₁, ρ, horizon)` (see [`predicted_eps_hat`]). A
//!    planted bug that silently widens ε̂ — the `sync_skew_burst`
//!    canary's held echoes — fails here.
//!
//! The oracle's name starts with `C_eps`, like the constant-ε `C_ε`
//! probe it parameterizes, so campaign tooling that matches oracles by
//! prefix treats both as the same family.

use std::collections::BTreeMap;

use psync_automata::{Execution, Verdict};
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};
use psync_verify::Oracle;

use crate::probe::{SyncAction, SyncOp};

/// The ε̂ a clean probe-sync fleet is predicted to achieve by the end of
/// a run of length `horizon`: one sample's irreducible width `d₂ − d₁`,
/// plus the drift the offsets themselves can accumulate (`|θ| ≤ 2ρT`,
/// which also bounds how far off-center the surviving interval sits),
/// plus `slack` for quantization and sample-to-cert widening.
///
/// This is the bound the differential tests pin measurements against,
/// and the Theorem 6.5 bridge: the theorem prices Algorithm S's
/// read/write times in ε, and this is the ε the protocol delivers.
#[must_use]
pub fn predicted_eps_hat(d1: Duration, d2: Duration, rho_ppm: i64, horizon: Time) -> Duration {
    (d2 - d1) + horizon.elapsed().scale_ppm(4 * rho_ppm) + Duration::from_micros(500)
}

/// The ε̂-parameterized `C_ε` oracle over a sync fleet's execution.
///
/// Assumes the fleet's clock nodes are named `n0 … n{N−1}` matching
/// `NodeId(0) … NodeId(N−1)` (the convention of every scenario factory
/// and of [`build_sync_fleet`](crate::build_sync_fleet)).
pub struct EpsHatOracle {
    nodes: usize,
    bound: Duration,
    slack: Duration,
}

impl EpsHatOracle {
    /// An oracle for an `nodes`-node fleet whose achieved ε̂ must come
    /// in under `bound`, with the default 100 µs soundness slack.
    #[must_use]
    pub fn new(nodes: usize, bound: Duration) -> EpsHatOracle {
        EpsHatOracle::with_slack(nodes, bound, Duration::from_micros(100))
    }

    /// As [`EpsHatOracle::new`] with an explicit soundness slack: the
    /// allowance for drift between a peer's latest recorded clock
    /// reading and the certification instant.
    #[must_use]
    pub fn with_slack(nodes: usize, bound: Duration, slack: Duration) -> EpsHatOracle {
        assert!(nodes >= 2, "a sync fleet needs at least two nodes");
        assert!(!slack.is_negative(), "slack must be non-negative");
        EpsHatOracle {
            nodes,
            bound,
            slack,
        }
    }
}

impl Oracle<SyncAction> for EpsHatOracle {
    fn name(&self) -> String {
        format!("C_eps(ε̂ achieved, bound {})", self.bound)
    }

    fn check(&self, exec: &Execution<SyncAction>) -> Verdict {
        // Latest clock−now offset per node name, updated as events pass.
        let mut offsets: BTreeMap<String, Duration> = BTreeMap::new();
        let mut last_cert: BTreeMap<usize, (Duration, Vec<NodeId>)> = BTreeMap::new();
        for (i, e) in exec.events().iter().enumerate() {
            if let (Some(clock), Some(node)) = (e.clock, e.node.as_ref()) {
                offsets.insert(node.to_string(), clock - e.now);
            }
            if let SysAction::App(SyncOp::Certify {
                node,
                round,
                eps_hat,
                peers,
            }) = &e.action
            {
                if let Some(mine) = offsets.get(&node.to_string()) {
                    for peer in peers {
                        let Some(theirs) = offsets.get(&peer.to_string()) else {
                            continue;
                        };
                        let skew = (*mine - *theirs).abs();
                        if skew > *eps_hat + self.slack {
                            return Verdict::violated(format!(
                                "event {i}: {node} certified ε̂ = {eps_hat} for round \
                                 {round}, but its skew to covered peer {peer} is {skew}"
                            ));
                        }
                    }
                }
                last_cert.insert(node.0, (*eps_hat, peers.clone()));
            }
        }
        for n in 0..self.nodes {
            let Some((eps_hat, peers)) = last_cert.get(&n) else {
                return Verdict::violated(format!("node {} never certified", NodeId(n)));
            };
            if peers.len() != self.nodes - 1 {
                return Verdict::violated(format!(
                    "node {}'s final certificate covers {}/{} peers",
                    NodeId(n),
                    peers.len(),
                    self.nodes - 1
                ));
            }
            if *eps_hat > self.bound {
                return Verdict::violated(format!(
                    "node {} achieved ε̂ = {eps_hat}, over the predicted bound {}",
                    NodeId(n),
                    self.bound
                ));
            }
        }
        Verdict::Holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::{ActionKind, TimedEvent};
    use std::sync::Arc;

    fn clocked(node: usize, ms: i64, skew_us: i64) -> TimedEvent<SyncAction> {
        let now = Time::ZERO + Duration::from_millis(ms);
        TimedEvent {
            action: SysAction::Tick {
                node: NodeId(node),
                clock: now + Duration::from_micros(skew_us),
            },
            kind: ActionKind::Internal,
            now,
            clock: Some(now + Duration::from_micros(skew_us)),
            node: Some(Arc::from(format!("n{node}").as_str())),
        }
    }

    fn cert(node: usize, ms: i64, eps_hat_us: i64, peers: Vec<usize>) -> TimedEvent<SyncAction> {
        let now = Time::ZERO + Duration::from_millis(ms);
        TimedEvent {
            action: SysAction::App(SyncOp::Certify {
                node: NodeId(node),
                round: 0,
                eps_hat: Duration::from_micros(eps_hat_us),
                peers: peers.into_iter().map(NodeId).collect(),
            }),
            kind: ActionKind::Output,
            now,
            clock: Some(now),
            node: Some(Arc::from(format!("n{node}").as_str())),
        }
    }

    fn exec(events: Vec<TimedEvent<SyncAction>>) -> Execution<SyncAction> {
        let ltime = events.last().map_or(Time::ZERO, |e| e.now);
        Execution::new(events, ltime)
    }

    #[test]
    fn clean_certificates_hold() {
        let o = EpsHatOracle::new(2, Duration::from_millis(3));
        let v = o.check(&exec(vec![
            clocked(0, 10, 40),
            clocked(1, 11, -50),
            cert(0, 15, 2000, vec![1]),
            cert(1, 16, 2000, vec![0]),
        ]));
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn unsound_certificate_is_violated() {
        let o = EpsHatOracle::new(2, Duration::from_millis(3));
        // True skew 900 µs, certified 100 µs: clause 1.
        let v = o.check(&exec(vec![
            clocked(0, 10, 500),
            clocked(1, 11, -400),
            cert(0, 15, 100, vec![1]),
            cert(1, 16, 2000, vec![0]),
        ]));
        assert!(!v.holds());
    }

    #[test]
    fn overshooting_or_missing_certificates_are_violated() {
        let o = EpsHatOracle::new(2, Duration::from_millis(3));
        // ε̂ over the bound: clause 2.
        let wide = o.check(&exec(vec![
            cert(0, 15, 4000, vec![1]),
            cert(1, 16, 2000, vec![0]),
        ]));
        assert!(!wide.holds());
        // Node 1 silent: clause 2.
        let silent = o.check(&exec(vec![cert(0, 15, 2000, vec![1])]));
        assert!(!silent.holds());
        // Covered set short of the peer count: clause 2.
        let short = o.check(&exec(vec![
            cert(0, 15, 2000, vec![]),
            cert(1, 16, 2000, vec![0]),
        ]));
        assert!(!short.holds());
        // And the name keeps the C_eps family prefix campaigns match on.
        assert!(o.name().starts_with("C_eps"));
    }

    #[test]
    fn predicted_bound_grows_with_jitter_and_drift() {
        let ms = Duration::from_millis;
        let horizon = Time::ZERO + ms(300);
        let base = predicted_eps_hat(ms(1), ms(3), 0, horizon);
        assert_eq!(base, ms(2) + Duration::from_micros(500));
        let drifty = predicted_eps_hat(ms(1), ms(3), 400, horizon);
        assert!(drifty > base);
        let wider = predicted_eps_hat(ms(1), ms(4), 400, horizon);
        assert!(wider > drifty);
    }
}
