//! A ready-made probe-sync fleet: N drifting clock nodes, fully
//! connected by `[d₁, d₂]` channels, each running [`ProbeSync`].
//!
//! Used by the differential ε̂ tests, the checkpoint round-trip tests
//! and the `sync_eps` bench; the explorer's catalog scenarios build the
//! same shape through its fault-injection machinery instead.

use psync_executor::{ClockNode, DriftClock, Engine};
use psync_net::{Channel, NodeId, SeededDelay};
use psync_time::{DelayBounds, Duration, Time};

use crate::probe::{ProbeSync, SyncAction, SyncMsg, SyncOp, SyncParams};

/// Parameters of a [`build_sync_fleet`] fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Fleet size (≥ 2).
    pub nodes: usize,
    /// Channel delay lower bound `d₁`.
    pub d1: Duration,
    /// Channel delay upper bound `d₂`.
    pub d2: Duration,
    /// Configured envelope ε (the a-priori bound the protocol beats).
    pub eps: Duration,
    /// Base drift rate: node `i` runs at the `i`-th entry of
    /// [`drift_rates`]`(nodes, base_ppm)`.
    pub base_ppm: i64,
    /// Round period in clock time.
    pub period: Duration,
    /// Probes per peer per round.
    pub burst: u32,
    /// Estimate grace, in rounds.
    pub grace: u64,
    /// Responder echo hold (zero = honest; see `SyncParams::echo_hold`).
    pub echo_hold: Duration,
    /// Run horizon (real time).
    pub horizon: Time,
    /// Seed for the channels' delay choices.
    pub seed: u64,
}

impl FleetSpec {
    /// A small honest fleet with the catalog's default envelope:
    /// `d ∈ [1 ms, 3 ms]`, `ε = 2 ms`, 200 ppm base drift, 20 ms rounds,
    /// 2-probe bursts, 300 ms horizon.
    #[must_use]
    pub fn demo(nodes: usize, seed: u64) -> FleetSpec {
        FleetSpec {
            nodes,
            d1: Duration::from_millis(1),
            d2: Duration::from_millis(3),
            eps: Duration::from_millis(2),
            base_ppm: 200,
            period: Duration::from_millis(20),
            burst: 2,
            grace: 1,
            echo_hold: Duration::ZERO,
            horizon: Time::ZERO + Duration::from_millis(300),
            seed,
        }
    }
}

/// The fleet's drift-rate pattern: `[0, +b, −b, +2b, −2b, …]` ppm — the
/// worst pair diverges at `2·⌊n/2⌋·b` ppm, exercising both drift signs.
#[must_use]
pub fn drift_rates(nodes: usize, base_ppm: i64) -> Vec<i64> {
    (0..nodes)
        .map(|i| {
            let step = i.div_ceil(2) as i64;
            if i % 2 == 1 {
                step * base_ppm
            } else {
                -step * base_ppm
            }
        })
        .collect()
}

/// The largest drift-rate magnitude in [`drift_rates`] — the ρ each
/// component's drift margins must assume.
#[must_use]
pub fn rho_max(nodes: usize, base_ppm: i64) -> i64 {
    (nodes as i64 / 2) * base_ppm
}

/// Builds the fleet: one `ClockNode` per node (named `n{i}`, running a
/// [`DriftClock`] at the [`drift_rates`] pattern) with a [`ProbeSync`]
/// component, plus a seeded `[d₁, d₂]` channel per directed pair.
///
/// # Panics
///
/// Panics when the spec is degenerate (`nodes < 2`, invalid bounds) or
/// when the drift a clock can accumulate over the horizon reaches ε —
/// the `DriftClock` would snap its offset mid-run and break the
/// rate-≈1 assumption the offset intervals rely on.
#[must_use]
pub fn build_sync_fleet(spec: &FleetSpec) -> Engine<SyncAction> {
    assert!(spec.nodes >= 2, "a sync fleet needs at least two nodes");
    let rho = rho_max(spec.nodes, spec.base_ppm);
    assert!(
        spec.horizon.elapsed().scale_ppm(rho) < spec.eps,
        "drift over the horizon must stay inside ε (no sawtooth wraps)"
    );
    let rates = drift_rates(spec.nodes, spec.base_ppm);
    let bounds = DelayBounds::new(spec.d1, spec.d2).expect("fleet delay bounds");
    let mut builder = Engine::builder();
    for (i, &rate) in rates.iter().enumerate() {
        let peers: Vec<NodeId> = (0..spec.nodes).filter(|&j| j != i).map(NodeId).collect();
        let comp = ProbeSync::new(SyncParams {
            me: NodeId(i),
            peers,
            d1: spec.d1,
            d2: spec.d2,
            eps: spec.eps,
            rho_ppm: rho,
            period: spec.period,
            burst: spec.burst,
            grace: spec.grace,
            echo_hold: spec.echo_hold,
        });
        builder = builder.clock_node(
            ClockNode::new(format!("{}", NodeId(i)), spec.eps, DriftClock::new(rate)).with(comp),
        );
    }
    for i in 0..spec.nodes {
        for j in 0..spec.nodes {
            if i == j {
                continue;
            }
            let edge_seed = spec
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((i as u64) << 32) | j as u64);
            builder = builder.timed(Channel::<SyncMsg, SyncOp>::new(
                NodeId(i),
                NodeId(j),
                bounds,
                SeededDelay::new(edge_seed),
            ));
        }
    }
    builder.horizon(spec.horizon).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured::MeasuredEps;
    use crate::oracle::{predicted_eps_hat, EpsHatOracle};
    use psync_verify::Oracle;

    #[test]
    fn drift_pattern_alternates_signs() {
        assert_eq!(drift_rates(5, 100), vec![0, 100, -100, 200, -200]);
        assert_eq!(rho_max(5, 100), 200);
        assert_eq!(rho_max(2, 100), 100);
    }

    #[test]
    fn demo_fleet_certifies_under_the_predicted_bound() {
        let spec = FleetSpec::demo(3, 0x5EED);
        let mut engine = build_sync_fleet(&spec);
        let run = engine.run().expect("fleet runs clean");
        let measured = MeasuredEps::from_execution(&run.execution);
        let eps_hat = measured.final_eps_hat().expect("fleet certified");
        let rho = rho_max(spec.nodes, spec.base_ppm);
        let bound = predicted_eps_hat(spec.d1, spec.d2, rho, spec.horizon);
        assert!(
            eps_hat <= bound,
            "measured ε̂ {eps_hat} over predicted {bound}"
        );
        assert!(
            eps_hat < spec.eps * 2,
            "ε̂ {eps_hat} no better than the a-priori 2ε"
        );
        let oracle = EpsHatOracle::new(spec.nodes, bound);
        let v = oracle.check(&run.execution);
        assert!(v.holds(), "{v}");
    }
}
