//! `MeasuredEps`: the achieved synchronization bound, read back out of a
//! recorded execution.
//!
//! `ProbeSync` emits its bound as ordinary `CERTIFY` output actions, so
//! the measured ε̂ lives in the execution record — which is exactly what
//! checkpoint/fork preserve, what replays reproduce bit-identically, and
//! what oracles judge. `MeasuredEps` scans those events once and hands
//! the result to whoever wants to *parameterize* further checking: feed
//! [`final_eps_hat`](MeasuredEps::final_eps_hat) to a `C_ε` oracle or a
//! streaming `=_{ε,κ}` monitor and the downstream scenario runs on the
//! measured bound instead of an assumed constant.

use psync_automata::Execution;
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

use crate::probe::{SyncAction, SyncOp};

/// One `CERTIFY` event, with its recording context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRecord {
    /// The certifying node.
    pub node: NodeId,
    /// The certified round.
    pub round: u64,
    /// The bound the node certified.
    pub eps_hat: Duration,
    /// Peers the bound covers.
    pub peers: Vec<NodeId>,
    /// Real time of the event.
    pub now: Time,
    /// The certifying node's clock at the event.
    pub clock: Option<Time>,
}

/// All certifications of one execution, in event order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeasuredEps {
    certs: Vec<CertRecord>,
}

impl MeasuredEps {
    /// Scans `exec` for `CERTIFY` events.
    #[must_use]
    pub fn from_execution(exec: &Execution<SyncAction>) -> MeasuredEps {
        let certs = exec
            .events()
            .iter()
            .filter_map(|e| match &e.action {
                SysAction::App(SyncOp::Certify {
                    node,
                    round,
                    eps_hat,
                    peers,
                }) => Some(CertRecord {
                    node: *node,
                    round: *round,
                    eps_hat: *eps_hat,
                    peers: peers.clone(),
                    now: e.now,
                    clock: e.clock,
                }),
                _ => None,
            })
            .collect();
        MeasuredEps { certs }
    }

    /// Every certification, in event order.
    #[must_use]
    pub fn certs(&self) -> &[CertRecord] {
        &self.certs
    }

    /// `node`'s latest certification.
    #[must_use]
    pub fn last_for(&self, node: NodeId) -> Option<&CertRecord> {
        self.certs.iter().rev().find(|c| c.node == node)
    }

    /// `node`'s `(round, ε̂)` trajectory, in round order.
    #[must_use]
    pub fn trajectory(&self, node: NodeId) -> Vec<(u64, Duration)> {
        self.certs
            .iter()
            .filter(|c| c.node == node)
            .map(|c| (c.round, c.eps_hat))
            .collect()
    }

    /// The fleet-wide achieved bound: the maximum over nodes of each
    /// node's *latest* certified ε̂. `None` when nothing certified.
    ///
    /// This is the value to hand to a `C_ε` oracle or `=_{ε,κ}` monitor
    /// when a downstream scenario should run on the measured bound.
    #[must_use]
    pub fn final_eps_hat(&self) -> Option<Duration> {
        let mut last: std::collections::BTreeMap<NodeId, Duration> =
            std::collections::BTreeMap::new();
        for c in &self.certs {
            last.insert(c.node, c.eps_hat);
        }
        last.into_values().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::{ActionKind, Execution, TimedEvent};

    fn cert(node: usize, round: u64, us: i64) -> TimedEvent<SyncAction> {
        TimedEvent {
            action: SysAction::App(SyncOp::Certify {
                node: NodeId(node),
                round,
                eps_hat: Duration::from_micros(us),
                peers: vec![NodeId(1 - node)],
            }),
            kind: ActionKind::Output,
            now: Time::ZERO + Duration::from_millis(round as i64 + 1),
            clock: Some(Time::ZERO + Duration::from_millis(round as i64 + 1)),
            node: None,
        }
    }

    #[test]
    fn scan_collects_trajectories_and_the_final_bound() {
        let events = vec![cert(0, 0, 2000), cert(1, 0, 1800), cert(0, 1, 1500)];
        let ltime = Time::ZERO + Duration::from_millis(10);
        let exec = Execution::new(events, ltime);
        let m = MeasuredEps::from_execution(&exec);
        assert_eq!(m.certs().len(), 3);
        assert_eq!(
            m.trajectory(NodeId(0)),
            vec![
                (0, Duration::from_micros(2000)),
                (1, Duration::from_micros(1500))
            ]
        );
        assert_eq!(m.last_for(NodeId(1)).unwrap().round, 0);
        // max(last n0 = 1.5 ms, last n1 = 1.8 ms)
        assert_eq!(m.final_eps_hat(), Some(Duration::from_micros(1800)));
        assert_eq!(MeasuredEps::default().final_eps_hat(), None);
    }
}
