//! `ProbeSync` and `RoundSync`: clock synchronization as ordinary
//! clock-automaton components.
//!
//! Every algorithm in this reproduction *assumes* a synchronization
//! bound ε; the paper's point is that ε is a system property a protocol
//! can buy. These components close the loop: each node periodically
//! probes its peers over the ordinary `[d₁, d₂]` channels, turns each
//! probe/echo round trip into an offset interval (the NTP construction),
//! fuses the intervals with [Marzullo's algorithm](crate::marzullo), and
//! every round *certifies* the synchronization bound ε̂ it has actually
//! achieved. The certificate is an ordinary output action, so the
//! achieved bound lands in the recorded execution where oracles —
//! including the ε̂-parameterized `C_ε` check — can judge it.
//!
//! The exchange, from node `i`'s side, all in `i`'s local clock time:
//!
//! 1. At clock `period·(r+1)` node `i` sends `Probe { round: r, seq,
//!    t1 }` to each peer (`burst` copies per peer). The ν-precondition
//!    pins the clock while probes are queued, so `t1` is exactly the
//!    sending clock value — the send-buffer idiom of Figure 2.
//! 2. A peer `j` receiving a probe queues an echo and stamps it `t2 =`
//!    its own clock at the actual echo send (again pinned, so the stamp
//!    is exact). Echoes carry the probe's `round`, `seq` and `t1` back.
//! 3. When the echo returns at clock `t4`, the three stamps bracket the
//!    offset `θ = C_j − C_i`: leg 1 gives `θ ∈ [t2−t1−d₂, t2−t1−d₁]`,
//!    leg 2 gives `θ ∈ [t2−t4+d₁, t2−t4+d₂]`; their intersection is at
//!    most `d₂−d₁` wide no matter which in-envelope delays the adversary
//!    picked. A drift margin `2ρ·Δt` widens the result (clocks are only
//!    rate-≈1); a contradictory (empty) sample is discarded.
//! 4. At clock `period·(r+1) + timeout` the node certifies: per peer it
//!    Marzullo-fuses the round's samples (majority support required, so
//!    a minority of gray samples is outvoted), intersects with the
//!    drift-widened carry of the previous estimate and with the a-priori
//!    `[−2ε, +2ε]` bound, and emits `CERTIFY` carrying `ε̂ = max` over
//!    *covered* peers of the estimate magnitude. A peer whose last
//!    accepted sample is more than `grace` rounds old drops out of the
//!    covered set — crash and gray-channel tolerance in the spirit of
//!    Hoch–Ben-Or–Dolev's fault-resistant round structure.
//!
//! The component never reads `now`; like every `ClockComponent` it is
//! ε-independent by construction, and the certificates are judged from
//! the outside by [`EpsHatOracle`](crate::EpsHatOracle).

use std::collections::{BTreeMap, BTreeSet};

use psync_automata::{Action, ActionKind, ClockComponent, WakeHint};
use psync_net::{Envelope, MsgId, NodeId, SysAction};
use psync_time::{Duration, Time};

use crate::marzullo::{Marzullo, OffsetInterval};

/// The probe/echo wire format.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SyncMsg {
    /// `i → j`: "what does your clock read?", stamped with the sender's
    /// clock `t1` at the actual send.
    Probe {
        /// Sender's round number.
        round: u64,
        /// Sender-local sequence number (also the envelope counter).
        seq: u32,
        /// Sender's clock at the probe send.
        t1: Time,
    },
    /// `j → i`: the reply, echoing the probe's identity plus the
    /// responder's clock `t2` at the actual echo send.
    Echo {
        /// The probed node's round number, copied from the probe.
        round: u64,
        /// The probe's sequence number, copied back for matching.
        seq: u32,
        /// The probe's send stamp, copied back.
        t1: Time,
        /// Responder's clock at the echo send.
        t2: Time,
    },
}

/// The sync component's application alphabet: the certification output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SyncOp {
    /// Node `node` certifies that at the end of `round` its clock is
    /// within `eps_hat` of every peer in `peers` (the covered set).
    Certify {
        /// The certifying node.
        node: NodeId,
        /// The round being closed.
        round: u64,
        /// The achieved synchronization bound ε̂.
        eps_hat: Duration,
        /// Peers the bound covers (sorted; peers whose estimates have
        /// aged out are excluded).
        peers: Vec<NodeId>,
    },
}

impl SyncOp {
    /// The certifying node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match self {
            SyncOp::Certify { node, .. } => *node,
        }
    }
}

impl Action for SyncOp {
    fn name(&self) -> &'static str {
        "CERTIFY"
    }
}

/// The full system alphabet of a sync fleet.
pub type SyncAction = SysAction<SyncMsg, SyncOp>;

/// Static parameters of one node's sync component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncParams {
    /// This node.
    pub me: NodeId,
    /// The peers to synchronize with (no duplicates, not `me`).
    pub peers: Vec<NodeId>,
    /// Channel delay lower bound `d₁`.
    pub d1: Duration,
    /// Channel delay upper bound `d₂`.
    pub d2: Duration,
    /// The configured envelope ε: pairwise offsets are a-priori bounded
    /// by `2ε` (axiom `C_ε` both ways), the estimate prior.
    pub eps: Duration,
    /// Maximum clock drift rate magnitude, parts per million.
    pub rho_ppm: i64,
    /// Round length in local clock time; must exceed [`SyncParams::timeout`].
    pub period: Duration,
    /// Probes sent to each peer each round.
    pub burst: u32,
    /// Rounds a peer estimate may age (no accepted sample) before the
    /// peer drops out of the covered set.
    pub grace: u64,
    /// Responder-side delay between probe receipt and echo readiness,
    /// in the responder's clock time. Honest nodes use zero; the
    /// `sync_skew_burst` canary plants `2(d₂−d₁) + 1 ms` here, which
    /// keeps every delay inside the channel envelope yet makes every
    /// sample self-contradictory (see `width` analysis above).
    pub echo_hold: Duration,
}

impl SyncParams {
    /// How long after the probe send the round's certification fires, in
    /// local clock time: the worst-case round trip `2d₂` plus the `4ε`
    /// real-vs-clock slack (ε at each end of each conversion) plus 1 ms.
    #[must_use]
    pub fn timeout(&self) -> Duration {
        self.d2 * 2 + self.eps * 4 + Duration::from_millis(1)
    }
}

/// A per-peer offset estimate: the fused interval and the round of the
/// last accepted sample (for grace accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEstimate {
    /// Current bracket on `C_peer − C_me`, valid as of the last cert.
    pub interval: OffsetInterval,
    /// Round of the last round whose samples contributed.
    pub last_sample_round: u64,
}

/// An echo owed to a peer: queued at probe receipt, sent once the local
/// clock reaches `ready`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEcho {
    /// Who gets the echo.
    pub dst: NodeId,
    /// Pre-assigned envelope id for the echo.
    pub id: MsgId,
    /// The probe's round, copied back.
    pub round: u64,
    /// The probe's sequence number, copied back.
    pub seq: u32,
    /// The probe's send stamp, copied back.
    pub t1: Time,
    /// Clock value at which the echo goes out (`receipt + echo_hold`);
    /// the ν-precondition pins the clock here until it does, so the
    /// `t2` stamp is exactly the send clock.
    pub ready: Time,
}

/// The `cbasic` state of a [`ProbeSync`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeState {
    /// Current round.
    pub round: u64,
    /// Node-local envelope/sequence counter.
    pub next_seq: u32,
    /// Probes still owed this round, front first: `(peer, seq)`.
    pub to_probe: Vec<(NodeId, u32)>,
    /// Echoes owed to peers.
    pub echoes: Vec<PendingEcho>,
    /// Echo seqs already matched this round, per source (dedup).
    pub matched: BTreeSet<(NodeId, u32)>,
    /// This round's accepted offset samples, per peer.
    pub samples: BTreeMap<NodeId, Vec<OffsetInterval>>,
    /// Fused per-peer estimates carried across rounds.
    pub estimates: BTreeMap<NodeId, PeerEstimate>,
    /// Probes already echoed: `(src, round, seq)`, pruned as rounds age.
    pub seen: BTreeSet<(NodeId, u64, u32)>,
}

/// The probe/echo synchronization component (tentpole part b).
///
/// See the [module docs](self) for the protocol. Install one per node in
/// a `ClockNode`; the peers' components answer each other's probes, so a
/// fleet needs no separate responder.
pub struct ProbeSync {
    p: SyncParams,
}

impl ProbeSync {
    /// Builds the component and validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are inconsistent: `d₁ < 0`, `d₂ < d₁`,
    /// `ε ≤ 0`, a negative drift rate or hold, an empty/duplicated peer
    /// set or one containing `me`, `burst = 0`, or a `period` not
    /// exceeding [`SyncParams::timeout`].
    #[must_use]
    pub fn new(p: SyncParams) -> ProbeSync {
        assert!(!p.d1.is_negative(), "d1 must be non-negative");
        assert!(p.d2 >= p.d1, "d2 must be at least d1");
        assert!(p.eps.is_positive(), "eps must be positive");
        assert!(p.rho_ppm >= 0, "drift rate bound must be non-negative");
        assert!(!p.echo_hold.is_negative(), "echo hold must be non-negative");
        assert!(p.burst >= 1, "burst must be at least 1");
        assert!(!p.peers.is_empty(), "a sync node needs at least one peer");
        assert!(!p.peers.contains(&p.me), "peer set must not contain me");
        let mut sorted = p.peers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p.peers.len(), "duplicate peer");
        assert!(
            p.period > p.timeout(),
            "period {} must exceed the certification timeout {}",
            p.period,
            p.timeout()
        );
        ProbeSync { p }
    }

    /// The component's parameters.
    #[must_use]
    pub fn params(&self) -> &SyncParams {
        &self.p
    }

    /// Clock value at which round `r`'s probes go out: `period·(r+1)`.
    #[must_use]
    pub fn probe_at(&self, round: u64) -> Time {
        Time::ZERO + self.p.period * (round as i64 + 1)
    }

    /// Clock value at which round `r` certifies.
    #[must_use]
    pub fn cert_at(&self, round: u64) -> Time {
        self.probe_at(round) + self.p.timeout()
    }

    /// The a-priori offset bracket `[−2ε, +2ε]`.
    fn prior(&self) -> OffsetInterval {
        OffsetInterval::symmetric(self.p.eps * 2)
    }

    /// Appends one round's worth of probes (`burst` per peer) to
    /// `to_probe`, consuming sequence numbers.
    fn refill(&self, to_probe: &mut Vec<(NodeId, u32)>, next_seq: &mut u32) {
        for _ in 0..self.p.burst {
            for &peer in &self.p.peers {
                to_probe.push((peer, *next_seq));
                *next_seq += 1;
            }
        }
    }

    /// The offset interval one completed exchange brackets, or `None`
    /// when the stamps are inconsistent with every in-envelope delay
    /// assignment (the sample is discarded, not trusted).
    #[must_use]
    pub fn sample(&self, t1: Time, t2: Time, t4: Time) -> Option<OffsetInterval> {
        let (d1, d2) = (self.p.d1, self.p.d2);
        let lo = (t2 - t1 - d2).max(t2 - t4 + d1);
        let hi = (t2 - t1 - d1).min(t2 - t4 + d2);
        // Clocks run at rate 1 ± ρ, not exactly 1: allow the pair to
        // have slid apart by 2ρ per unit of elapsed time, through the
        // end of the current round (`+ period` covers sample-to-cert).
        let margin = ((t4 - t1) + self.p.period).scale_ppm(2 * self.p.rho_ppm);
        OffsetInterval::new(lo - margin, hi + margin)
    }

    /// The certification this state produces at clock `clock`, plus the
    /// successor state (estimates folded, next round armed). `None` when
    /// `clock` is not the current round's certification instant.
    fn certify(&self, s: &ProbeState, clock: Time) -> Option<(SyncOp, ProbeState)> {
        if clock != self.cert_at(s.round) {
            return None;
        }
        let r = s.round;
        let carry_margin = self.p.period.scale_ppm(2 * self.p.rho_ppm);
        let prior = self.prior();
        let mut fuser = Marzullo::new();
        let mut estimates = s.estimates.clone();
        for &peer in &self.p.peers {
            // Majority-supported Marzullo fusion of this round's samples:
            // a strict majority of the peer's samples must cover the
            // fused region, so a minority of gray samples is outvoted.
            let fused = s.samples.get(&peer).and_then(|sv| {
                let f = fuser.fuse(sv)?;
                (2 * f.support > sv.len()).then_some(f.interval)
            });
            let carry = estimates.get(&peer).copied();
            let (interval, last) = match (carry, fused) {
                (Some(c), Some(f)) => (c.interval.widen(carry_margin).intersect(f).unwrap_or(f), r),
                (Some(c), None) => (c.interval.widen(carry_margin), c.last_sample_round),
                (None, Some(f)) => (f, r),
                (None, None) => continue,
            };
            let interval = interval.intersect(prior).unwrap_or(prior);
            estimates.insert(
                peer,
                PeerEstimate {
                    interval,
                    last_sample_round: last,
                },
            );
        }
        let covered: Vec<NodeId> = self
            .p
            .peers
            .iter()
            .copied()
            .filter(|peer| {
                estimates
                    .get(peer)
                    .is_some_and(|e| r - e.last_sample_round <= self.p.grace)
            })
            .collect();
        let eps_hat = covered
            .iter()
            .map(|peer| estimates[peer].interval.magnitude())
            .max()
            .unwrap_or(self.p.eps * 2);
        let op = SyncOp::Certify {
            node: self.p.me,
            round: r,
            eps_hat,
            peers: covered,
        };
        let mut next = ProbeState {
            round: r + 1,
            next_seq: s.next_seq,
            to_probe: s.to_probe.clone(),
            echoes: s.echoes.clone(),
            matched: BTreeSet::new(),
            samples: BTreeMap::new(),
            estimates,
            seen: s
                .seen
                .iter()
                .filter(|(_, pr, _)| pr + 2 > r)
                .copied()
                .collect(),
        };
        self.refill(&mut next.to_probe, &mut next.next_seq);
        Some((op, next))
    }

    fn probe_env(&self, s: &ProbeState, clock: Time) -> Option<Envelope<SyncMsg>> {
        let &(peer, seq) = s.to_probe.first()?;
        (clock == self.probe_at(s.round)).then(|| Envelope {
            src: self.p.me,
            dst: peer,
            id: MsgId::from_parts(self.p.me, seq),
            payload: SyncMsg::Probe {
                round: s.round,
                seq,
                t1: clock,
            },
        })
    }

    fn echo_env(&self, e: &PendingEcho, clock: Time) -> Envelope<SyncMsg> {
        Envelope {
            src: self.p.me,
            dst: e.dst,
            id: e.id,
            payload: SyncMsg::Echo {
                round: e.round,
                seq: e.seq,
                t1: e.t1,
                t2: clock,
            },
        }
    }
}

impl ClockComponent for ProbeSync {
    type Action = SyncAction;
    type State = ProbeState;

    fn name(&self) -> String {
        format!("ProbeSync({})", self.p.me)
    }

    fn initial(&self) -> ProbeState {
        let mut s = ProbeState {
            round: 0,
            next_seq: 0,
            to_probe: Vec::new(),
            echoes: Vec::new(),
            matched: BTreeSet::new(),
            samples: BTreeMap::new(),
            estimates: BTreeMap::new(),
            seen: BTreeSet::new(),
        };
        let mut to_probe = std::mem::take(&mut s.to_probe);
        self.refill(&mut to_probe, &mut s.next_seq);
        s.to_probe = to_probe;
        s
    }

    fn classify(&self, a: &SyncAction) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if env.src == self.p.me => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.p.me => Some(ActionKind::Input),
            SysAction::App(op) if op.node() == self.p.me => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG", "CERTIFY"])
    }

    fn step(&self, s: &ProbeState, a: &SyncAction, clock: Time) -> Option<ProbeState> {
        match a {
            SysAction::Send(env) if env.src == self.p.me => match &env.payload {
                SyncMsg::Probe { .. } => {
                    let expect = self.probe_env(s, clock)?;
                    if *env != expect {
                        return None;
                    }
                    let mut next = s.clone();
                    next.to_probe.remove(0);
                    Some(next)
                }
                SyncMsg::Echo { t2, .. } => {
                    if *t2 != clock {
                        return None;
                    }
                    let idx = s
                        .echoes
                        .iter()
                        .position(|e| e.ready <= clock && self.echo_env(e, clock) == *env)?;
                    let mut next = s.clone();
                    next.echoes.remove(idx);
                    Some(next)
                }
            },
            SysAction::Recv(env) if env.dst == self.p.me => match &env.payload {
                // Inputs must always be accepted (input-enabledness):
                // stale or duplicated traffic leaves the state unchanged.
                SyncMsg::Probe { round, seq, t1 } => {
                    let key = (env.src, *round, *seq);
                    if s.seen.contains(&key) {
                        return Some(s.clone());
                    }
                    let mut next = s.clone();
                    next.seen.insert(key);
                    next.echoes.push(PendingEcho {
                        dst: env.src,
                        id: MsgId::from_parts(self.p.me, next.next_seq),
                        round: *round,
                        seq: *seq,
                        t1: *t1,
                        ready: clock + self.p.echo_hold,
                    });
                    next.next_seq += 1;
                    Some(next)
                }
                SyncMsg::Echo { round, seq, t1, t2 } => {
                    let stale = *round != s.round
                        || *t1 != self.probe_at(s.round)
                        || s.matched.contains(&(env.src, *seq));
                    if stale {
                        return Some(s.clone());
                    }
                    let mut next = s.clone();
                    next.matched.insert((env.src, *seq));
                    if let Some(iv) = self.sample(*t1, *t2, clock) {
                        next.samples.entry(env.src).or_default().push(iv);
                    }
                    Some(next)
                }
            },
            SysAction::App(op) if op.node() == self.p.me => {
                let (expect, next) = self.certify(s, clock)?;
                (*op == expect).then_some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &ProbeState, clock: Time) -> Vec<SyncAction> {
        let mut out = Vec::new();
        if let Some(env) = self.probe_env(s, clock) {
            out.push(SysAction::Send(env));
        }
        for e in &s.echoes {
            if e.ready <= clock {
                out.push(SysAction::Send(self.echo_env(e, clock)));
            }
        }
        if let Some((op, _)) = self.certify(s, clock) {
            out.push(SysAction::App(op));
        }
        out
    }

    fn clock_deadline(&self, s: &ProbeState, _clock: Time) -> Option<Time> {
        let mut d = self.cert_at(s.round);
        if !s.to_probe.is_empty() {
            d = d.min(self.probe_at(s.round));
        }
        for e in &s.echoes {
            d = d.min(e.ready);
        }
        Some(d)
    }

    fn clock_wake(&self, s: &ProbeState, clock: Time) -> WakeHint {
        if self.enabled(s, clock).is_empty() {
            match self.clock_deadline(s, clock) {
                Some(d) if d > clock => WakeHint::At(d),
                _ => WakeHint::Always,
            }
        } else {
            WakeHint::Always
        }
    }
}

/// The round-based fault-resistant synchronizer (tentpole part c).
///
/// Structurally this is [`ProbeSync`] — the round machinery, majority
/// fusion and grace accounting live there — but `RoundSync` names the
/// fault-tolerant configuration: a *finite* grace (derived from the drop
/// budget: `grace = 2·max_drops + 1` survives an adversary spending its
/// whole budget on one edge pair) so crashed or gray peers age out of
/// the covered set instead of freezing ε̂, in the spirit of
/// Hoch–Ben-Or–Dolev's fault-resistant clock function. The certificate
/// then only vouches for peers it has fresh evidence about.
pub struct RoundSync {
    inner: ProbeSync,
}

impl RoundSync {
    /// Builds the fault-resistant configuration.
    ///
    /// # Panics
    ///
    /// As [`ProbeSync::new`]; additionally requires `burst ≥ 2` (a lone
    /// sample has no majority to outvote) — and a `grace` small enough
    /// to matter is the caller's responsibility.
    #[must_use]
    pub fn new(p: SyncParams) -> RoundSync {
        assert!(
            p.burst >= 2,
            "RoundSync needs burst >= 2 so majorities exist per round"
        );
        RoundSync {
            inner: ProbeSync::new(p),
        }
    }

    /// The grace that survives a drop budget of `max_drops`: the
    /// adversary can kill `max_drops` probes plus `max_drops` echoes on
    /// one pair, so `2·max_drops` consecutive samples may vanish.
    #[must_use]
    pub fn grace_for_drops(max_drops: u64) -> u64 {
        2 * max_drops + 1
    }

    /// The component's parameters.
    #[must_use]
    pub fn params(&self) -> &SyncParams {
        self.inner.params()
    }
}

impl ClockComponent for RoundSync {
    type Action = SyncAction;
    type State = ProbeState;

    fn name(&self) -> String {
        format!("RoundSync({})", self.inner.p.me)
    }

    fn initial(&self) -> ProbeState {
        self.inner.initial()
    }

    fn classify(&self, a: &SyncAction) -> Option<ActionKind> {
        self.inner.classify(a)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        self.inner.action_names()
    }

    fn step(&self, s: &ProbeState, a: &SyncAction, clock: Time) -> Option<ProbeState> {
        self.inner.step(s, a, clock)
    }

    fn enabled(&self, s: &ProbeState, clock: Time) -> Vec<SyncAction> {
        self.inner.enabled(s, clock)
    }

    fn clock_deadline(&self, s: &ProbeState, clock: Time) -> Option<Time> {
        self.inner.clock_deadline(s, clock)
    }

    fn clock_wake(&self, s: &ProbeState, clock: Time) -> WakeHint {
        self.inner.clock_wake(s, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SyncParams {
        SyncParams {
            me: NodeId(0),
            peers: vec![NodeId(1)],
            d1: Duration::from_millis(1),
            d2: Duration::from_millis(3),
            eps: Duration::from_millis(2),
            rho_ppm: 200,
            period: Duration::from_millis(20),
            burst: 1,
            grace: 1,
            echo_hold: Duration::ZERO,
        }
    }

    #[test]
    fn probes_are_stamped_with_the_pinned_clock() {
        let c = ProbeSync::new(params());
        let s = c.initial();
        assert_eq!(s.to_probe, vec![(NodeId(1), 0)]);
        // Before the probe instant nothing is enabled and the clock may
        // run up to exactly probe_at(0).
        assert!(c.enabled(&s, Time::ZERO).is_empty());
        assert_eq!(c.clock_deadline(&s, Time::ZERO), Some(c.probe_at(0)));
        assert_eq!(c.clock_wake(&s, Time::ZERO), WakeHint::At(c.probe_at(0)));
        let at = c.probe_at(0);
        let acts = c.enabled(&s, at);
        assert_eq!(acts.len(), 1);
        let SysAction::Send(env) = &acts[0] else {
            panic!("expected a probe send")
        };
        assert_eq!(
            env.payload,
            SyncMsg::Probe {
                round: 0,
                seq: 0,
                t1: at
            }
        );
        let s2 = c.step(&s, &acts[0], at).unwrap();
        assert!(s2.to_probe.is_empty());
        assert_eq!(c.clock_deadline(&s2, at), Some(c.cert_at(0)));
    }

    #[test]
    fn echo_carries_the_send_clock_after_the_hold() {
        let hold = Duration::from_millis(5);
        let c = ProbeSync::new(SyncParams {
            echo_hold: hold,
            ..params()
        });
        let mut s = c.initial();
        s.to_probe.clear(); // focus on responder duties
        let receipt = Time::ZERO + Duration::from_millis(22);
        let probe = SysAction::Recv(Envelope {
            src: NodeId(1),
            dst: NodeId(0),
            id: MsgId::from_parts(NodeId(1), 7),
            payload: SyncMsg::Probe {
                round: 0,
                seq: 7,
                t1: Time::ZERO + Duration::from_millis(20),
            },
        });
        let s2 = c.step(&s, &probe, receipt).unwrap();
        // Duplicate probe: accepted (input-enabled) but not re-queued.
        let s2b = c.step(&s2, &probe, receipt).unwrap();
        assert_eq!(s2b.echoes.len(), 1);
        // The clock is pinned at receipt + hold until the echo leaves.
        let ready = receipt + hold;
        assert_eq!(c.clock_deadline(&s2, receipt), Some(ready));
        let acts = c.enabled(&s2, ready);
        let echo = acts
            .iter()
            .find_map(|a| match a {
                SysAction::Send(env) => Some(env),
                _ => None,
            })
            .expect("echo enabled at ready");
        assert_eq!(
            echo.payload,
            SyncMsg::Echo {
                round: 0,
                seq: 7,
                t1: Time::ZERO + Duration::from_millis(20),
                t2: ready,
            }
        );
    }

    #[test]
    fn sample_brackets_the_true_offset_under_any_in_envelope_delays() {
        let c = ProbeSync::new(params());
        // True offset θ = +1.5 ms, leg delays 1.2 ms and 2.9 ms.
        let t1 = Time::ZERO + Duration::from_millis(20);
        let theta = Duration::from_micros(1500);
        let leg1 = Duration::from_micros(1200);
        let leg2 = Duration::from_micros(2900);
        let t2 = t1 + leg1 + theta;
        let t4 = t2 - theta + leg2;
        let iv = c.sample(t1, t2, t4).expect("honest sample is consistent");
        assert!(iv.contains(theta), "true offset {theta} outside {iv:?}");
        assert!(iv.width() <= c.params().d2 - c.params().d1 + Duration::from_micros(50));
    }

    #[test]
    fn contradictory_sample_is_discarded() {
        let c = ProbeSync::new(params());
        let t1 = Time::ZERO + Duration::from_millis(20);
        // A held echo: leg delays at d1 = 1 ms but t2 stamped
        // 2(d2−d1)+1 ms = 5 ms after receipt — no in-envelope delay
        // assignment explains these stamps.
        let t2 = t1 + Duration::from_millis(1) + Duration::from_millis(5);
        let t4 = t2 + Duration::from_millis(1);
        assert_eq!(c.sample(t1, t2, t4), None);
    }

    #[test]
    fn certify_fuses_majority_and_moves_the_round() {
        let c = ProbeSync::new(SyncParams {
            burst: 3,
            ..params()
        });
        let mut s = c.initial();
        s.to_probe.clear();
        let iv = |lo: i64, hi: i64| {
            OffsetInterval::new(Duration::from_micros(lo), Duration::from_micros(hi)).unwrap()
        };
        // Two honest samples agreeing near +1 ms, one gray outlier.
        s.samples.insert(
            NodeId(1),
            vec![iv(800, 1400), iv(900, 1500), iv(5000, 6000)],
        );
        let at = c.cert_at(0);
        let (op, next) = c.certify(&s, at).expect("cert due");
        let SyncOp::Certify {
            round,
            eps_hat,
            ref peers,
            ..
        } = op;
        assert_eq!(round, 0);
        assert_eq!(peers, &vec![NodeId(1)]);
        // Majority region [900, 1400] → magnitude 1.4 ms.
        assert_eq!(eps_hat, Duration::from_micros(1400));
        assert_eq!(next.round, 1);
        assert_eq!(next.to_probe.len(), 3);
        assert!(next.samples.is_empty());
        // Nothing is due off the cert instant.
        assert!(c.certify(&s, at + Duration::NANOSECOND).is_none());
    }

    #[test]
    fn empty_round_falls_back_to_the_prior() {
        let c = ProbeSync::new(params());
        let mut s = c.initial();
        s.to_probe.clear();
        let (op, _) = c.certify(&s, c.cert_at(0)).unwrap();
        let SyncOp::Certify { eps_hat, peers, .. } = op;
        assert!(peers.is_empty(), "no samples → no covered peers");
        assert_eq!(eps_hat, c.params().eps * 2);
    }

    #[test]
    fn grace_ages_peers_out_of_the_covered_set() {
        let c = ProbeSync::new(params()); // grace = 1
        let mut s = c.initial();
        s.to_probe.clear();
        s.round = 5;
        s.estimates.insert(
            NodeId(1),
            PeerEstimate {
                interval: OffsetInterval::point(Duration::ZERO),
                last_sample_round: 3,
            },
        );
        let (op, _) = c.certify(&s, c.cert_at(5)).unwrap();
        let SyncOp::Certify { peers, .. } = op;
        assert!(peers.is_empty(), "age 2 > grace 1 drops the peer");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn period_must_exceed_timeout() {
        let _ = ProbeSync::new(SyncParams {
            period: Duration::from_millis(10),
            ..params()
        });
    }

    #[test]
    fn round_sync_delegates_and_demands_a_majority_burst() {
        let r = RoundSync::new(SyncParams {
            burst: 2,
            ..params()
        });
        assert_eq!(r.name(), "RoundSync(n0)");
        assert_eq!(r.initial().to_probe.len(), 2);
        assert_eq!(RoundSync::grace_for_drops(2), 5);
    }
}
