//! Property tests for the Marzullo interval-intersection core.
//!
//! The generators are shrink-friendly by construction: every case is
//! built from small non-negative integers (half-widths and gaps) around
//! an explicit true offset θ, so a failing case's printed inputs read
//! directly as "these good intervals around θ, these outliers". The
//! soundness property is stated in the form that is actually a theorem:
//! when every honest interval contains θ, the honest intervals form a
//! majority, and the dishonest ones are disjoint from the honest hull,
//! the fused result is exactly the intersection of the honest intervals
//! — and in particular contains θ. (Without the disjointness hypothesis
//! "majority contains θ ⇒ θ ∈ result" is false: overlapping minorities
//! can tilt the maximum-overlap region away from θ.)
//!
//! Note: the vendored proptest stub replays deterministically from the
//! test name and performs no shrinking of its own, so it persists no
//! `*.proptest-regressions` files.

use proptest::prelude::*;
use psync_sync::{fuse, Marzullo, OffsetInterval};
use psync_time::Duration;

fn iv(lo: i64, hi: i64) -> OffsetInterval {
    OffsetInterval::new(Duration::from_nanos(lo), Duration::from_nanos(hi))
        .expect("generator produced lo <= hi")
}

/// Honest intervals `[θ−a, θ+b]` from generated non-negative spans.
fn goods(theta: i64, spans: &[(i64, i64)]) -> Vec<OffsetInterval> {
    spans
        .iter()
        .map(|&(a, b)| iv(theta - a, theta + b))
        .collect()
}

/// Outliers strictly outside the honest hull: above it when `above`,
/// below otherwise, separated by `gap + 1` ns.
fn bads(theta: i64, spans: &[(i64, i64)], outliers: &[(i64, i64, bool)]) -> Vec<OffsetInterval> {
    let hull_lo = theta - spans.iter().map(|s| s.0).max().unwrap();
    let hull_hi = theta + spans.iter().map(|s| s.1).max().unwrap();
    outliers
        .iter()
        .map(|&(gap, w, above)| {
            if above {
                iv(hull_hi + 1 + gap, hull_hi + 1 + gap + w)
            } else {
                iv(hull_lo - 1 - gap - w, hull_lo - 1 - gap)
            }
        })
        .collect()
}

/// The exact fold-intersection of a non-empty batch that shares a point.
fn exact_intersection(ivs: &[OffsetInterval]) -> OffsetInterval {
    ivs.iter()
        .skip(1)
        .fold(ivs[0], |acc, &b| acc.intersect(b).expect("shared point"))
}

/// Deterministic Fisher–Yates driven by a seed (the stub has no
/// shuffle strategy).
fn permute<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x1405_7b7e_f767_814f);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness + exactness: an outvoted, hull-disjoint minority never
    /// moves the fusion off the honest intersection.
    #[test]
    fn majority_soundness(
        theta in -1_000_000i64..1_000_000,
        spans in prop::collection::vec((0i64..500_000, 0i64..500_000), 1..8),
        outliers in prop::collection::vec((0i64..400_000, 0i64..300_000, prop::bool::ANY), 0..8),
    ) {
        let good = goods(theta, &spans);
        // Keep the dishonest side a strict minority.
        let keep = outliers.len().min(good.len().saturating_sub(1));
        let bad = bads(theta, &spans, &outliers[..keep]);
        let mut batch = good.clone();
        batch.extend(bad);

        let f = fuse(&batch).expect("non-empty batch");
        prop_assert_eq!(f.support, good.len());
        prop_assert_eq!(f.interval, exact_intersection(&good));
        prop_assert!(f.interval.contains(Duration::from_nanos(theta)));
    }

    /// Fusion is a function of the multiset: permuting the batch changes
    /// nothing, and the reusable fuser agrees with the one-shot helper.
    #[test]
    fn permutation_invariance(
        theta in -1_000_000i64..1_000_000,
        spans in prop::collection::vec((0i64..500_000, 0i64..500_000), 1..8),
        outliers in prop::collection::vec((0i64..400_000, 0i64..300_000, prop::bool::ANY), 0..8),
        seed in 0u64..1_000_000_000,
    ) {
        let keep = outliers.len().min(spans.len().saturating_sub(1));
        let mut batch = goods(theta, &spans);
        batch.extend(bads(theta, &spans, &outliers[..keep]));

        let original = fuse(&batch);
        let mut shuffled = batch.clone();
        permute(&mut shuffled, seed);
        prop_assert_eq!(fuse(&shuffled), original);
        prop_assert_eq!(Marzullo::new().fuse(&batch), original);
    }

    /// Idempotence: fusing copies of an interval returns that interval,
    /// and re-fusing a fusion's own result is the identity.
    #[test]
    fn idempotence(
        lo in -1_000_000i64..1_000_000,
        w in 0i64..500_000,
        copies in 1usize..6,
    ) {
        let x = iv(lo, lo + w);
        let f = fuse(&vec![x; copies]).unwrap();
        prop_assert_eq!(f.interval, x);
        prop_assert_eq!(f.support, copies);
        let again = fuse(&[f.interval]).unwrap();
        prop_assert_eq!(again.interval, f.interval);
        prop_assert_eq!(again.support, 1);
    }

    /// When *every* interval shares a point, fusion is exactly the full
    /// intersection with full support.
    #[test]
    fn unanimous_batch_fuses_to_the_exact_intersection(
        theta in -1_000_000i64..1_000_000,
        spans in prop::collection::vec((0i64..500_000, 0i64..500_000), 1..10),
    ) {
        let batch = goods(theta, &spans);
        let f = fuse(&batch).unwrap();
        prop_assert_eq!(f.support, batch.len());
        prop_assert_eq!(f.interval, exact_intersection(&batch));
    }
}

/// The documented counterexample for the naive claim "a majority
/// containing θ implies θ lands in the result": overlapping bad
/// intervals inside the hull can outscore the honest core. This pins
/// why `majority_soundness` needs its hull-disjointness hypothesis —
/// and why `ProbeSync` combines fusion with majority-*support* checks
/// and a carried prior instead of trusting fusion alone.
#[test]
fn overlapping_minority_can_defeat_a_bare_majority() {
    let theta = Duration::ZERO;
    let batch = [
        // Majority: three wide honest intervals around θ = 0…
        iv(-100, 10),
        iv(-100, 20),
        iv(-10, 100),
        // …but two tight liars agreeing with the left flank of two of
        // them, forming a 4-deep region that excludes θ.
        iv(-90, -80),
        iv(-85, -75),
    ];
    let f = fuse(&batch).unwrap();
    assert_eq!(f.support, 4);
    assert!(!f.interval.contains(theta));
}
