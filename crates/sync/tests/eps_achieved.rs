//! Differential test pinning the achieved ε̂ against theory: a
//! fixed-seed sweep over `(d₂ − d₁, drift ppm)` grid points, each a full
//! probe-sync fleet run.
//!
//! For every grid point the measured bound must come in under the
//! prediction `ε̂ ≤ (d₂ − d₁) + 4ρT + slack` — the protocol-level analogue
//! of Theorem 6.5's "ε is what the system delivers, and everything else
//! is priced in it" — and the certificates must survive the
//! ε̂-parameterized `C_ε` oracle. Finally, the constant-ε `C_ε` probe
//! *re-parameterized with the measured ε̂* must never fire on a clean
//! run: the per-node `|clock − now|` excursion (at most `ρT`) is within
//! the certified pairwise bound, so downstream scenarios can substitute
//! ε̂ for their assumed constant without tripping their own axioms.

use psync_obs::CEpsOracle;
use psync_sync::{
    build_sync_fleet, predicted_eps_hat, rho_max, EpsHatOracle, FleetSpec, MeasuredEps,
};
use psync_time::Duration;
use psync_verify::Oracle;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// The sweep: jitter `d₂ − d₁ ∈ {0, 1, 2, 4} ms` crossed with base
/// drift `∈ {0, 200, 400} ppm`, fixed seed per point.
fn grid() -> Vec<FleetSpec> {
    let mut specs = Vec::new();
    for (gi, d2) in [1i64, 2, 3, 5].into_iter().enumerate() {
        for (di, ppm) in [0i64, 200, 400].into_iter().enumerate() {
            let mut spec = FleetSpec::demo(3, 0xE17_5EED ^ ((gi as u64) << 8) ^ di as u64);
            spec.d2 = ms(d2);
            spec.base_ppm = ppm;
            specs.push(spec);
        }
    }
    specs
}

#[test]
fn measured_eps_hat_stays_inside_the_theory_envelope() {
    for spec in grid() {
        let label = format!("d2-d1={}, base={}ppm", spec.d2 - spec.d1, spec.base_ppm);
        let mut engine = build_sync_fleet(&spec);
        let run = engine.run().unwrap_or_else(|e| panic!("{label}: {e}"));
        let measured = MeasuredEps::from_execution(&run.execution);
        let eps_hat = measured
            .final_eps_hat()
            .unwrap_or_else(|| panic!("{label}: fleet never certified"));

        let rho = rho_max(spec.nodes, spec.base_ppm);
        let bound = predicted_eps_hat(spec.d1, spec.d2, rho, spec.horizon);
        assert!(
            eps_hat <= bound,
            "{label}: measured ε̂ {eps_hat} over the predicted {bound}"
        );
        // Where the theory predicts a win over the a-priori 2ε, demand it.
        if bound < spec.eps * 2 {
            assert!(
                eps_hat < spec.eps * 2,
                "{label}: ε̂ {eps_hat} no better than the 2ε prior"
            );
        }

        // The certificates themselves are judged: sound against the
        // recorded clock readings, and every node achieves the bound.
        let oracle = EpsHatOracle::new(spec.nodes, bound);
        let v = oracle.check(&run.execution);
        assert!(v.holds(), "{label}: {v}");

        // C_ε re-parameterized with the *measured* bound never fires on
        // a clean run: per-node |clock − now| ≤ ρT ≤ certified pairwise ε̂.
        let c_eps = CEpsOracle::new(eps_hat);
        let v = c_eps.check(&run.execution);
        assert!(v.holds(), "{label}: C_eps(ε̂) fired on a clean run: {v}");
    }
}

#[test]
fn eps_hat_grows_with_jitter_and_shrinks_the_theorem_6_5_read_price() {
    // Fix drift, sweep jitter: the achieved bound must not decrease as
    // the channel gets noisier, and at the catalog defaults the measured
    // ε̂ must beat the configured ε — so Algorithm S's Theorem 6.5 read
    // wait (2ε) and write wait (ε), re-priced with ε̂, both get cheaper
    // than the assumed-constant deployment.
    let mut last = Duration::ZERO;
    for d2 in [1i64, 2, 3] {
        let mut spec = FleetSpec::demo(3, 0x6E5);
        spec.d2 = ms(d2);
        let mut engine = build_sync_fleet(&spec);
        let run = engine.run().expect("clean run");
        let eps_hat = MeasuredEps::from_execution(&run.execution)
            .final_eps_hat()
            .expect("certified");
        assert!(
            eps_hat + Duration::from_micros(50) >= last,
            "ε̂ {eps_hat} at d2 = {d2} ms under the tighter-channel value {last}"
        );
        last = eps_hat;
        if d2 == 3 {
            // Catalog defaults: d ∈ [1, 3] ms, ε = 2 ms.
            assert!(
                eps_hat * 2 < spec.eps * 2,
                "measured read wait 2ε̂ = {} not under the assumed 2ε = {}",
                eps_hat * 2,
                spec.eps * 2
            );
        }
    }
}

#[test]
fn trajectories_are_per_node_and_round_ordered() {
    let spec = FleetSpec::demo(3, 0x7A7);
    let mut engine = build_sync_fleet(&spec);
    let run = engine.run().expect("clean run");
    let measured = MeasuredEps::from_execution(&run.execution);
    for node in 0..spec.nodes {
        let traj = measured.trajectory(psync_net::NodeId(node));
        assert!(traj.len() >= 10, "n{node}: only {} rounds", traj.len());
        for (i, (round, eps_hat)) in traj.iter().enumerate() {
            assert_eq!(*round, i as u64, "n{node}: rounds out of order");
            assert!(eps_hat.is_positive());
        }
    }
}
