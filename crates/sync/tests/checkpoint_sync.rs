//! Differential checkpoint/restore tests for the probe-sync fleet:
//! pausing mid-round must be invisible.
//!
//! `ProbeSync` carries more per-component state than anything else in
//! the workspace — pending probe queues, held echoes with ready times,
//! per-peer sample batches, carried estimates, a dedup set — and all of
//! it rides inside the ordinary component state that
//! [`Engine::checkpoint`] snapshots. These tests paste
//! `prefix ⌢ suffix-from-checkpoint` runs against the uninterrupted run
//! and demand bit-identical executions *and* bit-identical certified ε̂
//! trajectories, across a sweep of pause points that deliberately land
//! inside rounds (between a probe burst and its certification).

use psync_executor::{Engine, StopReason};
use psync_net::NodeId;
use psync_sync::{build_sync_fleet, FleetSpec, MeasuredEps, SyncAction};
use psync_time::{Duration, Time};

fn spec() -> FleetSpec {
    let mut s = FleetSpec::demo(3, 0xC4EC);
    // Short horizon keeps the full prefix sweep cheap while still
    // covering several complete rounds.
    s.horizon = Time::ZERO + Duration::from_millis(120);
    s
}

fn trajectories(run: &psync_executor::Run<SyncAction>, nodes: usize) -> Vec<Vec<(u64, Duration)>> {
    let measured = MeasuredEps::from_execution(&run.execution);
    (0..nodes).map(|i| measured.trajectory(NodeId(i))).collect()
}

#[test]
fn every_prefix_checkpoint_resumes_bit_identically() {
    let spec = spec();
    let straight = build_sync_fleet(&spec).run().unwrap();
    let n = straight.execution.len();
    assert!(n > 60, "fleet produced only {n} events");
    assert_eq!(straight.stop, StopReason::Horizon);
    let straight_traj = trajectories(&straight, spec.nodes);
    assert!(
        straight_traj.iter().all(|t| t.len() >= 4),
        "horizon too short to cover several rounds"
    );

    let mut recorder = build_sync_fleet(&spec);
    for k in 0..=n {
        let paused = recorder.run_until_events(k).unwrap();
        assert_eq!(paused.stop, StopReason::Paused, "pause at {k}");
        let cp = recorder.checkpoint();

        let mut resumed: Engine<SyncAction> = build_sync_fleet(&spec);
        resumed.restore(&cp);
        let run = resumed.run().unwrap();
        assert_eq!(run.stop, straight.stop, "pause at {k}: stop diverges");
        assert_eq!(
            run.execution, straight.execution,
            "pause at {k}: executions diverge"
        );
        assert_eq!(
            trajectories(&run, spec.nodes),
            straight_traj,
            "pause at {k}: certified ε̂ trajectories diverge"
        );
    }

    // The recorder itself — paused and snapshotted at every index —
    // still finishes exactly like the uninterrupted run.
    let rest = recorder.run().unwrap();
    assert_eq!(rest.stop, straight.stop);
    assert_eq!(rest.execution, straight.execution);
}

#[test]
fn forked_runs_from_one_mid_round_snapshot_agree() {
    let spec = spec();
    let straight = build_sync_fleet(&spec).run().unwrap();
    let straight_traj = trajectories(&straight, spec.nodes);

    // Pause mid-run: past the first certification, inside a later round.
    let k = straight.execution.len() / 2;
    let mut recorder = build_sync_fleet(&spec);
    recorder.run_until_events(k).unwrap();
    let cp = recorder.checkpoint();

    let mut runs = Vec::new();
    for fork in 0..3 {
        let mut engine = build_sync_fleet(&spec);
        engine.restore(&cp);
        let run = engine.run().unwrap();
        assert_eq!(
            run.execution, straight.execution,
            "fork {fork}: diverged from the uninterrupted run"
        );
        assert_eq!(
            trajectories(&run, spec.nodes),
            straight_traj,
            "fork {fork}: ε̂ trajectory diverged"
        );
        runs.push(run);
    }
    assert_eq!(runs[0].execution, runs[1].execution);
    assert_eq!(runs[1].execution, runs[2].execution);
}
