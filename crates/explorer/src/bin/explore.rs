//! Campaign driver: runs seeded fault-injection campaigns against the
//! scenario catalog, runs the planted-bug canary suite, and reports
//! coverage and falsification metrics.
//!
//! ```text
//! psync-explorer [--cases N] [--seed S] [--scenario all|<name>]
//!                [--canaries all|<name>[,<name>...]]
//!                [--max-entries N] [--jobs N] [--monitor-shards N]
//!                [--online] [--bug-extra-ns N]
//!                [--metrics-out PATH] [--report-out PATH]
//!                [--no-checkpoint-shrink]
//! ```
//!
//! `--jobs N` runs each campaign's cases on `N` worker threads (default:
//! `PSYNC_JOBS` or the machine's available parallelism). The report —
//! stats, kind coverage, artifacts, metrics, exit code — is bit-identical
//! for every `N`; `--jobs 1` is the plain sequential loop.
//!
//! `--monitor-shards N` fans each case's oracle set across `N` judge
//! threads (default 1). Like `--jobs`, it is a pure performance knob:
//! every verdict and metric is bit-identical for every `N`, which CI
//! cross-checks by diffing stdout across shard counts. It only pays for
//! itself when monitors run concurrently with the case, so it requires
//! `--online`; passing it without `--online` is an error rather than a
//! silent no-op.
//!
//! `--online` judges heartbeat-family cases *while they run*: stream
//! oracles ride the engine's observer hooks and a case stops the moment
//! a violation is certain, so failing cases cost events-to-violation
//! instead of the horizon. Scenario kinds without stream oracles fall
//! back to the post-hoc judge. Online reports are deterministic and
//! jobs-invariant, but not comparable to offline reports (fewer events
//! on short-circuited cases), so the flag is off by default.
//!
//! `--canaries` additionally runs one campaign per selected planted bug
//! (see `psync_explorer::canary`) and reports the **mutation score**:
//! canaries whose expected oracle caught them, over canaries planted.
//! The driver exits non-zero if the score is below 1.0 — an oracle that
//! cannot refind a bug planted for it has silently stopped working.
//!
//! `--bug-extra-ns N` plants the demonstration bug (a boundary delay
//! spike delivered `N` ns after `d₂`) in the heartbeat channel — the
//! explorer is then expected to find it, shrink it, and print the
//! replay artifact.
//!
//! `--metrics-out PATH` writes the observer metrics aggregated across all
//! campaigns (counters and histograms, deterministic for fixed flags) as
//! a JSON snapshot — CI uploads it as a build artifact.
//!
//! `--report-out PATH` writes the campaign telemetry — per-scenario
//! coverage (events, fault points hit vs. catalog, per-oracle violation
//! density), per-canary verdicts, the mutation score, and the measured
//! events/second — as JSON. The throughput figure is computed *here*,
//! from wall-clock time, and lives only in this file's output: the
//! library's `CampaignReport` stays a pure function of the seeds.
//!
//! `--no-checkpoint-shrink` makes every shrink probe re-run its case
//! from scratch instead of resuming from a checkpoint of the failing
//! base run. The output is byte-identical either way (CI diffs the two
//! modes to prove it); the flag exists for that cross-check and for
//! debugging the resume machinery.
//!
//! Exits non-zero iff any non-canary campaign found a violation or any
//! canary went uncaught; each failure is printed as a full replay
//! artifact so it can be reproduced verbatim.

use std::process::ExitCode;
use std::time::Instant;

use psync_explorer::json::Json;
use psync_explorer::{
    default_jobs, mutation_score, run_campaign_jobs, run_canary_suite, CampaignConfig,
    CampaignReport, CanaryKind, CanaryOutcome, ScenarioConfig, ScenarioKind,
};
use psync_obs::MetricsSnapshot;

#[cfg_attr(test, derive(Debug))]
struct Args {
    campaign: CampaignConfig,
    scenarios: Vec<ScenarioKind>,
    canaries: Vec<CanaryKind>,
    jobs: usize,
    bug_extra_ns: i64,
    metrics_out: Option<String>,
    report_out: Option<String>,
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("bad seed {s:?}: {e}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut campaign = CampaignConfig::default();
    let mut scenarios = ScenarioKind::all().to_vec();
    let mut canaries = Vec::new();
    let mut jobs = default_jobs();
    let mut bug_extra_ns = 0i64;
    let mut metrics_out = None;
    let mut report_out = None;
    let mut monitor_shards = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => {
                campaign.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?
            }
            "--seed" => campaign.seed = parse_seed(value("--seed")?)?,
            "--max-entries" => {
                campaign.max_entries = value("--max-entries")?
                    .parse()
                    .map_err(|e| format!("bad --max-entries: {e}"))?;
            }
            "--scenario" => {
                let v = value("--scenario")?;
                scenarios = if v == "all" {
                    ScenarioKind::all().to_vec()
                } else {
                    vec![ScenarioKind::from_name(v)?]
                };
            }
            "--canaries" => {
                let v = value("--canaries")?;
                canaries = if v == "all" {
                    CanaryKind::all().to_vec()
                } else {
                    v.split(',')
                        .map(CanaryKind::from_name)
                        .collect::<Result<Vec<_>, _>>()?
                };
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--bug-extra-ns" => {
                bug_extra_ns = value("--bug-extra-ns")?
                    .parse()
                    .map_err(|e| format!("bad --bug-extra-ns: {e}"))?;
            }
            "--monitor-shards" => {
                let shards: usize = value("--monitor-shards")?
                    .parse()
                    .map_err(|e| format!("bad --monitor-shards: {e}"))?;
                if shards == 0 {
                    return Err("--monitor-shards must be at least 1".to_string());
                }
                monitor_shards = Some(shards);
            }
            "--online" => campaign.online = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?.clone()),
            "--report-out" => report_out = Some(value("--report-out")?.clone()),
            "--no-checkpoint-shrink" => campaign.checkpointed_shrink = false,
            "--help" | "-h" => {
                return Err("usage: psync-explorer [--cases N] [--seed S] \
                     [--scenario all|<name>] [--canaries all|<name>[,<name>...]] \
                     [--max-entries N] [--jobs N] [--monitor-shards N] [--online] \
                     [--bug-extra-ns N] [--metrics-out PATH] [--report-out PATH] \
                     [--no-checkpoint-shrink]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if campaign.max_entries == 0 {
        return Err("--max-entries must be at least 1".to_string());
    }
    // Checked after the loop so flag order doesn't matter. Sharded
    // judging only exists to keep monitor lanes off the case's critical
    // path, which only online judging has; without --online the knob
    // would change nothing, and silently accepting it hides typos.
    if let Some(shards) = monitor_shards {
        if !campaign.online {
            return Err(
                "--monitor-shards requires --online (sharded judging only applies to                  online monitor lanes; without --online the flag would be a silent no-op)"
                    .to_string(),
            );
        }
        campaign.monitor_shards = shards;
    }
    Ok(Args {
        campaign,
        scenarios,
        canaries,
        jobs,
        bug_extra_ns,
        metrics_out,
        report_out,
    })
}

fn scenario_config(kind: ScenarioKind, bug_extra_ns: i64) -> ScenarioConfig {
    let cfg = ScenarioConfig::default_for(kind);
    // The demonstration bug lives in the heartbeat channel.
    if bug_extra_ns > 0 && kind == ScenarioKind::Heartbeat {
        cfg.with_bug(bug_extra_ns)
    } else {
        cfg
    }
}

fn print_failures(report: &CampaignReport) -> usize {
    for failure in &report.failures {
        let plan = &failure.artifact.plan;
        println!(
            "  VIOLATION in case {} (plan shrank {} -> {} entries):",
            failure.case_index,
            failure.original_entries,
            plan.len(),
        );
        if let Some((oracle, detail)) = &failure.artifact.violation {
            println!("    {oracle}: {detail}");
        }
        println!("--- replay artifact ---");
        println!("{}", failure.artifact.to_json());
        println!("--- end artifact ---");
    }
    report.failures.len()
}

fn scenario_json(report: &CampaignReport) -> Json {
    let s = &report.stats;
    Json::obj([
        ("scenario", Json::str(report.scenario.kind.name())),
        ("cases", Json::num(s.cases)),
        ("entries", Json::num(s.entries)),
        ("events", Json::num(s.events)),
        ("failures", Json::num(report.failures.len() as u64)),
        ("shrink_probes", Json::num(s.shrink_probes)),
        (
            "violations_by_oracle",
            Json::Obj(
                s.violations_by_oracle
                    .iter()
                    .map(|(k, n)| (k.clone(), Json::num(*n)))
                    .collect(),
            ),
        ),
        (
            "fault_points_hit",
            Json::num(s.fault_points_hit.len() as u64),
        ),
        ("fault_points_total", Json::num(s.fault_points_total)),
    ])
}

fn canary_json(outcome: &CanaryOutcome) -> Json {
    let verdict = outcome.report.canary.as_ref();
    Json::obj([
        ("canary", Json::str(outcome.kind.name())),
        ("scenario", Json::str(outcome.kind.base_kind().name())),
        ("expected_oracle", Json::str(outcome.kind.expected_oracle())),
        ("caught", Json::Bool(outcome.caught())),
        (
            "caught_cases",
            Json::num(verdict.map_or(0, |v| v.caught_cases)),
        ),
        (
            "min_shrunk_entries",
            verdict
                .and_then(|v| v.min_shrunk_entries)
                .map_or(Json::Null, Json::num),
        ),
    ])
}

/// Wall-clock throughput, rounded to the nearest event/sec. Computed
/// from fractional seconds: the old `as_millis()` division truncated
/// sub-millisecond runs to a zero divisor (reported as 0 events/sec)
/// and understated every short CI run by up to a full millisecond of
/// rounding.
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
#[allow(clippy::cast_sign_loss)]
fn events_per_sec(total_events: u64, elapsed: std::time::Duration) -> u64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0;
    }
    (total_events as f64 / secs).round() as u64
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let mut total_failures = 0usize;
    let mut total_events = 0u64;
    let mut all_metrics = MetricsSnapshot::default();
    let mut scenario_reports = Vec::new();
    for kind in &args.scenarios {
        let scenario = scenario_config(*kind, args.bug_extra_ns);
        let report = run_campaign_jobs(&args.campaign, &scenario, args.jobs);
        all_metrics.absorb(&report.metrics);
        let s = &report.stats;
        println!(
            "[{}] {} cases, {} fault entries, {} events, {} clock requests clamped, \
             {} shrink probes, {}/{} fault points",
            kind.name(),
            s.cases,
            s.entries,
            s.events,
            s.rejected_clock_requests,
            s.shrink_probes,
            s.fault_points_hit.len(),
            s.fault_points_total,
        );
        for (k, n) in &s.entries_by_kind {
            println!("  {k:>20}: {n}");
        }
        for (oracle, n) in &s.violations_by_oracle {
            println!("  violations[{oracle}]: {n} of {} cases", s.cases);
        }
        total_events += s.events;
        total_failures += print_failures(&report);
        scenario_reports.push(scenario_json(&report));
    }

    let outcomes = run_canary_suite(&args.canaries, &args.campaign, args.jobs);
    let (caught, planted) = mutation_score(&outcomes);
    let mut canary_reports = Vec::new();
    for outcome in &outcomes {
        let status = if outcome.caught() { "CAUGHT" } else { "MISSED" };
        let verdict = outcome.report.canary.as_ref();
        println!(
            "[canary {}] {}: {} case(s) via {:?}, min shrunk plan {:?}",
            outcome.kind.name(),
            status,
            verdict.map_or(0, |v| v.caught_cases),
            outcome.kind.expected_oracle(),
            verdict.and_then(|v| v.min_shrunk_entries),
        );
        total_events += outcome.report.stats.events;
        canary_reports.push(canary_json(outcome));
    }
    if planted > 0 {
        println!("mutation score: {caught}/{planted}");
    }

    // Wall-clock throughput lives only here: the library reports stay
    // pure functions of the seeds. It goes to stderr so stdout stays
    // bit-identical across runs (CI diffs it between job counts).
    let elapsed = started.elapsed();
    let events_per_sec = events_per_sec(total_events, elapsed);
    eprintln!(
        "{total_events} events in {:.3}s ({events_per_sec} events/sec)",
        elapsed.as_secs_f64()
    );

    if let Some(path) = &args.report_out {
        let report = Json::obj([
            ("cases_per_campaign", Json::num(args.campaign.cases)),
            ("seed", Json::num(args.campaign.seed)),
            ("jobs", Json::num(args.jobs as u64)),
            ("scenarios", Json::Arr(scenario_reports)),
            ("canaries", Json::Arr(canary_reports)),
            (
                "mutation_score",
                Json::obj([
                    ("caught", Json::num(caught)),
                    ("planted", Json::num(planted)),
                ]),
            ),
            ("events_total", Json::num(total_events)),
            ("elapsed_ms", Json::num(elapsed.as_millis() as u64)),
            ("events_per_sec", Json::num(events_per_sec)),
        ]);
        if let Err(e) = std::fs::write(path, report.pretty() + "\n") {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("campaign report written to {path}");
    }

    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, all_metrics.to_json() + "\n") {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("metrics written to {path}");
    }

    let mut failed = false;
    if total_failures == 0 {
        println!("ok: no violations in regular campaigns");
    } else {
        println!("{total_failures} violation(s) found");
        failed = true;
    }
    if caught < planted {
        println!(
            "mutation score below 1.0: {} canary/ies went uncaught",
            planted - caught
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn monitor_shards_without_online_is_rejected() {
        let err = parse_args(&argv(&["--monitor-shards", "4"]))
            .expect_err("--monitor-shards alone must be rejected, not silently ignored");
        assert!(
            err.contains("--monitor-shards requires --online"),
            "unhelpful error: {err}"
        );
        // Order must not matter: the check runs after the parse loop.
        for order in [
            &["--monitor-shards", "4", "--online"][..],
            &["--online", "--monitor-shards", "4"][..],
        ] {
            let args = parse_args(&argv(order)).expect("--online makes the flag valid");
            assert!(args.campaign.online);
            assert_eq!(args.campaign.monitor_shards, 4);
        }
        // Absent flag: campaign default, no online requirement.
        let args = parse_args(&argv(&[])).expect("empty argv parses");
        assert_eq!(args.campaign.monitor_shards, 1);
    }

    #[test]
    fn monitor_shards_zero_is_rejected() {
        let err = parse_args(&argv(&["--online", "--monitor-shards", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
    }

    #[test]
    fn events_per_sec_is_honest_for_short_runs() {
        // 100 events in 500µs is 200k events/sec; the old
        // `as_millis()`-based division saw a zero divisor and reported 0.
        assert_eq!(events_per_sec(100, Duration::from_micros(500)), 200_000);
        // 1.5ms used to truncate to 1ms, overstating by 50%.
        assert_eq!(events_per_sec(3000, Duration::from_micros(1500)), 2_000_000);
        // Plain cases and the degenerate zero-duration case.
        assert_eq!(events_per_sec(10_000, Duration::from_secs(2)), 5_000);
        assert_eq!(events_per_sec(42, Duration::ZERO), 0);
        assert_eq!(events_per_sec(0, Duration::from_secs(1)), 0);
    }
}
