//! Campaign driver: runs seeded fault-injection campaigns against the
//! built-in scenarios and reports coverage and violations.
//!
//! ```text
//! psync-explorer [--cases N] [--seed S] [--scenario all|heartbeat|clockfleet|register]
//!                [--max-entries N] [--jobs N] [--bug-extra-ns N] [--metrics-out PATH]
//!                [--no-checkpoint-shrink]
//! ```
//!
//! `--jobs N` runs each campaign's cases on `N` worker threads (default:
//! `PSYNC_JOBS` or the machine's available parallelism). The report —
//! stats, kind coverage, artifacts, metrics, exit code — is bit-identical
//! for every `N`; `--jobs 1` is the plain sequential loop.
//!
//! `--bug-extra-ns N` plants the demonstration bug (a boundary delay
//! spike delivered `N` ns after `d₂`) in the heartbeat channel — the
//! explorer is then expected to find it, shrink it, and print the
//! replay artifact.
//!
//! `--metrics-out PATH` writes the observer metrics aggregated across all
//! campaigns (counters and histograms, deterministic for fixed flags) as
//! a JSON snapshot — CI uploads it as a build artifact.
//!
//! `--no-checkpoint-shrink` makes every shrink probe re-run its case
//! from scratch instead of resuming from a checkpoint of the failing
//! base run. The output is byte-identical either way (CI diffs the two
//! modes to prove it); the flag exists for that cross-check and for
//! debugging the resume machinery.
//!
//! Exits non-zero iff any campaign found a violation; each failure is
//! printed as a full replay artifact so it can be reproduced verbatim.

use std::process::ExitCode;

use psync_explorer::{
    default_jobs, run_campaign_jobs, CampaignConfig, ScenarioConfig, ScenarioKind,
};
use psync_obs::MetricsSnapshot;

struct Args {
    campaign: CampaignConfig,
    scenarios: Vec<ScenarioKind>,
    jobs: usize,
    bug_extra_ns: i64,
    metrics_out: Option<String>,
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("bad seed {s:?}: {e}"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut campaign = CampaignConfig::default();
    let mut scenarios = ScenarioKind::all().to_vec();
    let mut jobs = default_jobs();
    let mut bug_extra_ns = 0i64;
    let mut metrics_out = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => {
                campaign.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?
            }
            "--seed" => campaign.seed = parse_seed(value("--seed")?)?,
            "--max-entries" => {
                campaign.max_entries = value("--max-entries")?
                    .parse()
                    .map_err(|e| format!("bad --max-entries: {e}"))?;
            }
            "--scenario" => {
                let v = value("--scenario")?;
                scenarios = if v == "all" {
                    ScenarioKind::all().to_vec()
                } else {
                    vec![ScenarioKind::from_name(v)?]
                };
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--bug-extra-ns" => {
                bug_extra_ns = value("--bug-extra-ns")?
                    .parse()
                    .map_err(|e| format!("bad --bug-extra-ns: {e}"))?;
            }
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?.clone()),
            "--no-checkpoint-shrink" => campaign.checkpointed_shrink = false,
            "--help" | "-h" => {
                return Err("usage: psync-explorer [--cases N] [--seed S] \
                     [--scenario all|heartbeat|clockfleet|register] [--max-entries N] \
                     [--jobs N] [--bug-extra-ns N] [--metrics-out PATH] \
                     [--no-checkpoint-shrink]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if campaign.max_entries == 0 {
        return Err("--max-entries must be at least 1".to_string());
    }
    Ok(Args {
        campaign,
        scenarios,
        jobs,
        bug_extra_ns,
        metrics_out,
    })
}

fn scenario_config(kind: ScenarioKind, bug_extra_ns: i64) -> ScenarioConfig {
    let cfg = match kind {
        ScenarioKind::Heartbeat => ScenarioConfig::heartbeat_default(),
        ScenarioKind::ClockFleet => ScenarioConfig::clockfleet_default(),
        ScenarioKind::Register => ScenarioConfig::register_default(),
    };
    // The demonstration bug lives in the heartbeat channel.
    if bug_extra_ns > 0 && kind == ScenarioKind::Heartbeat {
        cfg.with_bug(bug_extra_ns)
    } else {
        cfg
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut total_failures = 0usize;
    let mut all_metrics = MetricsSnapshot::default();
    for kind in &args.scenarios {
        let scenario = scenario_config(*kind, args.bug_extra_ns);
        let report = run_campaign_jobs(&args.campaign, &scenario, args.jobs);
        all_metrics.absorb(&report.metrics);
        let s = &report.stats;
        println!(
            "[{}] {} cases, {} fault entries, {} events, {} clock requests clamped, {} shrink probes",
            kind.name(),
            s.cases,
            s.entries,
            s.events,
            s.rejected_clock_requests,
            s.shrink_probes,
        );
        for (k, n) in &s.entries_by_kind {
            println!("  {k:>20}: {n}");
        }
        for failure in &report.failures {
            total_failures += 1;
            let plan = &failure.artifact.plan;
            println!(
                "  VIOLATION in case {} (plan shrank {} -> {} entries):",
                failure.case_index,
                failure.original_entries,
                plan.len(),
            );
            if let Some((oracle, detail)) = &failure.artifact.violation {
                println!("    {oracle}: {detail}");
            }
            println!("--- replay artifact ---");
            println!("{}", failure.artifact.to_json());
            println!("--- end artifact ---");
        }
    }

    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, all_metrics.to_json() + "\n") {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics written to {path}");
    }

    if total_failures == 0 {
        println!("ok: no violations");
        ExitCode::SUCCESS
    } else {
        println!("{total_failures} violation(s) found");
        ExitCode::FAILURE
    }
}
