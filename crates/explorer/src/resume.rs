//! Checkpoint-resuming shrink probes: re-run only the suffix of a case
//! that a candidate sub-plan can actually change.
//!
//! The ddmin loop in [`shrink_entries`] evaluates many candidate plans,
//! each differing from previously executed plans by a few entries. Each
//! fault entry has an **activation index** — the position of the first
//! recorded event whose production consults it (the `Send` a drop
//! disposition applies to, the first event at or past a clock segment's
//! scripted time, the numbered scheduler pick a bias flips). Two plans'
//! runs are byte-identical up to the smallest activation index of any
//! entry in their symmetric difference, so by the paper's pasting lemma
//! (Lemma 2.1) a probe may *resume* from a
//! [`psync_executor::EngineCheckpoint`] captured at or before that index
//! instead of re-running the prefix.
//!
//! The machinery, per failing case:
//!
//! * the **primary run** records a ladder of checkpoints as it executes
//!   (stride `CHECKPOINT_STRIDE`, thinned beyond `MAX_CHECKPOINTS`,
//!   plus a final rung at the natural stop);
//! * every probe consults a bounded **pool** of recorded runs — the
//!   primary plus recent probes — and resumes from whichever run offers
//!   the deepest rung before its divergence. Sibling ddmin probes often
//!   differ only in late-activating entries, so probing against the pool
//!   routinely skips far more prefix than the primary run alone could
//!   justify. A probe whose symmetric difference never activates resumes
//!   from the final rung and re-executes *zero* events.
//!
//! Two invariants make this safe to ship as the default:
//!
//! * **Bit-identity.** A resumed probe produces the same
//!   [`CaseOutcome`] — violations, fingerprint, metrics snapshot,
//!   everything `==` sees — as a from-scratch run of the same candidate.
//!   Engine observers are attached with checkpoint counters suppressed
//!   and side counters (fault stats, clock rejections) are captured in
//!   the `CaseCheckpoint` alongside the engine state, so the resumed
//!   history is indistinguishable from the straight-line one.
//! * **Conservative activation.** When an entry's first consult cannot
//!   be located (its message was never sent, its kind has no cheap
//!   mapping) the activation index degrades toward `0` — never past the
//!   true first consult — which only costs re-execution, never
//!   correctness.
//!
//! The same module also hosts the cached shrink driver shared by both
//! probe modes: every evaluated candidate's outcome is memoised, the
//! final plan's outcome is read from the cache instead of a
//! confirmation re-run, and `shrink_probes` therefore counts true case
//! executions.

use std::rc::Rc;

use psync_apps::heartbeat::FdAction;
use psync_automata::{Action, ArenaSnapshot, TimedEvent};
use psync_executor::{Run, StopReason};
use psync_net::{FaultStats, SysAction};

use crate::faults::seq_of;
use crate::online::run_case_online;
use crate::plan::{at_ns, FaultEntry, FaultPlan};
use crate::scenario::{
    build_clockfleet, build_counter, build_heartbeat, build_mutex, build_register, finish_case,
    judge_clockfleet, judge_counter, judge_heartbeat, judge_mutex, judge_register, outcome_of,
    run_case_sharded, BuiltCase, CaseOutcome, JudgeVerdicts, ScenarioConfig, ScenarioKind,
};
use crate::shrink::shrink_entries;

/// Events between consecutive checkpoints of a recorded run (before any
/// thinning). Small on purpose: case runs are short and a fine ladder is
/// what lets a probe resume right at its divergence index.
const CHECKPOINT_STRIDE: usize = 4;

/// Checkpoint-ladder size cap: when a run outgrows it, every other
/// checkpoint is dropped and the stride doubles, keeping memory bounded
/// while the resolution stays proportional to the run length.
const MAX_CHECKPOINTS: usize = 512;

/// Recorded runs a shrink keeps around as resume sources: the primary
/// run plus the most recent probes. Rungs are `Rc`-shared between pool
/// entries, so the bound is on ladders, not on checkpoint copies.
const POOL_MAX: usize = 8;

/// Execution-cost counters of a campaign's shrink phase, reported next
/// to (never inside) the [`crate::CampaignReport`] — the report stays a
/// pure function of the case seeds, while the telemetry measures how
/// much work the probe strategy actually spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTelemetry {
    /// Events re-executed by shrink probes: per probe, only the suffix
    /// past its resume point. (Primary case runs are case executions,
    /// not shrink work, and are counted in the campaign stats instead.)
    pub shrink_events: u64,
    /// Primary case runs that recorded a checkpoint ladder (every case
    /// in checkpointed mode, none otherwise).
    pub recording_runs: u64,
    /// Engine checkpoints captured across recorded runs and probes.
    pub checkpoints: u64,
    /// Probes answered from the outcome cache with no execution at all.
    pub cache_hits: u64,
}

impl CampaignTelemetry {
    /// Folds another telemetry record into this one.
    pub fn absorb(&mut self, other: &CampaignTelemetry) {
        self.shrink_events += other.shrink_events;
        self.recording_runs += other.recording_runs;
        self.checkpoints += other.checkpoints;
        self.cache_hits += other.cache_hits;
    }
}

/// The shrink phase's result for one failing case.
#[derive(Debug, Clone)]
pub(crate) struct ShrinkResult {
    /// The 1-minimal failing plan ddmin settled on.
    pub(crate) plan: FaultPlan,
    /// That plan's full outcome, read from the probe cache (no
    /// confirmation re-run).
    pub(crate) outcome: CaseOutcome,
    /// True case executions spent probing (cache misses).
    pub(crate) probes: u64,
}

/// One rung of a checkpoint ladder: the engine snapshot plus the side
/// counters the engine does not own (observer metrics live in the hub's
/// registry, fault counters in the channel's shared cells).
struct CaseCheckpoint<A: Action> {
    engine: psync_executor::EngineCheckpoint<A>,
    metrics: psync_obs::MetricsSnapshot,
    fault_values: Vec<[u64; 5]>,
}

/// A driven run paired with the checkpoints captured along the way.
type DrivenRun<A> = (Result<Run<A>, String>, Vec<Rc<CaseCheckpoint<A>>>);

/// A fully recorded run — plan, events, checkpoint ladder — usable as a
/// resume source for later probes. Rungs are `Rc`-shared, and the event
/// log is an [`ArenaSnapshot`] view of the engine's own arena: adopting
/// a probe into the pool clones an `Arc`, never the events.
struct RecordedRun<A: Action> {
    plan: FaultPlan,
    events: ArenaSnapshot<A>,
    cps: Vec<Rc<CaseCheckpoint<A>>>,
}

fn capture<A: Action>(
    built: &mut BuiltCase<A>,
    telemetry: &mut CampaignTelemetry,
) -> Rc<CaseCheckpoint<A>> {
    telemetry.checkpoints += 1;
    Rc::new(CaseCheckpoint {
        engine: built.engine.checkpoint(),
        metrics: built.hub.snapshot(),
        fault_values: built.fault_stats.iter().map(FaultStats::values).collect(),
    })
}

/// Drives a built case to completion, pausing every `CHECKPOINT_STRIDE`
/// events (doubling after thinning) to capture a checkpoint, plus one
/// final rung at the natural stop. `start` is the engine's current event
/// count (0 for a fresh engine, the restored checkpoint's position for a
/// resumed probe). Returns the final run and the checkpoints captured
/// *after* `start`.
fn drive<A: Action>(
    built: &mut BuiltCase<A>,
    start: usize,
    telemetry: &mut CampaignTelemetry,
) -> DrivenRun<A> {
    let mut cps = Vec::new();
    let mut stride = CHECKPOINT_STRIDE;
    let mut pos = start;
    loop {
        match built.engine.run_until_events(pos + stride) {
            Ok(run) if run.stop == StopReason::Paused => {
                pos = run.execution.len();
                cps.push(capture(built, telemetry));
                if cps.len() >= MAX_CHECKPOINTS {
                    let mut i = 0usize;
                    cps.retain(|_| {
                        i += 1;
                        i.is_multiple_of(2)
                    });
                    stride *= 2;
                }
            }
            Ok(run) => {
                // The final rung: a probe whose plan cannot change any
                // remaining event resumes here and re-executes nothing.
                if run.execution.len() > pos || cps.is_empty() {
                    cps.push(capture(built, telemetry));
                }
                return (Ok(run), cps);
            }
            Err(e) => return (Err(e.to_string()), cps),
        }
    }
}

/// First recorded event index whose production consults a clock-script
/// segment scripted at `t` nanoseconds: scripted offsets only apply to
/// readings at or past their segment time, and every clock consult
/// during the production of event `i` targets a time at most
/// `events[i].now` (deadline lookahead is rate-1 and script-independent).
fn clock_segment_activation<A: Action>(t: i64, events: &[TimedEvent<A>]) -> usize {
    events
        .iter()
        .position(|e| e.now >= at_ns(t))
        .unwrap_or(usize::MAX)
}

/// Activation index of a heartbeat-scenario entry: channel dispositions
/// are consulted when their `Send` fires, scheduler bias at its numbered
/// pick (pick `k` chooses event `k`).
fn heartbeat_activation(entry: &FaultEntry, events: &[TimedEvent<FdAction>]) -> usize {
    match *entry {
        FaultEntry::Drop { src, dst, seq }
        | FaultEntry::Duplicate { src, dst, seq, .. }
        | FaultEntry::DelaySpike { src, dst, seq, .. } => events
            .iter()
            .position(|e| match &e.action {
                SysAction::Send(env) => {
                    env.src.0 == src as usize && env.dst.0 == dst as usize && seq_of(env.id) == seq
                }
                _ => false,
            })
            .unwrap_or(usize::MAX),
        FaultEntry::SchedulerBias { pick } => usize::try_from(pick).unwrap_or(usize::MAX),
        // Clock entries are outside the heartbeat envelope; if one slips
        // through validation anyway, re-run from the top.
        _ => 0,
    }
}

/// Activation index of a clock-model entry (clock-fleet, mutex,
/// register, and counter scenarios alike). Delay spikes flow through the
/// `build_dc` clock channels, whose send times have no cheap mapping to
/// event indices — stay conservative and replay from the start.
fn clock_activation<A: Action>(entry: &FaultEntry, events: &[TimedEvent<A>]) -> usize {
    match *entry {
        FaultEntry::ClockSkew { at_ns: t, .. } | FaultEntry::ClockBackwardJump { at_ns: t, .. } => {
            clock_segment_activation(t, events)
        }
        FaultEntry::SchedulerBias { pick } => usize::try_from(pick).unwrap_or(usize::MAX),
        _ => 0,
    }
}

/// Index of the first event of `run` the candidate plan could change:
/// the smallest activation index over the *symmetric* multiset
/// difference between the run's plan and the candidate. Up to that
/// index no differing entry has been consulted in either run, so the
/// runs are identical — entries present only in the candidate activate
/// at the same index they would in `run` (the runs agree up to there,
/// so consult opportunities agree too).
fn divergence_index<A: Action>(
    run: &RecordedRun<A>,
    candidate: &FaultPlan,
    activation: &impl Fn(&FaultEntry, &[TimedEvent<A>]) -> usize,
) -> usize {
    let mut cand_pool: Vec<&FaultEntry> = candidate.entries.iter().collect();
    let mut d = usize::MAX;
    for entry in &run.plan.entries {
        if let Some(i) = cand_pool.iter().position(|c| *c == entry) {
            cand_pool.swap_remove(i);
        } else {
            d = d.min(activation(entry, run.events.events()));
        }
    }
    for entry in cand_pool {
        d = d.min(activation(entry, run.events.events()));
    }
    d
}

fn events_of<A: Action>(run: &Result<Run<A>, String>) -> ArenaSnapshot<A> {
    run.as_ref()
        .map(|r| r.execution.snapshot().clone())
        .unwrap_or_default()
}

/// The cached ddmin driver shared by both probe modes: memoises every
/// evaluated candidate, counts only cache misses as probes, and reads
/// the final plan's outcome from the cache — no confirmation re-run.
/// The second return is the number of cache hits (probes avoided).
fn shrink_with_cache(
    plan: &FaultPlan,
    primary: &CaseOutcome,
    probe: &mut dyn FnMut(&FaultPlan) -> CaseOutcome,
) -> (ShrinkResult, u64) {
    let mut cache: Vec<(FaultPlan, CaseOutcome)> = vec![(plan.clone(), primary.clone())];
    let mut probes = 0u64;
    let mut hits = 0u64;
    let shrunk = shrink_entries(plan, &mut |candidate| {
        if let Some((_, cached)) = cache.iter().find(|(p, _)| p == candidate) {
            hits += 1;
            return !cached.violations.is_empty();
        }
        probes += 1;
        let outcome = probe(candidate);
        let failing = !outcome.violations.is_empty();
        cache.push((candidate.clone(), outcome));
        failing
    });
    let outcome = cache
        .iter()
        .find(|(p, _)| *p == shrunk)
        .map(|(_, o)| o.clone())
        .expect("ddmin returns the seeded plan or an evaluated candidate");
    (
        ShrinkResult {
            plan: shrunk,
            outcome,
            probes,
        },
        hits,
    )
}

/// Runs one plan from scratch while recording its checkpoint ladder, and
/// returns its judged outcome together with the recorded run. The
/// outcome is bit-identical to [`run_case`] — checkpointing is
/// read-only, and the observers are attached with checkpoint counters
/// suppressed.
fn run_recorded<A: Action>(
    plan: &FaultPlan,
    telemetry: &mut CampaignTelemetry,
    build: &impl Fn(&FaultPlan) -> BuiltCase<A>,
    judge: &impl Fn(&FaultPlan, &Result<Run<A>, String>) -> JudgeVerdicts,
) -> (CaseOutcome, RecordedRun<A>) {
    let mut built = build(plan);
    let first = capture(&mut built, telemetry);
    let (run, mut cps) = drive(&mut built, 0, telemetry);
    cps.insert(0, first);
    let events = events_of(&run);
    let violations = judge(plan, &run);
    let recorded = outcome_of(finish_case(&built, violations, run));
    telemetry.recording_runs += 1;
    (
        recorded,
        RecordedRun {
            plan: plan.clone(),
            events,
            cps,
        },
    )
}

/// Executes one candidate probe by resuming from the deepest checkpoint
/// any pooled run offers before the candidate's divergence from it. The
/// outcome is bit-identical to a from-scratch run of the candidate; the
/// probe's own recorded run joins the pool (evicting the oldest probe)
/// so later siblings can resume from it.
fn probe_resumed<A: Action>(
    pool: &mut Vec<RecordedRun<A>>,
    candidate: &FaultPlan,
    telemetry: &mut CampaignTelemetry,
    build: &impl Fn(&FaultPlan) -> BuiltCase<A>,
    judge: &impl Fn(&FaultPlan, &Result<Run<A>, String>) -> JudgeVerdicts,
    activation: &impl Fn(&FaultEntry, &[TimedEvent<A>]) -> usize,
) -> CaseOutcome {
    // The deepest usable rung across the pool. pool[0].cps[0] sits at
    // position 0, so a resume point always exists.
    let (mut bi, mut ci, mut start) = (0usize, 0usize, 0usize);
    for (i, base) in pool.iter().enumerate() {
        let d = divergence_index(base, candidate, activation);
        let c = base
            .cps
            .iter()
            .rposition(|cp| cp.engine.event_count() <= d)
            .expect("every ladder starts at position 0");
        let s = base.cps[c].engine.event_count();
        if s > start {
            (bi, ci, start) = (i, c, s);
        }
    }

    let mut built = build(candidate);
    let rung = &pool[bi].cps[ci];
    built.engine.restore(&rung.engine);
    built.hub.restore(&rung.metrics);
    for (stats, values) in built.fault_stats.iter().zip(&rung.fault_values) {
        stats.set_values(*values);
    }

    let (run, new_cps) = drive(&mut built, start, telemetry);
    let final_events = events_of(&run);
    telemetry.shrink_events += final_events.len().saturating_sub(start) as u64;
    let ran_ok = run.is_ok();
    let violations = judge(candidate, &run);
    let outcome = outcome_of(finish_case(&built, violations, run));
    if ran_ok {
        // This probe's ladder: the shared prefix rungs plus its own.
        let mut cps = pool[bi].cps[..=ci].to_vec();
        cps.extend(new_cps);
        if pool.len() >= POOL_MAX {
            // Keep the primary run at slot 0; evict the oldest probe.
            pool.remove(1);
        }
        pool.push(RecordedRun {
            plan: candidate.clone(),
            events: final_events,
            cps,
        });
    }
    outcome
}

/// Runs the primary case and, when it fails, shrinks it — with the
/// checkpointed probe strategy, seeding the resume pool with the primary
/// run itself.
fn run_and_shrink<A: Action>(
    plan: &FaultPlan,
    telemetry: &mut CampaignTelemetry,
    build: &impl Fn(&FaultPlan) -> BuiltCase<A>,
    judge: &impl Fn(&FaultPlan, &Result<Run<A>, String>) -> JudgeVerdicts,
    activation: &impl Fn(&FaultEntry, &[TimedEvent<A>]) -> usize,
) -> (CaseOutcome, Option<ShrinkResult>) {
    let (outcome, recorded) = run_recorded(plan, telemetry, build, judge);
    if outcome.violations.is_empty() {
        return (outcome, None);
    }
    let mut pool = vec![recorded];
    let (result, hits) = shrink_with_cache(plan, &outcome, &mut |candidate| {
        probe_resumed(&mut pool, candidate, telemetry, build, judge, activation)
    });
    telemetry.cache_hits += hits;
    (outcome, Some(result))
}

/// Runs one case and shrinks it if it fails, using the cached ddmin
/// driver — resuming probes from pooled checkpoints when `checkpointed`
/// is set and re-running each probe from scratch otherwise. Both modes
/// produce bit-identical outcomes and [`ShrinkResult`]s; only the
/// telemetry differs.
pub(crate) fn run_shrinkable_case(
    scenario: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    checkpointed: bool,
    online: bool,
    monitor_shards: usize,
    telemetry: &mut CampaignTelemetry,
) -> (CaseOutcome, Option<ShrinkResult>) {
    let shards = monitor_shards.max(1);
    // Online judging short-circuits runs, so the checkpoint ladders a
    // resumed probe needs are never recorded — online cases (and their
    // probes) always run from scratch, with the same online judge so the
    // shrink predicate is self-consistent.
    if online && scenario.kind.is_heartbeat() && scenario.kind != ScenarioKind::HeartbeatRestart {
        let outcome =
            run_case_online(scenario, plan, seed).expect("kind checked online-capable above");
        if outcome.violations.is_empty() {
            return (outcome, None);
        }
        let mut shrink_events = 0u64;
        let (result, hits) = shrink_with_cache(plan, &outcome, &mut |candidate| {
            let probe = run_case_online(scenario, candidate, seed)
                .expect("kind checked online-capable above");
            shrink_events += probe.events as u64;
            probe
        });
        telemetry.shrink_events += shrink_events;
        telemetry.cache_hits += hits;
        return (outcome, Some(result));
    }
    // The restart scenario already checkpoints and restores *inside* its
    // primary run; layering probe-resume checkpoints over that seam is
    // not supported, so its shrinks replay from scratch. Sync shrinks
    // also replay from scratch: their post-run ε̂ gauges are derived
    // outside the engine, so a pooled-checkpoint resume would need its
    // own gauge bookkeeping for no measurable probe savings (sync plans
    // are channel-only and activate early).
    let from_scratch =
        !checkpointed || scenario.kind == ScenarioKind::HeartbeatRestart || scenario.kind.is_sync();
    if from_scratch {
        let outcome = run_case_sharded(scenario, plan, seed, shards);
        if outcome.violations.is_empty() {
            return (outcome, None);
        }
        let mut shrink_events = 0u64;
        let (result, hits) = shrink_with_cache(plan, &outcome, &mut |candidate| {
            let probe = run_case_sharded(scenario, candidate, seed, shards);
            shrink_events += probe.events as u64;
            probe
        });
        telemetry.shrink_events += shrink_events;
        telemetry.cache_hits += hits;
        return (outcome, Some(result));
    }
    match scenario.kind {
        ScenarioKind::HeartbeatRestart => unreachable!("restart shrinks replay from scratch"),
        ScenarioKind::SyncProbe | ScenarioKind::SyncRounds => {
            unreachable!("sync shrinks replay from scratch")
        }
        ScenarioKind::Heartbeat
        | ScenarioKind::HeartbeatCrash
        | ScenarioKind::HeartbeatGray
        | ScenarioKind::HeartbeatBidi
        | ScenarioKind::Relay
        | ScenarioKind::Partition => run_and_shrink(
            plan,
            telemetry,
            &|p| build_heartbeat(scenario, p, seed),
            &|p, run| judge_heartbeat(scenario, p, run, shards),
            &heartbeat_activation,
        ),
        ScenarioKind::ClockFleet | ScenarioKind::ClockFleetLarge => run_and_shrink(
            plan,
            telemetry,
            &|p| build_clockfleet(scenario, p, seed),
            &|_p, run| judge_clockfleet(scenario, run, shards),
            &clock_activation,
        ),
        ScenarioKind::Mutex | ScenarioKind::MutexContended => run_and_shrink(
            plan,
            telemetry,
            &|p| build_mutex(scenario, p, seed),
            &|_p, run| judge_mutex(scenario, run, shards),
            &clock_activation,
        ),
        ScenarioKind::Register | ScenarioKind::RegisterTriple => run_and_shrink(
            plan,
            telemetry,
            &|p| build_register(scenario, p, seed),
            &|_p, run| judge_register(scenario, seed, run, shards),
            &clock_activation,
        ),
        ScenarioKind::Counter => run_and_shrink(
            plan,
            telemetry,
            &|p| build_counter(scenario, p, seed),
            &|_p, run| judge_counter(scenario, seed, run, shards),
            &clock_activation,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use crate::scenario::run_case;

    fn outcome(violations: Vec<(String, String)>, events: usize) -> CaseOutcome {
        CaseOutcome {
            violations,
            events,
            rejected_clock_requests: 0,
            fingerprint: events as u64,
            metrics: psync_obs::MetricsSnapshot::default(),
        }
    }

    fn plan_of(seqs: &[u32]) -> FaultPlan {
        FaultPlan {
            entries: seqs
                .iter()
                .map(|&seq| FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq,
                })
                .collect(),
        }
    }

    /// Satellite regression: `shrink_probes` counts true case
    /// executions — the driver never re-probes a cached plan, and in
    /// particular never re-runs the final shrunk plan to fetch its
    /// outcome.
    #[test]
    fn cached_driver_probes_each_plan_at_most_once() {
        let plan = plan_of(&[1, 2, 3, 4]);
        // "Fails" iff the plan still contains drop seq 3.
        let failing = |p: &FaultPlan| {
            p.entries
                .iter()
                .any(|e| matches!(e, FaultEntry::Drop { seq: 3, .. }))
        };
        let primary = outcome(vec![("o".into(), "v".into())], 10);
        let mut evaluated: Vec<FaultPlan> = Vec::new();
        let (result, _hits) = shrink_with_cache(&plan, &primary, &mut |candidate| {
            assert!(
                !evaluated.contains(candidate),
                "candidate probed twice: {candidate:?}"
            );
            evaluated.push(candidate.clone());
            if failing(candidate) {
                outcome(vec![("o".into(), "v".into())], 5)
            } else {
                outcome(vec![], 5)
            }
        });
        assert_eq!(result.plan, plan_of(&[3]));
        assert!(!result.outcome.violations.is_empty());
        assert_eq!(result.probes, evaluated.len() as u64);
        // The original plan's outcome was seeded, never re-probed.
        assert!(!evaluated.contains(&plan));
    }

    /// The final outcome comes from the cache even when ddmin's last
    /// evaluation of the winning plan happened many probes earlier.
    #[test]
    fn final_outcome_is_served_from_the_cache() {
        let plan = plan_of(&[7]);
        let primary = outcome(vec![("o".into(), "only".into())], 3);
        let (result, _hits) = shrink_with_cache(&plan, &primary, &mut |candidate| {
            assert!(candidate.is_empty(), "only the empty sub-plan is probed");
            outcome(vec![], 1)
        });
        // A single entry that still fails: ddmin keeps it, and its
        // outcome is the seeded primary — zero extra executions.
        assert_eq!(result.plan, plan);
        assert_eq!(result.outcome, primary);
        assert_eq!(result.probes, 1);
    }

    /// Records `plan`'s primary run, then checks that a pool-resumed
    /// probe of every leave-one-out sub-plan (plus the full and empty
    /// plans) produces a [`CaseOutcome`] bit-identical — violations,
    /// event count, fingerprint, metrics — to a from-scratch run.
    fn assert_probes_match_straight_runs<A: Action>(
        scenario: &ScenarioConfig,
        plan: &FaultPlan,
        seed: u64,
        build: &impl Fn(&FaultPlan) -> BuiltCase<A>,
        judge: &impl Fn(&FaultPlan, &Result<Run<A>, String>) -> JudgeVerdicts,
        activation: &impl Fn(&FaultEntry, &[TimedEvent<A>]) -> usize,
    ) {
        plan.validate(&scenario.envelope())
            .expect("admissible plan");
        let mut telemetry = CampaignTelemetry::default();
        let primary = run_case(scenario, plan, seed);
        let (recorded_outcome, recorded) = run_recorded(plan, &mut telemetry, build, judge);
        assert_eq!(recorded_outcome, primary, "recording run != straight run");

        let mut pool = vec![recorded];
        let mut candidates = vec![plan.clone(), FaultPlan::empty()];
        for i in 0..plan.entries.len() {
            let mut entries = plan.entries.clone();
            entries.remove(i);
            candidates.push(FaultPlan { entries });
        }
        for candidate in candidates {
            let resumed = probe_resumed(
                &mut pool,
                &candidate,
                &mut telemetry,
                build,
                judge,
                activation,
            );
            let straight = run_case(scenario, &candidate, seed);
            assert_eq!(
                resumed, straight,
                "resumed probe diverged for candidate {candidate:?}"
            );
        }
        assert!(
            telemetry.checkpoints > 0,
            "the primary run recorded nothing"
        );
        assert!(pool.len() > 1, "probe runs never joined the resume pool");
    }

    #[test]
    fn heartbeat_probes_are_bit_identical_to_straight_runs() {
        let scenario = ScenarioConfig::heartbeat_default();
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 2,
                },
                FaultEntry::Duplicate {
                    src: 0,
                    dst: 1,
                    seq: 6,
                    delay_ns: 2_500_000,
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 9,
                    delay_ns: 4_000_000,
                },
                FaultEntry::SchedulerBias { pick: 11 },
            ],
        };
        assert_probes_match_straight_runs(
            &scenario,
            &plan,
            0xD15C_0B01,
            &|p| build_heartbeat(&scenario, p, 0xD15C_0B01),
            &|p, run| judge_heartbeat(&scenario, p, run, 1),
            &heartbeat_activation,
        );
    }

    #[test]
    fn failing_heartbeat_probes_stay_bit_identical_through_adoption() {
        // The planted d2+1 bug makes sub-plans keeping the boundary
        // spike fail, so this walk exercises failing probes joining the
        // pool too.
        let scenario = ScenarioConfig::heartbeat_default().with_bug(1);
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 3,
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 7,
                    delay_ns: scenario.d2_ns,
                },
                FaultEntry::SchedulerBias { pick: 5 },
            ],
        };
        assert_probes_match_straight_runs(
            &scenario,
            &plan,
            42,
            &|p| build_heartbeat(&scenario, p, 42),
            &|p, run| judge_heartbeat(&scenario, p, run, 1),
            &heartbeat_activation,
        );
    }

    #[test]
    fn clockfleet_probes_are_bit_identical_to_straight_runs() {
        let scenario = ScenarioConfig::clockfleet_default();
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::ClockSkew {
                    node: 0,
                    at_ns: 50_000_000,
                    offset_ns: scenario.eps_ns,
                },
                // Clamped by the C1–C4 guard: rejection-counter parity
                // between resumed and straight runs is part of the check.
                FaultEntry::ClockBackwardJump {
                    node: 1,
                    at_ns: 100_000_000,
                    jump_ns: scenario.eps_ns * 2 + 5_000_000,
                },
                FaultEntry::SchedulerBias { pick: 5 },
            ],
        };
        assert_probes_match_straight_runs(
            &scenario,
            &plan,
            13,
            &|p| build_clockfleet(&scenario, p, 13),
            &|_p, run| judge_clockfleet(&scenario, run, 1),
            &clock_activation,
        );
    }

    #[test]
    fn register_probes_are_bit_identical_to_straight_runs() {
        let scenario = ScenarioConfig::register_default();
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::ClockSkew {
                    node: 0,
                    at_ns: 20_000_000,
                    offset_ns: scenario.eps_ns,
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 1,
                    delay_ns: scenario.d2_ns,
                },
                FaultEntry::SchedulerBias { pick: 3 },
            ],
        };
        assert_probes_match_straight_runs(
            &scenario,
            &plan,
            7,
            &|p| build_register(&scenario, p, 7),
            &|_p, run| judge_register(&scenario, 7, run, 1),
            &clock_activation,
        );
    }

    #[test]
    fn divergence_index_is_the_smallest_symmetric_difference_activation() {
        let base = RecordedRun::<FdAction> {
            plan: plan_of(&[1, 2]),
            events: ArenaSnapshot::default(),
            cps: Vec::new(),
        };
        let act = |entry: &FaultEntry, _events: &[TimedEvent<FdAction>]| match *entry {
            FaultEntry::Drop { seq, .. } => seq as usize * 10,
            _ => 0,
        };
        // Removing seq 1 (activation 10) and keeping seq 2.
        assert_eq!(divergence_index(&base, &plan_of(&[2]), &act), 10);
        // Removing both: the smaller activation wins.
        assert_eq!(divergence_index(&base, &plan_of(&[]), &act), 10);
        // Nothing removed: no divergence.
        assert_eq!(divergence_index(&base, &plan_of(&[1, 2]), &act), usize::MAX);
        // Additions activate where they would first be consulted — the
        // symmetric difference, not just removals, bounds the resume.
        assert_eq!(divergence_index(&base, &plan_of(&[1, 2, 9]), &act), 90);
        assert_eq!(divergence_index(&base, &plan_of(&[2, 9]), &act), 10);
    }
}
