//! Deterministic fault-injection explorer for the psync workspace.
//!
//! The paper's algorithms are proved correct against an *admissible*
//! adversary: clocks may drift anywhere inside the `C_ε` envelope
//! (axioms C1–C4), and channels may choose any delay inside `[d₁, d₂]`,
//! drop, duplicate or reorder. Unit tests exercise hand-picked
//! adversaries; this crate searches the admissible space mechanically.
//!
//! The pipeline, end to end:
//!
//! 1. **[`plan`]** — a [`FaultPlan`] is a list of declarative fault
//!    entries (clock-skew ramps, attempted backward jumps, drops,
//!    duplicates, delay spikes, scheduler bias). An envelope derived from
//!    the scenario validates plans *before execution*: a skew of exactly
//!    `ε` or a spike of exactly `d₂` is admissible; one tick beyond is
//!    rejected as [`Inadmissible`] — testing the adversary at the
//!    boundary the theorems are tight against, without confusing an
//!    illegal adversary for an algorithm bug.
//! 2. **[`faults`]** — adapters inject an admissible plan into the
//!    existing engines: a [`ChannelFault`](psync_net::ChannelFault) for
//!    the timed channel, a `DelayPolicy` for clock channels, a scripted
//!    [`ClockStrategy`](psync_executor::ClockStrategy) whose off-envelope
//!    requests are *clamped and counted* by the C1–C4 guard, and a
//!    tie-breaking scheduler bias.
//! 3. **[`scenario`]** — factories build the systems under test
//!    (heartbeat failure detection, a clock-node fleet, Algorithm S in
//!    `D_C`) and judge runs with [`Oracle`](psync_verify::Oracle)s:
//!    linearizability, the `C_ε` axiom probes, delivery envelopes,
//!    failure-detector accuracy/completeness, and Lemma 2.1 replays.
//! 4. **[`explore`]** — the seeded campaign loop; every case is a pure
//!    function of its seed.
//! 5. **[`shrink`]** — failing plans are reduced by ddmin to a 1-minimal
//!    counterexample; **[`resume`]** caches probe outcomes and resumes
//!    each probe from an engine checkpoint captured just before its
//!    first divergence from the failing base run, so a probe re-executes
//!    only the suffix its candidate plan can actually change.
//! 6. **[`artifact`]** — failures serialize to self-contained JSON that
//!    [`replay_artifact`] re-executes bit-identically.

pub mod artifact;
pub mod canary;
pub mod explore;
pub mod faults;
pub mod json;
pub mod online;
pub mod plan;
pub mod resume;
pub mod scenario;
pub mod shrink;

pub use artifact::{replay_artifact, Artifact, ARTIFACT_VERSION};
pub use canary::{mutation_score, run_canary_suite, CanaryKind, CanaryOutcome};
pub use explore::{
    default_jobs, first_failure, run_campaign, run_campaign_jobs, run_campaign_with_telemetry,
    CampaignConfig, CampaignReport, CampaignStats, CanaryVerdict, Failure,
};
pub use faults::{scripted_clock_for, seq_of, BiasedScheduler, PlanChannelFault, PlanDelayPolicy};
pub use online::{heartbeat_stream_oracles, run_case_online, run_heartbeat_online};
pub use plan::{at_ns, ns, FaultEntry, FaultEnvelope, FaultPlan, Inadmissible};
pub use resume::CampaignTelemetry;
pub use scenario::{
    clockfleet_oracles, counter_oracles, fingerprint, heartbeat_oracles, mutex_oracles,
    register_oracles, run_case, run_case_sharded, run_clockfleet, run_counter, run_heartbeat,
    run_heartbeat_restart, run_mutex, run_register, run_sync, sync_oracles, CaseOutcome,
    HeartbeatRelay, Judged, ScenarioConfig, ScenarioKind,
};
pub use shrink::shrink_entries;
