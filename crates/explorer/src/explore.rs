//! The seeded exploration loop: generate → validate → run → judge →
//! shrink → dump.
//!
//! A campaign is a pure function of `(CampaignConfig, ScenarioConfig)`:
//! case `i` derives its seed from the campaign seed by splitmix, its plan
//! from that case seed and the scenario's admissibility envelope, and its
//! verdict from a full deterministic run. On failure the plan is shrunk
//! by [`shrink_entries`] (each probe is a complete re-run) and packaged
//! as a replay [`Artifact`].

use psync_obs::MetricsSnapshot;

use crate::artifact::{Artifact, ARTIFACT_VERSION};
use crate::plan::{Chain, FaultPlan};
use crate::scenario::{run_case, ScenarioConfig};
use crate::shrink::shrink_entries;

/// Knobs of one exploration campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of seeded cases to run.
    pub cases: u64,
    /// Campaign seed; case `i` uses `splitmix(seed ^ i)`.
    pub seed: u64,
    /// Maximum entries per generated plan.
    pub max_entries: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            cases: 64,
            seed: 0x0C1A_551C,
            max_entries: 6,
        }
    }
}

/// One failure found by a campaign, already shrunk and packaged.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the case within the campaign.
    pub case_index: u64,
    /// Entries in the plan as generated, before shrinking.
    pub original_entries: usize,
    /// The replayable reproduction (carries the shrunk plan).
    pub artifact: Artifact,
}

/// Aggregate statistics of a campaign, for coverage reporting.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Cases run.
    pub cases: u64,
    /// Total fault entries across all generated plans.
    pub entries: u64,
    /// Generated entries by kind keyword (sorted by keyword).
    pub entries_by_kind: Vec<(&'static str, u64)>,
    /// Total recorded events across all (non-probe) case runs.
    pub events: u64,
    /// Clock-script requests clamped by the C1–C4 guard across all runs.
    pub rejected_clock_requests: u64,
    /// Extra case executions spent probing during shrinks.
    pub shrink_probes: u64,
}

impl CampaignStats {
    fn count_kind(&mut self, kind: &'static str) {
        match self.entries_by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => {
                self.entries_by_kind.push((kind, 1));
                self.entries_by_kind.sort_unstable_by_key(|(k, _)| *k);
            }
        }
    }
}

/// The result of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Scenario the campaign targeted.
    pub scenario: ScenarioConfig,
    /// Coverage statistics.
    pub stats: CampaignStats,
    /// Observer metrics aggregated over the campaign's primary case runs
    /// (shrink probes and post-shrink confirmation runs are excluded, so
    /// the totals stay a pure function of `cases` seeds).
    pub metrics: MetricsSnapshot,
    /// Shrunk, replayable failures (empty on a clean campaign).
    pub failures: Vec<Failure>,
}

/// Runs one seeded campaign against one scenario.
#[must_use]
pub fn run_campaign(campaign: &CampaignConfig, scenario: &ScenarioConfig) -> CampaignReport {
    let envelope = scenario.envelope();
    let mut stats = CampaignStats::default();
    let mut metrics = MetricsSnapshot::default();
    let mut failures = Vec::new();
    let mut seeder = Chain::new(campaign.seed);
    for case_index in 0..campaign.cases {
        let case_seed = seeder.next();
        let plan = FaultPlan::generate(case_seed, &envelope, campaign.max_entries);
        debug_assert!(
            plan.validate(&envelope).is_ok(),
            "generator escaped the envelope"
        );
        stats.cases += 1;
        stats.entries += plan.len() as u64;
        for entry in &plan.entries {
            stats.count_kind(entry.kind());
        }
        let outcome = run_case(scenario, &plan, case_seed);
        stats.events += outcome.events as u64;
        stats.rejected_clock_requests += outcome.rejected_clock_requests;
        metrics.absorb(&outcome.metrics);
        if outcome.violations.is_empty() {
            continue;
        }
        // Shrink: every probe is a full deterministic re-run of the case
        // with a candidate sub-plan; "fails" = any oracle violation.
        let mut probes = 0u64;
        let shrunk = shrink_entries(&plan, &mut |candidate| {
            probes += 1;
            !run_case(scenario, candidate, case_seed)
                .violations
                .is_empty()
        });
        stats.shrink_probes += probes;
        let final_outcome = run_case(scenario, &shrunk, case_seed);
        let violation = final_outcome
            .violations
            .first()
            .or_else(|| outcome.violations.first())
            .cloned();
        failures.push(Failure {
            case_index,
            original_entries: plan.len(),
            artifact: Artifact {
                version: ARTIFACT_VERSION,
                config: scenario.clone(),
                seed: case_seed,
                plan: shrunk,
                violation,
            },
        });
    }
    CampaignReport {
        scenario: scenario.clone(),
        stats,
        metrics,
        failures,
    }
}

/// Convenience: first failure of a campaign, if any — what most tests
/// want.
#[must_use]
pub fn first_failure(campaign: &CampaignConfig, scenario: &ScenarioConfig) -> Option<Failure> {
    run_campaign(campaign, scenario).failures.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaigns_are_deterministic() {
        let campaign = CampaignConfig {
            cases: 6,
            ..CampaignConfig::default()
        };
        let scenario = ScenarioConfig::clockfleet_default();
        let a = run_campaign(&campaign, &scenario);
        let b = run_campaign(&campaign, &scenario);
        assert_eq!(a.stats.entries, b.stats.entries);
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.failures.len(), b.failures.len());
        // The aggregated observer metrics are part of the determinism
        // contract, and they cross-check the stats the loop keeps itself.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.counter("engine.steps"), a.stats.events);
        assert_eq!(
            a.metrics.counter("clock.rejected_requests"),
            a.stats.rejected_clock_requests
        );
    }

    #[test]
    fn campaign_reports_kind_coverage() {
        let campaign = CampaignConfig {
            cases: 12,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&campaign, &ScenarioConfig::heartbeat_default());
        assert_eq!(report.stats.cases, 12);
        assert!(report.stats.entries > 0);
        assert!(!report.stats.entries_by_kind.is_empty());
        let counted: u64 = report.stats.entries_by_kind.iter().map(|(_, n)| n).sum();
        assert_eq!(counted, report.stats.entries);
    }
}
