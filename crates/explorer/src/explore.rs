//! The seeded exploration loop: generate → validate → run → judge →
//! shrink → dump.
//!
//! A campaign is a pure function of `(CampaignConfig, ScenarioConfig)`:
//! case `i` derives its seed from the campaign seed by splitmix, its plan
//! from that case seed and the scenario's admissibility envelope, and its
//! verdict from a full deterministic run. On failure the plan is shrunk
//! by the cached ddmin driver in [`crate::resume`] — by default each
//! probe resumes from a checkpoint just before its first divergence from
//! the failing base run, rather than re-running the whole prefix — and
//! packaged as a replay [`Artifact`]. The report is bit-identical
//! whether or not probes resume from checkpoints; only the
//! [`CampaignTelemetry`] cost counters differ.
//!
//! # Parallel campaigns stay bit-identical
//!
//! [`run_campaign_jobs`] runs the cases on a worker pool, and the report
//! is **bit-identical** to the sequential one, by construction:
//!
//! 1. *Seeding is independent of execution order.* All case seeds are
//!    drawn from the campaign's splitmix `Chain` up front, so case `i`'s
//!    seed is the same no matter which worker runs it or when.
//! 2. *Cases are isolated.* A case builds its own engine and observers
//!    from `(scenario, plan, seed)` and shares nothing mutable; its
//!    entire contribution is captured in a per-case record.
//! 3. *Merging replays the sequential op order.* Records are merged in
//!    ascending `case_index` order, performing the same stat updates,
//!    `absorb` calls and failure pushes, in the same order, as the
//!    sequential loop — so even order-sensitive state (first-seen kind
//!    ordering, metric absorption) comes out identical.
//!
//! Workers claim case indices from an atomic counter (dynamic load
//! balancing — a case that shrinks a counterexample can be 100× the cost
//! of a clean one) and publish records into per-case slots; the merge
//! only starts after every slot is filled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use psync_obs::MetricsSnapshot;

use crate::artifact::{Artifact, ARTIFACT_VERSION};
use crate::canary::CanaryKind;
use crate::plan::{Chain, FaultEntry, FaultEnvelope, FaultPlan};
use crate::resume::{run_shrinkable_case, CampaignTelemetry};
use crate::scenario::ScenarioConfig;

/// Knobs of one exploration campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of seeded cases to run.
    pub cases: u64,
    /// Campaign seed; case `i` uses `splitmix(seed ^ i)`.
    pub seed: u64,
    /// Maximum entries per generated plan.
    pub max_entries: usize,
    /// Resume shrink probes from base-run checkpoints (the default)
    /// instead of re-running each probe from scratch. The report is
    /// bit-identical either way; this knob only trades probe wall-clock
    /// against checkpoint memory, and exists so the cross-check in CI
    /// (and anyone debugging the resume machinery) can diff the modes.
    pub checkpointed_shrink: bool,
    /// Judge heartbeat-family cases *online*: stream oracles ride the
    /// engine's observer hooks and the run stops the moment a violation
    /// is certain, so failing cases cost events-to-first-violation
    /// instead of the horizon. Kinds without stream oracles fall back to
    /// the post-hoc judge. Off by default: a short-circuited case
    /// records fewer events (and only the certain violation), so online
    /// reports are *not* comparable to offline reports — the mode is
    /// still bit-identical across `--jobs` and replays of itself.
    pub online: bool,
    /// Judge-lane shard count for post-hoc oracle checking. A pure
    /// performance knob threaded down to `check_all_sharded`: verdicts
    /// and metrics are bit-identical for every value, so it lives here —
    /// per campaign — rather than in the `(config, plan, seed)` replay
    /// triple or (as it once did) a process-global setter.
    pub monitor_shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            cases: 64,
            seed: 0x0C1A_551C,
            max_entries: 6,
            checkpointed_shrink: true,
            online: false,
            monitor_shards: 1,
        }
    }
}

/// One failure found by a campaign, already shrunk and packaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Index of the case within the campaign.
    pub case_index: u64,
    /// Entries in the plan as generated, before shrinking.
    pub original_entries: usize,
    /// The replayable reproduction (carries the shrunk plan).
    pub artifact: Artifact,
}

/// Aggregate statistics of a campaign, for coverage reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Cases run.
    pub cases: u64,
    /// Total fault entries across all generated plans.
    pub entries: u64,
    /// Generated entries by kind keyword (sorted by keyword).
    pub entries_by_kind: Vec<(&'static str, u64)>,
    /// Total recorded events across all (non-probe) case runs.
    pub events: u64,
    /// Clock-script requests clamped by the C1–C4 guard across all runs.
    pub rejected_clock_requests: u64,
    /// True case executions spent probing during shrinks: every probe is
    /// counted exactly once (repeat candidates are served from a cache,
    /// and the final shrunk plan's outcome is read from it too).
    pub shrink_probes: u64,
    /// Primary-run violations by oracle name (sorted by name) — the
    /// per-oracle violation density's numerators; the denominator is
    /// `cases`.
    pub violations_by_oracle: Vec<(String, u64)>,
    /// Distinct fault points (injection sites, see
    /// [`FaultEntry::fault_point`]) the generated plans exercised, sorted.
    pub fault_points_hit: Vec<String>,
    /// Size of the scenario envelope's fault-point catalog — the
    /// denominator of the fault-point-coverage ratio
    /// `fault_points_hit.len() / fault_points_total`.
    pub fault_points_total: u64,
}

impl CampaignStats {
    fn count_kind(&mut self, kind: &'static str) {
        match self.entries_by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => {
                self.entries_by_kind.push((kind, 1));
                self.entries_by_kind.sort_unstable_by_key(|(k, _)| *k);
            }
        }
    }

    fn count_oracle(&mut self, oracle: &str) {
        match self
            .violations_by_oracle
            .iter_mut()
            .find(|(k, _)| k == oracle)
        {
            Some((_, n)) => *n += 1,
            None => {
                self.violations_by_oracle.push((oracle.to_string(), 1));
                self.violations_by_oracle.sort_unstable();
            }
        }
    }

    fn hit_fault_point(&mut self, point: &str) {
        if let Err(i) = self
            .fault_points_hit
            .binary_search_by(|p| p.as_str().cmp(point))
        {
            self.fault_points_hit.insert(i, point.to_string());
        }
    }
}

/// The campaign's verdict on a planted canary: did the expected oracle
/// catch the bug, and how small did the caught cases shrink?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanaryVerdict {
    /// The planted bug the campaign's scenario carried.
    pub canary: CanaryKind,
    /// Name prefix of the oracle expected to report it.
    pub expected_oracle: String,
    /// Failing cases whose primary violation came from that oracle.
    pub caught_cases: u64,
    /// Smallest shrunk-plan length among those cases (`None` when none
    /// caught) — the canary regression gate asserts this stays tiny.
    pub min_shrunk_entries: Option<u64>,
}

/// The result of [`run_campaign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Scenario the campaign targeted.
    pub scenario: ScenarioConfig,
    /// Coverage statistics.
    pub stats: CampaignStats,
    /// Observer metrics aggregated over the campaign's primary case runs
    /// (shrink probes and checkpoint-recording runs are excluded, so the
    /// totals stay a pure function of `cases` seeds).
    pub metrics: MetricsSnapshot,
    /// Shrunk, replayable failures (empty on a clean campaign).
    pub failures: Vec<Failure>,
    /// The canary verdict, when the scenario carried a planted bug.
    pub canary: Option<CanaryVerdict>,
}

/// Everything one case contributes to a report, captured so that cases
/// can execute in any order (or concurrently) and still be merged in
/// strict `case_index` order.
#[derive(Debug)]
struct CaseRecord {
    /// Kind keyword of each generated fault entry, in plan order —
    /// preserves the sequential loop's first-seen kind ordering when
    /// merged.
    entry_kinds: Vec<&'static str>,
    /// Fault point of each generated entry, in plan order.
    entry_points: Vec<String>,
    /// Oracle names of the primary run's violations, in oracle order.
    violation_oracles: Vec<String>,
    /// Recorded events of the primary run.
    events: u64,
    /// Clock-script requests clamped during the primary run.
    rejected_clock_requests: u64,
    /// Observer metrics of the primary run.
    metrics: MetricsSnapshot,
    /// True case executions spent probing during the shrink (0 for a
    /// passing case).
    shrink_probes: u64,
    /// Shrink-phase cost counters (all zero for a passing case).
    telemetry: CampaignTelemetry,
    /// The shrunk, packaged failure, when the case found a violation.
    failure: Option<Failure>,
}

/// Runs case `case_index` of a campaign: generate → run → judge → shrink.
///
/// Pure function of its arguments — no shared mutable state — which is
/// what makes the worker pool in [`run_campaign_jobs`] deterministic.
fn run_one_case(
    campaign: &CampaignConfig,
    scenario: &ScenarioConfig,
    envelope: &FaultEnvelope,
    case_index: u64,
    case_seed: u64,
) -> CaseRecord {
    let plan = FaultPlan::generate(case_seed, envelope, campaign.max_entries);
    debug_assert!(
        plan.validate(envelope).is_ok(),
        "generator escaped the envelope"
    );
    let entry_kinds: Vec<&'static str> = plan.entries.iter().map(FaultEntry::kind).collect();
    let entry_points: Vec<String> = plan.entries.iter().map(FaultEntry::fault_point).collect();
    // Run the primary and, if it fails, shrink it: each probe is a
    // deterministic execution of the case under a candidate sub-plan
    // ("fails" = any oracle violation), resumed from a pooled checkpoint
    // unless the config says replay from scratch. Both modes produce the
    // same outcome, shrunk plan, and report.
    let mut telemetry = CampaignTelemetry::default();
    let (outcome, shrunk) = run_shrinkable_case(
        scenario,
        &plan,
        case_seed,
        campaign.checkpointed_shrink,
        campaign.online,
        campaign.monitor_shards,
        &mut telemetry,
    );
    let mut record = CaseRecord {
        entry_kinds,
        entry_points,
        violation_oracles: outcome
            .violations
            .iter()
            .map(|(oracle, _)| oracle.clone())
            .collect(),
        events: outcome.events as u64,
        rejected_clock_requests: outcome.rejected_clock_requests,
        metrics: outcome.metrics.clone(),
        shrink_probes: 0,
        telemetry,
        failure: None,
    };
    let Some(shrunk) = shrunk else {
        return record;
    };
    record.shrink_probes = shrunk.probes;
    let violation = shrunk
        .outcome
        .violations
        .first()
        .or_else(|| outcome.violations.first())
        .cloned();
    record.failure = Some(Failure {
        case_index,
        original_entries: plan.len(),
        artifact: Artifact {
            version: ARTIFACT_VERSION,
            config: scenario.clone(),
            seed: case_seed,
            plan: shrunk.plan,
            violation,
        },
    });
    record
}

/// Folds per-case records — in ascending case order — into the report,
/// performing the same updates in the same order as a sequential loop.
fn merge_records(
    scenario: &ScenarioConfig,
    records: impl IntoIterator<Item = CaseRecord>,
) -> (CampaignReport, CampaignTelemetry) {
    let mut stats = CampaignStats {
        fault_points_total: scenario.envelope().fault_points().len() as u64,
        ..CampaignStats::default()
    };
    let mut metrics = MetricsSnapshot::default();
    let mut telemetry = CampaignTelemetry::default();
    let mut failures = Vec::new();
    for record in records {
        stats.cases += 1;
        stats.entries += record.entry_kinds.len() as u64;
        for kind in record.entry_kinds {
            stats.count_kind(kind);
        }
        for point in &record.entry_points {
            stats.hit_fault_point(point);
        }
        for oracle in &record.violation_oracles {
            stats.count_oracle(oracle);
        }
        stats.events += record.events;
        stats.rejected_clock_requests += record.rejected_clock_requests;
        metrics.absorb(&record.metrics);
        stats.shrink_probes += record.shrink_probes;
        telemetry.absorb(&record.telemetry);
        if let Some(failure) = record.failure {
            failures.push(failure);
        }
    }
    let canary = scenario.canary.map(|canary| {
        let expected = canary.expected_oracle();
        let caught: Vec<&Failure> = failures
            .iter()
            .filter(|f| {
                f.artifact
                    .violation
                    .as_ref()
                    .is_some_and(|(oracle, _)| oracle.starts_with(expected))
            })
            .collect();
        CanaryVerdict {
            canary,
            expected_oracle: expected.to_string(),
            caught_cases: caught.len() as u64,
            min_shrunk_entries: caught.iter().map(|f| f.artifact.plan.len() as u64).min(),
        }
    });
    let report = CampaignReport {
        scenario: scenario.clone(),
        stats,
        metrics,
        failures,
        canary,
    };
    (report, telemetry)
}

/// The worker count [`run_campaign`] uses: `PSYNC_JOBS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if even that is unavailable).
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("PSYNC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs one seeded campaign against one scenario on `jobs` workers,
/// additionally returning the shrink-phase cost telemetry — the side
/// channel the checkpoint-resume benchmark compares across probe modes.
/// The [`CampaignReport`] half is what [`run_campaign_jobs`] returns.
#[must_use]
pub fn run_campaign_with_telemetry(
    campaign: &CampaignConfig,
    scenario: &ScenarioConfig,
    jobs: usize,
) -> (CampaignReport, CampaignTelemetry) {
    let envelope = scenario.envelope();
    // All case seeds are drawn up front from the sequential chain, so the
    // mapping case → seed never depends on worker scheduling.
    let mut seeder = Chain::new(campaign.seed);
    let seeds: Vec<u64> = (0..campaign.cases).map(|_| seeder.next()).collect();

    if jobs <= 1 || seeds.len() <= 1 {
        let records = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| run_one_case(campaign, scenario, &envelope, i as u64, seed));
        return merge_records(scenario, records);
    }

    let workers = jobs.min(seeds.len());
    let next = AtomicU64::new(0);
    let slots: Vec<OnceLock<CaseRecord>> = seeds.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Dynamic claiming: whichever worker is free takes the
                // next unclaimed case, so one expensive shrink does not
                // stall a statically assigned stripe of cases.
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                let Some(&seed) = seeds.get(i) else {
                    break;
                };
                let record = run_one_case(campaign, scenario, &envelope, i as u64, seed);
                assert!(slots[i].set(record).is_ok(), "case {i} claimed twice");
            });
        }
    });
    let records = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker pool filled every slot"));
    merge_records(scenario, records)
}

/// Runs one seeded campaign against one scenario on `jobs` workers.
///
/// The report is bit-identical for every `jobs` value (see the module
/// docs for the argument); `jobs = 1` runs the cases inline on the
/// calling thread with no pool at all.
#[must_use]
pub fn run_campaign_jobs(
    campaign: &CampaignConfig,
    scenario: &ScenarioConfig,
    jobs: usize,
) -> CampaignReport {
    run_campaign_with_telemetry(campaign, scenario, jobs).0
}

/// Runs one seeded campaign against one scenario, on [`default_jobs`]
/// workers. Determinism is unaffected by the worker count: the report is
/// bit-identical to `run_campaign_jobs(campaign, scenario, 1)`.
#[must_use]
pub fn run_campaign(campaign: &CampaignConfig, scenario: &ScenarioConfig) -> CampaignReport {
    run_campaign_jobs(campaign, scenario, default_jobs())
}

/// Convenience: first failure of a campaign, if any — what most tests
/// want.
#[must_use]
pub fn first_failure(campaign: &CampaignConfig, scenario: &ScenarioConfig) -> Option<Failure> {
    run_campaign(campaign, scenario).failures.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaigns_are_deterministic() {
        let campaign = CampaignConfig {
            cases: 6,
            ..CampaignConfig::default()
        };
        let scenario = ScenarioConfig::clockfleet_default();
        let a = run_campaign(&campaign, &scenario);
        let b = run_campaign(&campaign, &scenario);
        assert_eq!(a.stats.entries, b.stats.entries);
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.failures.len(), b.failures.len());
        // The aggregated observer metrics are part of the determinism
        // contract, and they cross-check the stats the loop keeps itself.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.counter("engine.steps"), a.stats.events);
        assert_eq!(
            a.metrics.counter("clock.rejected_requests"),
            a.stats.rejected_clock_requests
        );
    }

    #[test]
    fn campaign_reports_kind_coverage() {
        let campaign = CampaignConfig {
            cases: 12,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&campaign, &ScenarioConfig::heartbeat_default());
        assert_eq!(report.stats.cases, 12);
        assert!(report.stats.entries > 0);
        assert!(!report.stats.entries_by_kind.is_empty());
        let counted: u64 = report.stats.entries_by_kind.iter().map(|(_, n)| n).sum();
        assert_eq!(counted, report.stats.entries);
    }
}
