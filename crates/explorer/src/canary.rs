//! Planted-bug canaries: known-bad mutants of each scenario, tagged with
//! the oracle expected to catch them.
//!
//! A VOPR-style campaign is only as trustworthy as its oracles, and the
//! only way to know an oracle works is to feed it a bug it *must* catch.
//! Each [`CanaryKind`] plants one specific defect — a channel that
//! overshoots `d₂`, a timeout budgeted without the drop allowance, a
//! guard band of zero, a register whose `2ε` read wait is skipped — into
//! an otherwise default scenario, and names the oracle whose violation
//! proves the campaign would have found it. The suite's **mutation
//! score** (canaries caught / canaries planted) is the falsification
//! metric CI gates on: a score below 1.0 means an oracle has silently
//! stopped pulling its weight.

use crate::explore::{run_campaign_jobs, CampaignConfig, CampaignReport};
use crate::scenario::{ScenarioConfig, ScenarioKind};

/// A planted bug: which scenario it mutates and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanaryKind {
    /// Channel lets a boundary delay spike overshoot `d₂` by one tick.
    DelayOvershoot,
    /// Monitor timeout budgeted without the `max_drops` allowance.
    FdTimeoutUnderbudget,
    /// Channel delivers every message twice, plan or no plan.
    DuplicateDelivery,
    /// Node 0's clock runs outside the declared `ε` envelope.
    SkewBeyondEps,
    /// Node 0's beeper runs 1 ms faster than its declared cadence.
    CadenceRush,
    /// Slot users drop their guard bands (`guard = 0`), so any clock
    /// skew overlaps adjacent occupancies.
    MutexGuardZero,
    /// The relay heals a stall by flushing its backlog LIFO, scrambling
    /// first-delivery order.
    RelayLifoHeal,
    /// Algorithm S skips the `2ε` read wait (`read_slack = 0`).
    RegisterSignFlip,
    /// The counter object skips the `2ε` read wait (`read_slack = 0`).
    CounterSignFlip,
    /// Sync nodes hold every echo back past the round's usable window —
    /// an in-envelope component bug (no channel exceeds `d₂`) that
    /// leaves every offset sample contradictory, so no node ever covers
    /// its peers or beats the `2ε` prior.
    SyncSkewBurst,
}

impl CanaryKind {
    /// Stable keyword (CLI `--canaries`, telemetry JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CanaryKind::DelayOvershoot => "delay_overshoot",
            CanaryKind::FdTimeoutUnderbudget => "fd_timeout_underbudget",
            CanaryKind::DuplicateDelivery => "duplicate_delivery",
            CanaryKind::SkewBeyondEps => "skew_beyond_eps",
            CanaryKind::CadenceRush => "cadence_rush",
            CanaryKind::MutexGuardZero => "mutex_guard_zero",
            CanaryKind::RelayLifoHeal => "relay_lifo_heal",
            CanaryKind::RegisterSignFlip => "register_sign_flip",
            CanaryKind::CounterSignFlip => "counter_sign_flip",
            CanaryKind::SyncSkewBurst => "sync_skew_burst",
        }
    }

    /// Parses a keyword.
    ///
    /// # Errors
    ///
    /// Unknown keyword.
    pub fn from_name(s: &str) -> Result<CanaryKind, String> {
        CanaryKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown canary {s:?}"))
    }

    /// Every registered canary.
    #[must_use]
    pub fn all() -> [CanaryKind; 10] {
        [
            CanaryKind::DelayOvershoot,
            CanaryKind::FdTimeoutUnderbudget,
            CanaryKind::DuplicateDelivery,
            CanaryKind::SkewBeyondEps,
            CanaryKind::CadenceRush,
            CanaryKind::MutexGuardZero,
            CanaryKind::RelayLifoHeal,
            CanaryKind::RegisterSignFlip,
            CanaryKind::CounterSignFlip,
            CanaryKind::SyncSkewBurst,
        ]
    }

    /// The scenario family the bug is planted into.
    #[must_use]
    pub fn base_kind(self) -> ScenarioKind {
        match self {
            CanaryKind::DelayOvershoot
            | CanaryKind::FdTimeoutUnderbudget
            | CanaryKind::DuplicateDelivery => ScenarioKind::Heartbeat,
            CanaryKind::SkewBeyondEps | CanaryKind::CadenceRush => ScenarioKind::ClockFleet,
            CanaryKind::MutexGuardZero => ScenarioKind::Mutex,
            CanaryKind::RelayLifoHeal => ScenarioKind::Relay,
            CanaryKind::RegisterSignFlip => ScenarioKind::Register,
            CanaryKind::CounterSignFlip => ScenarioKind::Counter,
            CanaryKind::SyncSkewBurst => ScenarioKind::SyncProbe,
        }
    }

    /// Name prefix of the oracle expected to catch the bug: a campaign
    /// *catches* the canary when some failure's primary violation comes
    /// from an oracle whose name starts with this.
    #[must_use]
    pub fn expected_oracle(self) -> &'static str {
        match self {
            CanaryKind::DelayOvershoot | CanaryKind::DuplicateDelivery => "delivery envelope",
            CanaryKind::FdTimeoutUnderbudget => "failure detector",
            CanaryKind::SkewBeyondEps => "C_eps",
            CanaryKind::CadenceRush => "clock cadence",
            CanaryKind::MutexGuardZero => "mutual exclusion",
            CanaryKind::RelayLifoHeal => "fifo order",
            CanaryKind::RegisterSignFlip => "linearizable read-write register",
            CanaryKind::CounterSignFlip => "linearizable object",
            CanaryKind::SyncSkewBurst => "C_eps(\u{3b5}\u{302} achieved",
        }
    }

    /// The mutated scenario: the base kind's default config with this
    /// bug planted.
    #[must_use]
    pub fn scenario(self) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::default_for(self.base_kind());
        cfg.canary = Some(self);
        if self == CanaryKind::DelayOvershoot {
            cfg.bug_extra_ns = 1;
        }
        cfg
    }
}

/// One canary's campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanaryOutcome {
    /// The planted bug.
    pub kind: CanaryKind,
    /// The campaign run against the mutated scenario; its
    /// [`CanaryVerdict`](crate::explore::CanaryVerdict) says whether the
    /// expected oracle caught the bug.
    pub report: CampaignReport,
}

impl CanaryOutcome {
    /// Did the expected oracle catch the planted bug at least once?
    #[must_use]
    pub fn caught(&self) -> bool {
        self.report
            .canary
            .as_ref()
            .is_some_and(|v| v.caught_cases > 0)
    }
}

/// Runs one campaign per canary (same campaign knobs for each) and
/// returns the per-canary outcomes in registry order.
#[must_use]
pub fn run_canary_suite(
    kinds: &[CanaryKind],
    campaign: &CampaignConfig,
    jobs: usize,
) -> Vec<CanaryOutcome> {
    kinds
        .iter()
        .map(|&kind| CanaryOutcome {
            kind,
            report: run_campaign_jobs(campaign, &kind.scenario(), jobs),
        })
        .collect()
}

/// `(caught, planted)` across a suite — the mutation score as a ratio.
#[must_use]
pub fn mutation_score(outcomes: &[CanaryOutcome]) -> (u64, u64) {
    let caught = outcomes.iter().filter(|o| o.caught()).count() as u64;
    (caught, outcomes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in CanaryKind::all() {
            assert_eq!(CanaryKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(CanaryKind::from_name("nope").is_err());
    }

    #[test]
    fn scenarios_carry_the_canary_tag() {
        for kind in CanaryKind::all() {
            let cfg = kind.scenario();
            assert_eq!(cfg.canary, Some(kind));
            assert_eq!(cfg.kind, kind.base_kind());
        }
    }
}
