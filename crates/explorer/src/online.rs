//! Online judging of heartbeat-family cases: stream oracles consume
//! events through the engine's [`Observer`](psync_executor::Observer)
//! hooks *while the case runs*, and the driver stops the engine the
//! moment any oracle declares a violation certain — judging cost scales
//! with the distance to the first violation instead of the horizon.
//!
//! Three [`StreamOracle`]s mirror the heartbeat family's post-hoc
//! oracles byte-for-byte (same names, same messages):
//!
//! * `EnvelopeStream` — the `[d₁, d₂]` delivery envelope plus the
//!   plan's drop/duplicate ledger ("delivery envelope").
//! * `FifoStream` — per-edge FIFO first-delivery order ("fifo order"),
//!   the incremental form of [`psync_verify::check_fifo_per_edge`].
//! * `FdStream` — per-pair failure-detector accuracy and completeness
//!   ("failure detector"). Accuracy violations are certain the instant
//!   the offending suspicion (or its absence past the detection bound)
//!   is observed; completeness is only *decidable* at the horizon, but
//!   becomes certain mid-run once the bound has silently expired —
//!   every continuation then violates either completeness or the bound.
//!
//! The parity contract (pinned by this module's tests): a run driven to
//! its natural stop without short-circuiting yields exactly the
//! verdicts the post-hoc oracles of the same names produce on the
//! recorded execution. A short-circuited run instead reports the single
//! certain violation; its message describes the truncated prefix, which
//! is precisely what a failing case's artifact wants. The Lemma 2.1
//! replay oracles stay post-hoc only — replay is a whole-execution
//! property with no incremental form, and a certain safety violation
//! makes a replay verdict moot.

use std::collections::{BTreeMap, BTreeSet};

use psync_apps::heartbeat::{FdAction, FdOp};
use psync_automata::{TimedEvent, Verdict};
use psync_executor::StopReason;
use psync_net::SysAction;
use psync_obs::{monitor_snapshot, OnlineJudge};
use psync_time::{DelayBounds, Duration, Time};
use psync_verify::StreamOracle;

use crate::faults::seq_of;
use crate::plan::{at_ns, ns, FaultEntry, FaultPlan};
use crate::scenario::{
    build_heartbeat_with, finish_case, hb_shape, monitor_params, outcome_of, CaseOutcome, Judged,
    ScenarioConfig, ScenarioKind,
};

/// Events between judge polls: the engine pauses every this many events
/// so the driver can check for a certain violation. Small enough that a
/// short-circuit saves nearly the whole tail even on the catalog's
/// short default horizons, large enough that the pause bookkeeping is
/// noise (a pause is just an early return from the step loop).
const ONLINE_CHUNK: usize = 32;

/// Streaming form of the "delivery envelope" oracle: every `Recv` must
/// match a prior `Send`, land inside the declared `[d₁, d₂]` window,
/// not resurrect a planned drop, and not exceed its duplicate budget.
/// Every violation here is existential, hence certain on sight.
struct EnvelopeStream {
    declared: DelayBounds,
    dropped: Vec<(u32, u32, u32)>,
    duplicated: Vec<(u32, u32, u32)>,
    sends: Vec<(u64, Time)>,
    copies: Vec<(u64, u32)>,
    violation: Option<String>,
}

impl StreamOracle<FdAction> for EnvelopeStream {
    fn name(&self) -> String {
        "delivery envelope".to_string()
    }

    fn observe_event(&mut self, i: usize, e: &TimedEvent<FdAction>) {
        if self.violation.is_some() {
            return;
        }
        match &e.action {
            SysAction::Send(env) => self.sends.push((env.id.0, e.now)),
            SysAction::Recv(env) => {
                let Some((_, sent)) = self.sends.iter().find(|(id, _)| *id == env.id.0) else {
                    self.violation = Some(format!(
                        "event {i}: received message {} that was never sent",
                        env.id.0
                    ));
                    return;
                };
                let latency = e.now - *sent;
                if latency < self.declared.min() || latency > self.declared.max() {
                    self.violation = Some(format!(
                        "event {i}: message {} delivered after {latency}, outside [{}, {}]",
                        env.id.0,
                        self.declared.min(),
                        self.declared.max()
                    ));
                    return;
                }
                let seq = seq_of(env.id);
                let edge_seq = (env.src.0 as u32, env.dst.0 as u32, seq);
                if self.dropped.contains(&edge_seq) {
                    self.violation = Some(format!(
                        "event {i}: message {seq} was delivered despite a planned drop"
                    ));
                    return;
                }
                match self.copies.iter_mut().find(|(id, _)| *id == env.id.0) {
                    Some((_, n)) => *n += 1,
                    None => self.copies.push((env.id.0, 1)),
                }
                let n = self
                    .copies
                    .iter()
                    .find(|(id, _)| *id == env.id.0)
                    .map_or(0, |(_, n)| *n);
                let allowed = if self.duplicated.contains(&edge_seq) {
                    2
                } else {
                    1
                };
                if n > allowed {
                    self.violation = Some(format!(
                        "event {i}: message {seq} delivered {n} times (plan allows {allowed})"
                    ));
                }
            }
            _ => {}
        }
    }

    fn violation(&self) -> Option<String> {
        self.violation.clone()
    }

    fn finish(&mut self, _end: Time) -> Verdict {
        match &self.violation {
            Some(why) => Verdict::Violated(why.clone()),
            None => Verdict::Holds,
        }
    }
}

/// Streaming form of [`psync_verify::check_fifo_per_edge`]: on each
/// `(src, dst)` edge a never-before-seen sequence number must not
/// surface after a higher one already has; re-deliveries of seen
/// sequence numbers (duplicates) are always admissible.
struct FifoStream {
    edges: BTreeMap<(usize, usize), (u32, BTreeSet<u32>)>,
    violation: Option<String>,
}

impl StreamOracle<FdAction> for FifoStream {
    fn name(&self) -> String {
        "fifo order".to_string()
    }

    fn observe_event(&mut self, _i: usize, e: &TimedEvent<FdAction>) {
        if self.violation.is_some() {
            return;
        }
        let SysAction::Recv(env) = &e.action else {
            return;
        };
        let seq = (env.id.0 & 0xffff_ffff) as u32;
        let (max_seen, seen) = self
            .edges
            .entry((env.src.0, env.dst.0))
            .or_insert_with(|| (0, BTreeSet::new()));
        if seen.contains(&seq) {
            return;
        }
        if !seen.is_empty() && seq < *max_seen {
            self.violation = Some(format!(
                "FIFO violation on {}->{}: first delivery of seq {} at {} \
                 after seq {} was already delivered",
                env.src, env.dst, seq, e.now, max_seen
            ));
            return;
        }
        *max_seen = seq.max(*max_seen);
        seen.insert(seq);
    }

    fn violation(&self) -> Option<String> {
        self.violation.clone()
    }

    fn finish(&mut self, _end: Time) -> Verdict {
        match &self.violation {
            Some(why) => Verdict::Violated(why.clone()),
            None => Verdict::Holds,
        }
    }
}

/// Streaming form of the "failure detector" oracle: per monitored pair,
/// the first crash of the target and the first suspicion by the monitor
/// decide accuracy (no false or late suspicions) and completeness (a
/// crash inside the horizon must be suspected within the detection
/// bound).
struct FdStream {
    /// `(monitor, target)` pairs, in the shape's order.
    pairs: Vec<(u32, u32)>,
    detection: Duration,
    /// The *configured* horizon — completeness judges against it, not
    /// against wherever the run actually stopped, matching the post-hoc
    /// oracle.
    horizon: Time,
    /// Per pair: first crash of the target, first suspicion by the
    /// monitor.
    observed: Vec<(Option<Time>, Option<Time>)>,
    /// Time of the latest event seen (event times are non-decreasing).
    latest: Time,
}

impl FdStream {
    /// The post-hoc verdict for pair `k` from what has been observed so
    /// far; `None` = nothing wrong yet.
    fn pair_verdict(&self, k: usize) -> Option<String> {
        let (m, t) = self.pairs[k];
        match self.observed[k] {
            (None, Some(s)) => Some(format!(
                "monitor {m}: false suspicion of {t} at {s} (no crash ever happened)"
            )),
            (Some(c), Some(s)) if s < c => Some(format!(
                "monitor {m}: false suspicion of {t} at {s}, before the crash at {c}"
            )),
            (Some(c), Some(s)) if s - c > self.detection => Some(format!(
                "monitor {m}: suspicion at {s} exceeds the detection bound {} \
                 after the crash at {c}",
                self.detection
            )),
            _ => None,
        }
    }

    /// The completeness violation for pair `k`, decided against `cut`:
    /// the crash happened early enough that the detection bound expired
    /// before `cut`, and no suspicion ever arrived.
    fn completeness(&self, k: usize, cut: Time) -> Option<String> {
        let (m, t) = self.pairs[k];
        match self.observed[k] {
            (Some(c), None) if c + self.detection < cut => Some(format!(
                "monitor {m}: crash of {t} at {c} never suspected within {} \
                 (completeness)",
                self.detection
            )),
            _ => None,
        }
    }
}

impl StreamOracle<FdAction> for FdStream {
    fn name(&self) -> String {
        "failure detector".to_string()
    }

    fn observe_event(&mut self, _i: usize, e: &TimedEvent<FdAction>) {
        self.latest = e.now;
        match &e.action {
            SysAction::App(FdOp::Crash { node }) => {
                for (k, &(_, t)) in self.pairs.iter().enumerate() {
                    if node.0 == t as usize && self.observed[k].0.is_none() {
                        self.observed[k].0 = Some(e.now);
                    }
                }
            }
            SysAction::App(FdOp::Suspect { monitor, target }) => {
                for (k, &(m, t)) in self.pairs.iter().enumerate() {
                    if monitor.0 == m as usize
                        && target.0 == t as usize
                        && self.observed[k].1.is_none()
                    {
                        self.observed[k].1 = Some(e.now);
                    }
                }
            }
            _ => {}
        }
    }

    fn violation(&self) -> Option<String> {
        for k in 0..self.pairs.len() {
            if let Some(why) = self.pair_verdict(k) {
                return Some(why);
            }
            // Once the detection bound has silently expired (and would
            // have expired before the horizon), every continuation
            // violates: a suspicion now would be late, silence forever
            // is incompleteness. Report the incompleteness reading of
            // the prefix.
            if self.latest > self.observed[k].0.map_or(Time::MAX, |c| c + self.detection) {
                if let Some(why) = self.completeness(k, self.horizon) {
                    return Some(why);
                }
            }
        }
        None
    }

    fn finish(&mut self, _end: Time) -> Verdict {
        for k in 0..self.pairs.len() {
            if let Some(why) = self.pair_verdict(k) {
                return Verdict::Violated(why);
            }
            if let Some(why) = self.completeness(k, self.horizon) {
                return Verdict::Violated(why);
            }
        }
        Verdict::Holds
    }
}

/// The heartbeat family's stream-oracle set: the incremental twins of
/// the "delivery envelope", "fifo order", and "failure detector"
/// post-hoc oracles, in that order. The Lemma 2.1 replay oracles have
/// no streaming form and stay post-hoc.
#[must_use]
pub fn heartbeat_stream_oracles(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
) -> Vec<Box<dyn StreamOracle<FdAction>>> {
    let shape = hb_shape(cfg.kind);
    let dropped: Vec<(u32, u32, u32)> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Drop { src, dst, seq } => Some((src, dst, seq)),
            _ => None,
        })
        .collect();
    let duplicated: Vec<(u32, u32, u32)> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Duplicate { src, dst, seq, .. } => Some((src, dst, seq)),
            _ => None,
        })
        .collect();
    let relayed = shape.relay.is_some();
    let params = monitor_params(cfg, relayed);
    let hops = if relayed { 2 } else { 1 };
    let detection = ns(cfg.d2_ns) * hops + params.timeout + Duration::from_millis(1);
    vec![
        Box::new(EnvelopeStream {
            declared: cfg.bounds(),
            dropped,
            duplicated,
            sends: Vec::new(),
            copies: Vec::new(),
            violation: None,
        }),
        Box::new(FifoStream {
            edges: BTreeMap::new(),
            violation: None,
        }),
        Box::new(FdStream {
            observed: vec![(None, None); shape.monitors.len()],
            pairs: shape.monitors,
            detection,
            horizon: at_ns(cfg.horizon_ns),
            latest: Time::ZERO,
        }),
    ]
}

/// Runs one heartbeat-family case with the stream oracles attached as
/// an observer, pausing every `ONLINE_CHUNK` events to poll the judge
/// and stopping the engine the moment a violation is certain. A
/// short-circuited case reports that single certain violation (and
/// bumps `monitor.short_circuits`); a case that reaches its natural
/// stop reports the full stream verdicts, which match the post-hoc
/// oracles of the same names byte-for-byte.
///
/// # Panics
///
/// Panics if the config is not a heartbeat-family config, or is the
/// restart variant (whose checkpoint seam needs the offline runner).
#[must_use]
pub fn run_heartbeat_online(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<FdAction> {
    assert!(
        cfg.kind.is_heartbeat() && cfg.kind != ScenarioKind::HeartbeatRestart,
        "online judging covers the non-restart heartbeat family"
    );
    let oracles = heartbeat_stream_oracles(cfg, plan);
    let checks = oracles.len() as u64;
    let judge = OnlineJudge::new(oracles);
    let mut built = build_heartbeat_with(cfg, plan, seed, Some(&judge));
    let mut pause_at = ONLINE_CHUNK;
    let run = loop {
        match built.engine.run_until_events(pause_at) {
            Ok(run) if run.stop == StopReason::Paused && judge.certain().is_none() => {
                pause_at = run.execution.len() + ONLINE_CHUNK;
            }
            Ok(run) => break Ok(run),
            Err(e) => break Err(e.to_string()),
        }
    };
    let violations = match &run {
        Err(e) => vec![("engine".into(), e.clone())],
        Ok(r) if r.stop == StopReason::Paused => {
            built.hub.add("monitor.short_circuits", 1);
            vec![judge
                .certain()
                .expect("the online driver only pauses on a certain violation")]
        }
        Ok(_) => judge.finish(at_ns(cfg.horizon_ns)),
    };
    let metrics = monitor_snapshot(checks, violations.len() as u64);
    finish_case(&built, (violations, metrics), run)
}

/// Online counterpart of [`crate::scenario::run_case`], for the kinds
/// that support it: `Some(outcome)` for the non-restart heartbeat
/// family, `None` otherwise (the caller falls back to the post-hoc
/// judge).
#[must_use]
pub fn run_case_online(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Option<CaseOutcome> {
    (cfg.kind.is_heartbeat() && cfg.kind != ScenarioKind::HeartbeatRestart)
        .then(|| outcome_of(run_heartbeat_online(cfg, plan, seed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canary::CanaryKind;
    use crate::plan::FaultPlan;
    use crate::scenario::{heartbeat_oracles, run_heartbeat};
    use psync_verify::check_all;

    /// Feeds a recorded execution through fresh stream oracles — the
    /// post-hoc half of the parity harness.
    fn stream_posthoc(
        cfg: &ScenarioConfig,
        plan: &FaultPlan,
        run: &Judged<FdAction>,
    ) -> Vec<(String, String)> {
        let mut oracles = heartbeat_stream_oracles(cfg, plan);
        let exec = &run.run.as_ref().expect("run succeeded").execution;
        for (i, e) in exec.events().iter().enumerate() {
            for oracle in &mut oracles {
                oracle.observe_event(i, e);
            }
        }
        let mut violations = Vec::new();
        for oracle in &mut oracles {
            if let Verdict::Violated(why) = oracle.finish(at_ns(cfg.horizon_ns)) {
                violations.push((oracle.name(), why));
            }
        }
        violations
    }

    /// Post-hoc verdicts of the three oracles the stream set mirrors.
    fn posthoc_streamable(
        cfg: &ScenarioConfig,
        plan: &FaultPlan,
        run: &Judged<FdAction>,
    ) -> Vec<(String, String)> {
        let streamed = ["delivery envelope", "fifo order", "failure detector"];
        let exec = &run.run.as_ref().expect("run succeeded").execution;
        check_all(&heartbeat_oracles(cfg, plan), exec)
            .into_iter()
            .filter(|(name, _)| streamed.contains(&name.as_str()))
            .collect()
    }

    #[test]
    fn stream_oracles_match_posthoc_on_clean_and_failing_runs() {
        // Clean runs across the family's topologies, then planted bugs
        // that trip each stream oracle: a widened delay (envelope), the
        // LIFO-healing relay (fifo), and an underbudgeted timeout with a
        // crash (failure detector).
        let mut cases: Vec<ScenarioConfig> = vec![
            ScenarioConfig::default_for(ScenarioKind::Heartbeat),
            ScenarioConfig::default_for(ScenarioKind::HeartbeatCrash),
            ScenarioConfig::default_for(ScenarioKind::HeartbeatBidi),
            ScenarioConfig::default_for(ScenarioKind::Relay),
            ScenarioConfig::default_for(ScenarioKind::Partition),
        ];
        cases.push(ScenarioConfig {
            bug_extra_ns: 40_000_000,
            ..ScenarioConfig::default_for(ScenarioKind::Heartbeat)
        });
        cases.push(ScenarioConfig {
            canary: Some(CanaryKind::RelayLifoHeal),
            ..ScenarioConfig::default_for(ScenarioKind::Relay)
        });
        cases.push(ScenarioConfig {
            canary: Some(CanaryKind::FdTimeoutUnderbudget),
            ..ScenarioConfig::default_for(ScenarioKind::HeartbeatGray)
        });
        let plan = FaultPlan::default();
        for cfg in &cases {
            let run = run_heartbeat(cfg, &plan, 7);
            let streamed = stream_posthoc(cfg, &plan, &run);
            let posthoc = posthoc_streamable(cfg, &plan, &run);
            assert_eq!(streamed, posthoc, "parity broke for {:?}", cfg.kind);
        }
    }

    #[test]
    fn online_run_matches_offline_verdicts_on_a_clean_case() {
        let cfg = ScenarioConfig::default_for(ScenarioKind::Heartbeat);
        let plan = FaultPlan::default();
        let offline = run_heartbeat(&cfg, &plan, 3);
        let online = run_heartbeat_online(&cfg, &plan, 3);
        assert!(offline.violations.is_empty());
        assert!(online.violations.is_empty());
        // Same execution: attaching the judge observer never perturbs
        // the run, and a clean case is never short-circuited.
        assert_eq!(
            offline.run.as_ref().unwrap().execution.len(),
            online.run.as_ref().unwrap().execution.len()
        );
    }

    #[test]
    fn online_run_short_circuits_a_planted_violation() {
        // The duplicate-delivery canary dupes every message; the second
        // copy of heartbeat 1 arrives early in the run, so the online
        // driver should stop long before the (stretched) offline
        // horizon.
        let cfg = ScenarioConfig {
            canary: Some(CanaryKind::DuplicateDelivery),
            horizon_ns: 1_200_000_000,
            ..ScenarioConfig::default_for(ScenarioKind::Heartbeat)
        };
        let plan = FaultPlan::default();
        let offline = run_heartbeat(&cfg, &plan, 5);
        let online = run_heartbeat_online(&cfg, &plan, 5);
        let offline_events = offline.run.as_ref().unwrap().execution.len();
        let online_events = online.run.as_ref().unwrap().execution.len();
        assert!(
            online_events < offline_events,
            "short-circuit saved nothing: {online_events} vs {offline_events}"
        );
        assert_eq!(online.violations.len(), 1);
        assert_eq!(online.violations[0].0, "delivery envelope");
        assert_eq!(online.metrics.counter("monitor.short_circuits"), 1);
        // The offline judge blames the same oracle.
        assert!(offline
            .violations
            .iter()
            .any(|(name, _)| name == "delivery envelope"));
    }

    #[test]
    fn online_runs_are_deterministic() {
        let cfg = ScenarioConfig {
            canary: Some(CanaryKind::FdTimeoutUnderbudget),
            ..ScenarioConfig::default_for(ScenarioKind::HeartbeatGray)
        };
        let plan = FaultPlan::default();
        let a = run_case_online(&cfg, &plan, 11).expect("heartbeat kind is online-capable");
        let b = run_case_online(&cfg, &plan, 11).expect("heartbeat kind is online-capable");
        assert_eq!(a, b);
    }

    #[test]
    fn online_declines_non_heartbeat_kinds() {
        let plan = FaultPlan::default();
        for kind in [
            ScenarioKind::HeartbeatRestart,
            ScenarioKind::ClockFleet,
            ScenarioKind::Mutex,
            ScenarioKind::Register,
            ScenarioKind::Counter,
            ScenarioKind::SyncProbe,
        ] {
            let cfg = ScenarioConfig::default_for(kind);
            assert!(run_case_online(&cfg, &plan, 1).is_none(), "{kind:?}");
        }
    }
}
