//! Self-contained replay artifacts.
//!
//! A failing case is dumped as a JSON document carrying everything a
//! fresh process needs to re-execute it bit-identically: the scenario
//! config, the (shrunk) fault plan, the case seed, and the violation the
//! oracles reported. [`replay_artifact`] rebuilds the engine from those
//! three inputs and re-runs it — determinism of the whole stack (seeded
//! schedulers, seeded delay policies, scripted clocks) is what makes the
//! replay reproduce the identical recorded execution, which the
//! regression tests check via [`Execution`](psync_automata::Execution)
//! equality and the [`CaseOutcome`] fingerprint.

use crate::json::{self, Json};
use crate::plan::FaultPlan;
use crate::scenario::{run_case, CaseOutcome, ScenarioConfig};

/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// A self-contained failure reproduction: config + plan + seed +
/// the violation originally observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Format version (see [`ARTIFACT_VERSION`]).
    pub version: u32,
    /// Scenario the case ran against.
    pub config: ScenarioConfig,
    /// Case seed (drives delays, workload think times, scheduler ties).
    pub seed: u64,
    /// The (typically shrunk) fault plan.
    pub plan: FaultPlan,
    /// `(oracle, violation)` recorded when the case first failed.
    pub violation: Option<(String, String)>,
}

impl Artifact {
    /// Serializes to the pretty-printed artifact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let violation = match &self.violation {
            None => Json::Null,
            Some((oracle, detail)) => Json::obj([
                ("oracle", Json::str(oracle.clone())),
                ("detail", Json::str(detail.clone())),
            ]),
        };
        Json::obj([
            ("version", Json::num(self.version)),
            ("scenario", self.config.to_json()),
            ("seed", Json::num(self.seed)),
            ("plan", self.plan.to_json()),
            ("violation", violation),
        ])
        .pretty()
    }

    /// Parses an artifact back from JSON.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a missing field, or an unsupported version.
    pub fn from_json(text: &str) -> Result<Artifact, String> {
        let v = json::parse(text)?;
        let version = v
            .get("version")
            .and_then(Json::as_u32)
            .ok_or("artifact missing version")?;
        if version != ARTIFACT_VERSION {
            return Err(format!(
                "unsupported artifact version {version} (this build reads {ARTIFACT_VERSION})"
            ));
        }
        let config =
            ScenarioConfig::from_json(v.get("scenario").ok_or("artifact missing scenario")?)?;
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("artifact missing seed")?;
        let plan = FaultPlan::from_json(v.get("plan").ok_or("artifact missing plan")?)?;
        let violation = match v.get("violation") {
            None | Some(Json::Null) => None,
            Some(obj) => Some((
                obj.get("oracle")
                    .and_then(Json::as_str)
                    .ok_or("violation missing oracle")?
                    .to_string(),
                obj.get("detail")
                    .and_then(Json::as_str)
                    .ok_or("violation missing detail")?
                    .to_string(),
            )),
        };
        Ok(Artifact {
            version,
            config,
            seed,
            plan,
            violation,
        })
    }
}

/// Re-executes an artifact's case from scratch and returns the judged
/// outcome. Deterministic: replaying the same artifact twice yields
/// identical [`CaseOutcome`]s (including the execution fingerprint).
///
/// # Errors
///
/// Returns an error if the plan is inadmissible for the artifact's own
/// scenario envelope — a malformed artifact, since the explorer only
/// dumps validated plans.
pub fn replay_artifact(artifact: &Artifact) -> Result<CaseOutcome, String> {
    artifact
        .plan
        .validate(&artifact.config.envelope())
        .map_err(|e| format!("artifact plan is inadmissible: {e}"))?;
    Ok(run_case(&artifact.config, &artifact.plan, artifact.seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEntry;

    #[test]
    fn artifact_json_round_trips() {
        let artifact = Artifact {
            version: ARTIFACT_VERSION,
            config: ScenarioConfig::heartbeat_default(),
            seed: 0xC1A5_51C0,
            plan: FaultPlan {
                entries: vec![
                    FaultEntry::Drop {
                        src: 0,
                        dst: 1,
                        seq: 3,
                    },
                    FaultEntry::DelaySpike {
                        src: 0,
                        dst: 1,
                        seq: 5,
                        delay_ns: 4_000_000,
                    },
                ],
            },
            violation: Some(("delivery envelope".to_string(), "late".to_string())),
        };
        let text = artifact.to_json();
        assert_eq!(Artifact::from_json(&text).unwrap(), artifact);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let artifact = Artifact {
            version: ARTIFACT_VERSION,
            config: ScenarioConfig::clockfleet_default(),
            seed: 1,
            plan: FaultPlan::empty(),
            violation: None,
        };
        let text = artifact
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(Artifact::from_json(&text).is_err());
    }
}
