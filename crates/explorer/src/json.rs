//! A minimal JSON value, writer and parser — just enough for the
//! explorer's replay artifacts.
//!
//! The build environment is offline (no serde), and artifacts only need
//! null, booleans, 64-bit integers, strings, arrays and objects. Numbers
//! are carried as `i128` internally so both `i64` and `u64` fields round
//! trip exactly; floats are deliberately unsupported — every quantity in
//! an artifact is an integer count or a nanosecond value, and exact
//! round-tripping is what makes replays bit-identical.

use core::fmt::Write as _;

/// A JSON value (integers only — see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (no floats in artifacts).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from anything convertible to `i128`.
    #[must_use]
    pub fn num(n: impl Into<i128>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an in-range number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an in-range number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `u32`, if it is an in-range number.
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) => u32::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (the artifact format).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error. Floats are rejected
/// (artifacts never contain them).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!("floats are not supported (byte {})", *pos));
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).expect("digits are UTF-8");
    text.parse::<i128>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            core::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = core::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("version", Json::num(1u32)),
            ("seed", Json::num(u64::MAX)),
            ("neg", Json::num(-42i64)),
            ("name", Json::str("a \"quoted\"\nline")),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
            (
                "plan",
                Json::Arr(vec![
                    Json::obj([("kind", Json::str("drop")), ("seq", Json::num(3u32))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_max_survives() {
        let v = Json::num(u64::MAX);
        assert_eq!(parse(&v.pretty()).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
