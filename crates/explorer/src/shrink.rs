//! Counterexample shrinking by delta debugging.
//!
//! The explorer's plans are *sets* of independent fault entries, which is
//! exactly the shape ddmin (Zeller & Hildebrandt's minimizing delta
//! debugging) was designed for: try dropping chunks of entries, keep any
//! subset that still fails, and refine the granularity until no single
//! entry can be removed. Because every probe is a full deterministic
//! re-run of the case, the shrunk plan is guaranteed to still fail — the
//! shrinker never reasons about *why* a plan fails, only *whether*.
//!
//! The result is 1-minimal: removing any one remaining entry makes the
//! failure disappear. 1-minimality also makes the shrinker idempotent
//! (shrinking a shrunk plan is a no-op), which the property tests pin.

use crate::plan::FaultPlan;

/// Shrinks `plan` to a 1-minimal failing sub-plan under `fails`.
///
/// `fails` must be deterministic (same plan → same answer); the explorer
/// satisfies this by re-running the whole case per probe. If the input
/// plan does not fail at all, the empty plan is returned immediately —
/// there is no counterexample to preserve.
pub fn shrink_entries(plan: &FaultPlan, fails: &mut dyn FnMut(&FaultPlan) -> bool) -> FaultPlan {
    if !fails(plan) {
        return FaultPlan::empty();
    }
    let mut current = plan.entries.clone();
    // Fast path: many real counterexamples are a single entry.
    for entry in &current {
        let candidate = FaultPlan {
            entries: vec![entry.clone()],
        };
        if fails(&candidate) {
            current = candidate.entries;
            break;
        }
    }
    let mut granularity = 2usize.min(current.len().max(1));
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // The complement: everything except current[start..end].
            let mut candidate_entries = Vec::with_capacity(current.len() - (end - start));
            candidate_entries.extend_from_slice(&current[..start]);
            candidate_entries.extend_from_slice(&current[end..]);
            let candidate = FaultPlan {
                entries: candidate_entries,
            };
            if fails(&candidate) {
                current = candidate.entries;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // Final 1-minimality pass: drop single entries until a fixpoint.
    loop {
        let mut removed = false;
        for i in 0..current.len() {
            let mut candidate_entries = current.clone();
            candidate_entries.remove(i);
            let candidate = FaultPlan {
                entries: candidate_entries,
            };
            if fails(&candidate) {
                current = candidate.entries;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }
    FaultPlan { entries: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEntry;

    fn drop_entry(seq: u32) -> FaultEntry {
        FaultEntry::Drop {
            src: 0,
            dst: 1,
            seq,
        }
    }

    fn plan_of(seqs: &[u32]) -> FaultPlan {
        FaultPlan {
            entries: seqs.iter().map(|&s| drop_entry(s)).collect(),
        }
    }

    #[test]
    fn passing_plan_shrinks_to_empty() {
        let mut fails = |_: &FaultPlan| false;
        let shrunk = shrink_entries(&plan_of(&[1, 2, 3]), &mut fails);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn single_culprit_is_isolated() {
        // Fails iff the plan contains Drop seq 7.
        let mut fails = |p: &FaultPlan| {
            p.entries
                .iter()
                .any(|e| matches!(e, FaultEntry::Drop { seq: 7, .. }))
        };
        let shrunk = shrink_entries(&plan_of(&[1, 9, 7, 3, 5, 2, 8]), &mut fails);
        assert_eq!(shrunk, plan_of(&[7]));
    }

    #[test]
    fn conjunction_of_two_culprits_is_preserved() {
        // Fails iff the plan contains both seq 2 and seq 6.
        let mut fails = |p: &FaultPlan| {
            let has = |want: u32| {
                p.entries
                    .iter()
                    .any(|e| matches!(e, FaultEntry::Drop { seq, .. } if *seq == want))
            };
            has(2) && has(6)
        };
        let shrunk = shrink_entries(&plan_of(&[1, 2, 3, 4, 5, 6, 7, 8]), &mut fails);
        assert_eq!(shrunk.len(), 2);
        assert!(fails(&shrunk));
    }

    #[test]
    fn shrinking_is_idempotent() {
        let mut fails = |p: &FaultPlan| {
            p.entries
                .iter()
                .filter(|e| matches!(e, FaultEntry::Drop { seq, .. } if seq % 2 == 0))
                .count()
                >= 2
        };
        let once = shrink_entries(&plan_of(&[0, 1, 2, 3, 4, 5, 6]), &mut fails);
        let twice = shrink_entries(&once, &mut fails);
        assert_eq!(once, twice);
        assert!(fails(&once));
        assert_eq!(once.len(), 2);
    }
}
