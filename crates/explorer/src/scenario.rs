//! Scenario factories: the systems a fault plan perturbs, and the
//! oracles that judge each run.
//!
//! Three families cover the workspace's three model layers:
//!
//! * **heartbeat** — the timed model: a heartbeater, a plan-driven
//!   [`FaultChannel`], a monitor, and (optionally) a scripted crash.
//!   Oracles: the `[d₁, d₂]` delivery envelope, failure-detector accuracy
//!   and completeness (with a drop-budgeted timeout), and Lemma 2.1
//!   replays of the monitor and heartbeater.
//! * **clockfleet** — the clock model in isolation: `n` clock nodes with
//!   plan-scripted clocks driving periodic clock-time beepers. Oracles:
//!   `C_ε` on every recorded reading, per-node clock monotonicity and
//!   exact clock-time cadence, and a Lemma 2.1 clock replay.
//! * **register** — the full `D_C` assembly of Section 6 (Algorithm S
//!   through Simulation 1): scripted clocks, plan delay spikes, scheduler
//!   bias, a closed-loop workload. Oracles: linearizability (the same
//!   [`LinearizableRegister`] problem the conformance sweeps use, adapted
//!   through [`ProblemOracle`]), `C_ε`, liveness, and a workload replay.
//!
//! Every factory is a pure function of `(config, plan, seed)` — the
//! entire contents of a replay artifact — which is what makes replays
//! bit-identical.

use core::cell::Cell;
use std::rc::Rc;

use psync_apps::heartbeat::{outcome, FdAction, FdOp, FdParams, Heartbeat, Heartbeater, Monitor};
use psync_automata::toys::{BeepAction, ClockBeeper};
use psync_automata::{Action, Execution, Verdict};
use psync_core::{app_trace, build_dc, NodeSpec};
use psync_executor::{ClockNode, Engine, Run, StopReason};
use psync_net::{FaultChannel, FaultStats, MaxDelay, NodeId, Script, SysAction, Topology};
use psync_obs::{CEpsOracle, MetricsHub, MetricsSnapshot};
use psync_register::{AlgorithmS, ClosedLoopWorkload, RegAction, RegisterParams, Value};
use psync_time::{DelayBounds, Duration, Time};
use psync_verify::replay::{replay_clock, replay_timed};
use psync_verify::{check_all, FnOracle, LinearizableRegister, Oracle, ProblemOracle};

use crate::faults::{
    scripted_clock_for, seq_of, BiasedScheduler, PlanChannelFault, PlanDelayPolicy,
};
use crate::json::Json;
use crate::plan::{at_ns, ns, FaultEntry, FaultEnvelope, FaultPlan};

/// Which system family a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Timed-model failure detector over a faultable channel.
    Heartbeat,
    /// Clock-model beeper fleet with scripted clocks.
    ClockFleet,
    /// Algorithm S in `D_C` (Section 6) under plan adversaries.
    Register,
}

impl ScenarioKind {
    /// Stable keyword (artifact `scenario` field, CLI `--scenario`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Heartbeat => "heartbeat",
            ScenarioKind::ClockFleet => "clockfleet",
            ScenarioKind::Register => "register",
        }
    }

    /// Parses a keyword.
    ///
    /// # Errors
    ///
    /// Unknown keyword.
    pub fn from_name(s: &str) -> Result<ScenarioKind, String> {
        match s {
            "heartbeat" => Ok(ScenarioKind::Heartbeat),
            "clockfleet" => Ok(ScenarioKind::ClockFleet),
            "register" => Ok(ScenarioKind::Register),
            other => Err(format!("unknown scenario {other:?}")),
        }
    }

    /// All scenario kinds.
    #[must_use]
    pub fn all() -> [ScenarioKind; 3] {
        [
            ScenarioKind::Heartbeat,
            ScenarioKind::ClockFleet,
            ScenarioKind::Register,
        ]
    }
}

/// Everything needed to rebuild a scenario's engine: the config half of a
/// replay artifact (the other half is the plan and the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// System family.
    pub kind: ScenarioKind,
    /// Node count.
    pub nodes: u32,
    /// Declared minimum delay `d₁`, nanoseconds.
    pub d1_ns: i64,
    /// Declared maximum delay `d₂`, nanoseconds.
    pub d2_ns: i64,
    /// Skew bound `ε`, nanoseconds.
    pub eps_ns: i64,
    /// Run horizon, nanoseconds.
    pub horizon_ns: i64,
    /// Heartbeat / beep period, nanoseconds.
    pub period_ns: i64,
    /// Drop budget per edge (heartbeat only).
    pub max_drops: u32,
    /// Closed-loop operations per node (register only).
    pub ops_per_node: u32,
    /// Scripted crash time (heartbeat only), nanoseconds.
    pub crash_at_ns: Option<i64>,
    /// The seeded bug: extra nanoseconds a boundary delay spike is allowed
    /// to overshoot `d₂` by. Zero = correct channel.
    pub bug_extra_ns: i64,
}

impl ScenarioConfig {
    /// The default heartbeat scenario.
    #[must_use]
    pub fn heartbeat_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::Heartbeat,
            nodes: 2,
            d1_ns: 1_000_000,
            d2_ns: 4_000_000,
            eps_ns: 0,
            horizon_ns: 300_000_000,
            period_ns: 10_000_000,
            max_drops: 2,
            ops_per_node: 0,
            crash_at_ns: None,
            bug_extra_ns: 0,
        }
    }

    /// The default clock-fleet scenario.
    #[must_use]
    pub fn clockfleet_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::ClockFleet,
            nodes: 3,
            d1_ns: 0,
            d2_ns: 0,
            eps_ns: 2_000_000,
            horizon_ns: 250_000_000,
            period_ns: 9_000_000,
            max_drops: 0,
            ops_per_node: 0,
            crash_at_ns: None,
            bug_extra_ns: 0,
        }
    }

    /// The default register scenario.
    #[must_use]
    pub fn register_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::Register,
            nodes: 2,
            d1_ns: 1_000_000,
            d2_ns: 4_000_000,
            eps_ns: 1_000_000,
            horizon_ns: 10_000_000_000,
            period_ns: 0,
            max_drops: 0,
            ops_per_node: 3,
            crash_at_ns: None,
            bug_extra_ns: 0,
        }
    }

    /// The same scenario with the late-delivery bug planted: a delay
    /// spike requesting exactly `d₂` is let through at `d₂ + extra_ns`.
    #[must_use]
    pub fn with_bug(mut self, extra_ns: i64) -> ScenarioConfig {
        assert!(extra_ns > 0, "the bug must overshoot by at least one tick");
        self.bug_extra_ns = extra_ns;
        self
    }

    /// The admissibility envelope this scenario grants to fault plans.
    #[must_use]
    pub fn envelope(&self) -> FaultEnvelope {
        let (allow_clock, allow_drop, allow_dup, allow_spike, edges) = match self.kind {
            ScenarioKind::Heartbeat => (false, true, true, true, vec![(0, 1)]),
            ScenarioKind::ClockFleet => (true, false, false, false, vec![]),
            ScenarioKind::Register => {
                // Clock channels (`build_dc`) expose a delay policy but not
                // drops/duplicates; the paper's reliable-channel model
                // stands, so only spikes and clock faults are in scope.
                let mut edges = Vec::new();
                for i in 0..self.nodes {
                    for j in 0..self.nodes {
                        if i != j {
                            edges.push((i, j));
                        }
                    }
                }
                (true, false, false, true, edges)
            }
        };
        let max_seq = match self.kind {
            ScenarioKind::Heartbeat => (self.horizon_ns / self.period_ns.max(1)) as u32 + 1,
            ScenarioKind::ClockFleet => 0,
            ScenarioKind::Register => self.ops_per_node * 2 + 2,
        };
        FaultEnvelope {
            nodes: self.nodes,
            eps_ns: self.eps_ns,
            d1_ns: self.d1_ns,
            d2_ns: self.d2_ns,
            horizon_ns: self.horizon_ns,
            edges,
            max_seq,
            max_drops: self.max_drops,
            allow_clock,
            allow_drop,
            allow_dup,
            allow_spike,
        }
    }

    /// The declared delay bounds `[d₁, d₂]`.
    #[must_use]
    pub fn bounds(&self) -> DelayBounds {
        DelayBounds::new(ns(self.d1_ns), ns(self.d2_ns)).expect("config bounds are ordered")
    }

    /// Monitor parameters budgeted for the plan envelope: the timeout
    /// tolerates `max_drops` consecutive losses plus full delay jitter,
    /// so any false suspicion is a real bug, not a mistuned test.
    #[must_use]
    pub fn fd_params(&self) -> FdParams {
        let period = ns(self.period_ns);
        let jitter = ns(self.d2_ns - self.d1_ns);
        let slack = Duration::from_millis(2);
        FdParams {
            period,
            timeout: period * (i64::from(self.max_drops) + 1) + jitter + slack,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind.name())),
            ("nodes", Json::num(self.nodes)),
            ("d1_ns", Json::num(self.d1_ns)),
            ("d2_ns", Json::num(self.d2_ns)),
            ("eps_ns", Json::num(self.eps_ns)),
            ("horizon_ns", Json::num(self.horizon_ns)),
            ("period_ns", Json::num(self.period_ns)),
            ("max_drops", Json::num(self.max_drops)),
            ("ops_per_node", Json::num(self.ops_per_node)),
            (
                "crash_at_ns",
                self.crash_at_ns.map_or(Json::Null, Json::num),
            ),
            ("bug_extra_ns", Json::num(self.bug_extra_ns)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<ScenarioConfig, String> {
        let i64_field = |name: &str| -> Result<i64, String> {
            v.get(name)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("config missing {name}"))
        };
        let u32_field = |name: &str| -> Result<u32, String> {
            v.get(name)
                .and_then(Json::as_u32)
                .ok_or_else(|| format!("config missing {name}"))
        };
        Ok(ScenarioConfig {
            kind: ScenarioKind::from_name(
                v.get("kind")
                    .and_then(Json::as_str)
                    .ok_or("config missing kind")?,
            )?,
            nodes: u32_field("nodes")?,
            d1_ns: i64_field("d1_ns")?,
            d2_ns: i64_field("d2_ns")?,
            eps_ns: i64_field("eps_ns")?,
            horizon_ns: i64_field("horizon_ns")?,
            period_ns: i64_field("period_ns")?,
            max_drops: u32_field("max_drops")?,
            ops_per_node: u32_field("ops_per_node")?,
            crash_at_ns: match v.get("crash_at_ns") {
                None | Some(Json::Null) => None,
                Some(t) => Some(t.as_i64().ok_or("bad crash_at_ns")?),
            },
            bug_extra_ns: i64_field("bug_extra_ns")?,
        })
    }
}

/// The judged result of one case: what the oracles said, a fingerprint of
/// the recorded execution for replay-identity checks, and the metrics the
/// attached observers collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// `(oracle name, violation)` pairs; empty = the run passed.
    pub violations: Vec<(String, String)>,
    /// Recorded event count.
    pub events: usize,
    /// Clock-script requests the C1–C4 guard clamped (attempted backward
    /// jumps / over-ε readings that were rejected at run time).
    pub rejected_clock_requests: u64,
    /// Order-sensitive hash of `(action, now, clock)` over all events.
    pub fingerprint: u64,
    /// Observer metrics of the run (deterministic: replaying the case
    /// reproduces this snapshot bit-for-bit, `==` included).
    pub metrics: MetricsSnapshot,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of a recorded execution.
#[must_use]
pub fn fingerprint<A: Action>(exec: &Execution<A>) -> u64 {
    let mut h = 0xC1A5_51C0_DE00_0001u64;
    for e in exec.events() {
        let line = format!("{:?}@{}@{:?}", e.action, e.now.as_nanos(), e.clock);
        for b in line.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h);
    }
    h
}

const CASE_MAX_EVENTS: usize = 250_000;

/// A typed runner's result: the raw engine run (or its error), the
/// oracles' `(name, violation)` verdicts, the number of clock-script
/// requests the C1–C4 guard clamped (always 0 for the timed-model
/// scenario), and the metrics collected by the attached observers.
#[derive(Debug)]
pub struct Judged<A: Action> {
    /// The engine run, or the engine error rendered as a string.
    pub run: Result<Run<A>, String>,
    /// `(oracle name, violation)` pairs; empty = the run passed.
    pub violations: Vec<(String, String)>,
    /// Clock-script requests the C1–C4 guard clamped.
    pub rejected_clock_requests: u64,
    /// Observer metrics of the run.
    pub metrics: MetricsSnapshot,
}

/// Folds one [`FaultChannel`]'s fault counters into a hub snapshot under
/// the `channel.*` names.
fn merge_fault_stats(hub: &MetricsHub, stats: &FaultStats) {
    hub.add("channel.sends", stats.sends());
    hub.add("channel.delivered", stats.delivered());
    hub.add("channel.dropped", stats.dropped());
    hub.add("channel.duplicated", stats.duplicated());
    hub.add("channel.spiked", stats.spiked());
}

/// A case's engine plus the observation handles the post-run accounting
/// needs — the common shape the plain runners and the checkpoint-resuming
/// shrink driver (`resume` module) share. The engine observers are
/// attached with checkpoint counters suppressed, so a checkpointed run's
/// metrics are bit-identical to a straight run's.
pub(crate) struct BuiltCase<A: Action> {
    pub(crate) engine: Engine<A>,
    pub(crate) hub: MetricsHub,
    /// The fault channel's counters (heartbeat only).
    pub(crate) fault_stats: Option<FaultStats>,
    /// Scripted-clock rejection handles, one per clock node.
    pub(crate) rejections: Vec<Rc<Cell<u64>>>,
}

/// Post-run accounting shared by every scenario kind: fold fault stats
/// and clamped-clock counts into the hub (in the same order the original
/// monolithic runners did) and snapshot.
pub(crate) fn finish_case<A: Action>(
    built: &BuiltCase<A>,
    violations: Vec<(String, String)>,
    run: Result<Run<A>, String>,
) -> Judged<A> {
    if let Some(stats) = &built.fault_stats {
        merge_fault_stats(&built.hub, stats);
    }
    let rejected: u64 = built.rejections.iter().map(|h| h.get()).sum();
    if !built.rejections.is_empty() {
        built.hub.add("clock.rejected_requests", rejected);
    }
    Judged {
        run,
        violations,
        rejected_clock_requests: rejected,
        metrics: built.hub.snapshot(),
    }
}

/// Builds the heartbeat case's engine (without running it).
pub(crate) fn build_heartbeat(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<FdAction> {
    let declared = cfg.bounds();
    // The seeded bug widens the channel's *internal* bounds so the stretch
    // passes the channel's own assert; the oracles keep judging against
    // the declared envelope, which is exactly how they catch it.
    let actual = DelayBounds::new(declared.min(), declared.max() + ns(cfg.bug_extra_ns))
        .expect("widened bounds stay ordered");
    let fault = PlanChannelFault::new(plan, 0, 1, seed, declared, ns(cfg.bug_extra_ns));
    let period = ns(cfg.period_ns);
    let params = cfg.fd_params();
    let hub = MetricsHub::new();

    let channel =
        FaultChannel::<Heartbeat, FdOp>::new(NodeId(0), NodeId(1), actual, MaxDelay, fault);
    let fault_stats = channel.stats();
    let mut builder = Engine::builder()
        .timed(Heartbeater::new(NodeId(0), NodeId(1), period))
        .timed(channel)
        .timed(Monitor::new(NodeId(1), NodeId(0), params));
    if let Some(crash) = cfg.crash_at_ns {
        builder = builder.timed(Script::<Heartbeat, FdOp>::new(
            [(at_ns(crash), FdOp::Crash { node: NodeId(0) })],
            |_| false,
        ));
    }
    let engine = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .observer(hub.channel_delay_observer())
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: Some(fault_stats),
        rejections: Vec::new(),
    }
}

/// Judges a heartbeat run against the scenario's oracles.
pub(crate) fn judge_heartbeat(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    run: &Result<Run<FdAction>, String>,
) -> Vec<(String, String)> {
    match run {
        Ok(run) => check_all(&heartbeat_oracles(cfg, plan), &run.execution),
        Err(e) => vec![("engine".into(), e.clone())],
    }
}

/// Runs one heartbeat case: returns the raw engine run and the oracle
/// verdicts. Public (rather than folded into [`run_case`]) so tests can
/// compare whole [`Execution`]s across replays.
///
/// # Panics
///
/// Panics if the config is not a heartbeat config.
pub fn run_heartbeat(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<FdAction> {
    assert_eq!(cfg.kind, ScenarioKind::Heartbeat);
    let mut built = build_heartbeat(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_heartbeat(cfg, plan, &run);
    finish_case(&built, violations, run)
}

/// The heartbeat scenario's oracle set (shared with conformance-style
/// sweeps via the [`Oracle`] trait).
#[must_use]
pub fn heartbeat_oracles(cfg: &ScenarioConfig, plan: &FaultPlan) -> Vec<Box<dyn Oracle<FdAction>>> {
    let declared = cfg.bounds();
    let dropped: Vec<u32> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Drop {
                src: 0,
                dst: 1,
                seq,
            } => Some(seq),
            _ => None,
        })
        .collect();
    let duplicated: Vec<u32> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Duplicate {
                src: 0,
                dst: 1,
                seq,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();

    let envelope = {
        let dropped = dropped.clone();
        let duplicated = duplicated.clone();
        FnOracle::new("delivery envelope", move |exec: &Execution<FdAction>| {
            let mut sends: Vec<(u64, Time)> = Vec::new();
            let mut copies: Vec<(u64, u32)> = Vec::new();
            for (i, e) in exec.events().iter().enumerate() {
                match &e.action {
                    SysAction::Send(env) => sends.push((env.id.0, e.now)),
                    SysAction::Recv(env) => {
                        let Some((_, sent)) = sends.iter().find(|(id, _)| *id == env.id.0) else {
                            return Verdict::violated(format!(
                                "event {i}: received message {} that was never sent",
                                env.id.0
                            ));
                        };
                        let latency = e.now - *sent;
                        if latency < declared.min() || latency > declared.max() {
                            return Verdict::violated(format!(
                                "event {i}: message {} delivered after {latency}, outside [{}, {}]",
                                env.id.0,
                                declared.min(),
                                declared.max()
                            ));
                        }
                        let seq = seq_of(env.id);
                        if dropped.contains(&seq) {
                            return Verdict::violated(format!(
                                "event {i}: message {seq} was delivered despite a planned drop"
                            ));
                        }
                        match copies.iter_mut().find(|(id, _)| *id == env.id.0) {
                            Some((_, n)) => *n += 1,
                            None => copies.push((env.id.0, 1)),
                        }
                        let n = copies
                            .iter()
                            .find(|(id, _)| *id == env.id.0)
                            .map_or(0, |(_, n)| *n);
                        let allowed = if duplicated.contains(&seq) { 2 } else { 1 };
                        if n > allowed {
                            return Verdict::violated(format!(
                                "event {i}: message {seq} delivered {n} times (plan allows {allowed})"
                            ));
                        }
                    }
                    _ => {}
                }
            }
            Verdict::Holds
        })
    };

    let params = cfg.fd_params();
    let detection = ns(cfg.d2_ns) + params.timeout + Duration::from_millis(1);
    let horizon = at_ns(cfg.horizon_ns);
    let fd = FnOracle::new("failure detector", move |exec: &Execution<FdAction>| {
        let out = outcome(&exec.t_trace());
        match (out.crashed_at, out.suspected_at) {
            (None, Some(t)) => {
                Verdict::violated(format!("false suspicion at {t} (no crash ever happened)"))
            }
            (Some(c), Some(t)) if t < c => {
                Verdict::violated(format!("false suspicion at {t}, before the crash at {c}"))
            }
            (Some(c), Some(t)) if t - c > detection => Verdict::violated(format!(
                "suspicion at {t} exceeds the detection bound {detection} after the crash at {c}"
            )),
            (Some(c), None) if c + detection < horizon => Verdict::violated(format!(
                "crash at {c} never suspected within {detection} (completeness)"
            )),
            _ => Verdict::Holds,
        }
    });

    let period = ns(cfg.period_ns);
    let replay_monitor =
        FnOracle::new(
            "replay(monitor)",
            move |exec: &Execution<FdAction>| match replay_timed(
                Monitor::new(NodeId(1), NodeId(0), params),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
            },
        );
    let replay_beater =
        FnOracle::new(
            "replay(heartbeater)",
            move |exec: &Execution<FdAction>| match replay_timed(
                Heartbeater::new(NodeId(0), NodeId(1), period),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
            },
        );

    vec![
        Box::new(envelope),
        Box::new(fd),
        Box::new(replay_monitor),
        Box::new(replay_beater),
    ]
}

/// Per-node beep period of the clock fleet (staggered so the fleet's
/// interleavings are non-trivial).
fn fleet_period(cfg: &ScenarioConfig, node: u32) -> Duration {
    ns(cfg.period_ns + i64::from(node) * 1_000_000)
}

/// Runs one clock-fleet case. Returns the run, oracle verdicts, and the
/// number of clock-script requests the C1–C4 guard clamped.
///
/// # Panics
///
/// Panics if the config is not a clockfleet config.
pub fn run_clockfleet(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<BeepAction> {
    assert_eq!(cfg.kind, ScenarioKind::ClockFleet);
    let mut built = build_clockfleet(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_clockfleet(cfg, &run);
    finish_case(&built, violations, run)
}

/// Builds the clock-fleet case's engine (without running it).
pub(crate) fn build_clockfleet(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<BeepAction> {
    let eps = ns(cfg.eps_ns);
    let hub = MetricsHub::new();
    let mut builder = Engine::builder();
    let mut handles = Vec::new();
    for i in 0..cfg.nodes {
        let clock = scripted_clock_for(plan, i);
        handles.push(clock.rejections());
        builder = builder.clock_node(
            ClockNode::new(format!("n{i}"), eps, clock)
                .with(ClockBeeper::with_src(fleet_period(cfg, i), i)),
        );
    }
    let engine = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: None,
        rejections: handles,
    }
}

/// Judges a clock-fleet run against the scenario's oracles.
pub(crate) fn judge_clockfleet(
    cfg: &ScenarioConfig,
    run: &Result<Run<BeepAction>, String>,
) -> Vec<(String, String)> {
    match run {
        Ok(run) => check_all(&clockfleet_oracles(cfg), &run.execution),
        Err(e) => vec![("engine".into(), e.clone())],
    }
}

/// The clock-fleet scenario's oracle set.
#[must_use]
pub fn clockfleet_oracles(cfg: &ScenarioConfig) -> Vec<Box<dyn Oracle<BeepAction>>> {
    let eps = ns(cfg.eps_ns);
    let mut oracles: Vec<Box<dyn Oracle<BeepAction>>> = vec![Box::new(CEpsOracle::new(eps))];

    // Per-node clock monotonicity and exact clock-time cadence: beep k of
    // node i must carry clock reading (k+1)·period_i even under scripted
    // skew — the deadline clamp in the C1–C4 guard guarantees it.
    let periods: Vec<(u32, Duration)> = (0..cfg.nodes).map(|i| (i, fleet_period(cfg, i))).collect();
    oracles.push(Box::new(FnOracle::new(
        "clock cadence",
        move |exec: &Execution<BeepAction>| {
            for (node, period) in &periods {
                let mut last: Option<Time> = None;
                let mut expected_seq = 0u64;
                for (i, e) in exec.events().iter().enumerate() {
                    let BeepAction::Beep { src, seq } = &e.action;
                    if src != node {
                        continue;
                    }
                    let clock = match e.clock {
                        Some(c) => c,
                        None => {
                            return Verdict::violated(format!(
                                "event {i}: beep of node {node} recorded without a clock reading"
                            ))
                        }
                    };
                    if let Some(prev) = last {
                        if clock <= prev {
                            return Verdict::violated(format!(
                                "event {i}: node {node} clock moved {prev} → {clock} (C3 broken)"
                            ));
                        }
                    }
                    last = Some(clock);
                    if *seq != expected_seq {
                        return Verdict::violated(format!(
                            "event {i}: node {node} beeped seq {seq}, expected {expected_seq}"
                        ));
                    }
                    expected_seq += 1;
                    let due = Time::ZERO + *period * (*seq as i64 + 1);
                    if clock != due {
                        return Verdict::violated(format!(
                            "event {i}: node {node} beep {seq} at clock {clock}, expected {due}"
                        ));
                    }
                }
            }
            Verdict::Holds
        },
    )));

    for i in 0..cfg.nodes {
        let period = fleet_period(cfg, i);
        oracles.push(Box::new(FnOracle::new(
            format!("replay(beeper {i})"),
            move |exec: &Execution<BeepAction>| match replay_clock(
                ClockBeeper::with_src(period, i),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 clock replay failed: {e}")),
            },
        )));
    }
    oracles
}

/// Runs one register (`D_C`) case. Returns the run, oracle verdicts, and
/// clamped clock-request count.
///
/// # Panics
///
/// Panics if the config is not a register config.
pub fn run_register(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<RegAction> {
    assert_eq!(cfg.kind, ScenarioKind::Register);
    let mut built = build_register(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_register(cfg, seed, &run);
    finish_case(&built, violations, run)
}

/// Builds the register (`D_C`) case's engine (without running it).
pub(crate) fn build_register(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<RegAction> {
    let hub = MetricsHub::new();
    let topo = Topology::complete(cfg.nodes as usize);
    let physical = cfg.bounds();
    let eps = ns(cfg.eps_ns);
    let params = RegisterParams::for_clock_model(
        &topo,
        physical,
        eps,
        ns(cfg.d2_ns / 2),
        Duration::from_micros(100),
    );
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let mut handles = Vec::new();
    let strategies = (0..cfg.nodes)
        .map(|i| {
            let clock = scripted_clock_for(plan, i);
            handles.push(clock.rejections());
            Box::new(clock) as Box<dyn psync_executor::ClockStrategy>
        })
        .collect();
    let plan_for_policy = plan.clone();
    let workload = ClosedLoopWorkload::new(
        &topo,
        seed,
        DelayBounds::new(Duration::from_millis(1), Duration::from_millis(6)).expect("valid"),
        cfg.ops_per_node,
    );
    let engine = build_dc(&topo, physical, eps, algorithms, strategies, move |_, _| {
        Box::new(PlanDelayPolicy::new(&plan_for_policy, seed))
    })
    .timed(workload)
    .observer(hub.engine_observer().without_checkpoint_counters())
    .scheduler(BiasedScheduler::new(plan, seed ^ 0x5C4E_D01E))
    .horizon(at_ns(cfg.horizon_ns))
    .max_events(CASE_MAX_EVENTS)
    .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: None,
        rejections: handles,
    }
}

/// Judges a register run: liveness (the closed loop must drain before the
/// horizon) plus the oracle set.
pub(crate) fn judge_register(
    cfg: &ScenarioConfig,
    seed: u64,
    run: &Result<Run<RegAction>, String>,
) -> Vec<(String, String)> {
    match run {
        Ok(run) => {
            let mut violations = Vec::new();
            if run.stop != StopReason::Quiescent {
                violations.push((
                    "liveness".to_string(),
                    format!("workload did not finish by the horizon ({:?})", run.stop),
                ));
            }
            violations.extend(check_all(&register_oracles(cfg, seed), &run.execution));
            violations
        }
        Err(e) => vec![("engine".into(), e.clone())],
    }
}

/// The register scenario's oracle set. Linearizability is the *same*
/// [`LinearizableRegister`] problem instance the conformance sweeps use,
/// adapted through [`ProblemOracle`] — the shared-checker seam the
/// explorer was built around.
#[must_use]
pub fn register_oracles(cfg: &ScenarioConfig, seed: u64) -> Vec<Box<dyn Oracle<RegAction>>> {
    let n = cfg.nodes as usize;
    let ops = cfg.ops_per_node;
    vec![
        Box::new(ProblemOracle::new(
            LinearizableRegister::new(n, Value::INITIAL),
            |e: &Execution<RegAction>| app_trace(e),
        )),
        Box::new(CEpsOracle::new(ns(cfg.eps_ns))),
        Box::new(FnOracle::new(
            "replay(workload)",
            move |exec: &Execution<RegAction>| {
                // ClosedLoopWorkload is not Clone; rebuild the identical
                // component from the artifact inputs for each replay.
                let workload = ClosedLoopWorkload::new(
                    &Topology::complete(n),
                    seed,
                    DelayBounds::new(Duration::from_millis(1), Duration::from_millis(6))
                        .expect("valid"),
                    ops,
                );
                match replay_timed(workload, exec) {
                    Ok(_) => Verdict::Holds,
                    Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
                }
            },
        )),
    ]
}

/// Collapses a typed [`Judged`] result into the kind-erased
/// [`CaseOutcome`] the exploration loop stores and compares.
pub(crate) fn outcome_of<A: Action>(judged: Judged<A>) -> CaseOutcome {
    let (events, fp) = match &judged.run {
        Ok(r) => (r.execution.len(), fingerprint(&r.execution)),
        Err(_) => (0, 0),
    };
    CaseOutcome {
        violations: judged.violations,
        events,
        rejected_clock_requests: judged.rejected_clock_requests,
        fingerprint: fp,
        metrics: judged.metrics,
    }
}

/// Runs one case of any scenario kind and judges it — the generic entry
/// point the exploration loop and `replay_artifact` share.
#[must_use]
pub fn run_case(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> CaseOutcome {
    match cfg.kind {
        ScenarioKind::Heartbeat => outcome_of(run_heartbeat(cfg, plan, seed)),
        ScenarioKind::ClockFleet => outcome_of(run_clockfleet(cfg, plan, seed)),
        ScenarioKind::Register => outcome_of(run_register(cfg, plan, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_heartbeat_case_passes_all_oracles() {
        let cfg = ScenarioConfig::heartbeat_default();
        let out = run_case(&cfg, &FaultPlan::empty(), 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.events > 0);
    }

    #[test]
    fn clean_clockfleet_case_passes_all_oracles() {
        let cfg = ScenarioConfig::clockfleet_default();
        let out = run_case(&cfg, &FaultPlan::empty(), 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.rejected_clock_requests, 0);
    }

    #[test]
    fn clean_register_case_passes_all_oracles() {
        let cfg = ScenarioConfig::register_default();
        let out = run_case(&cfg, &FaultPlan::empty(), 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn crash_is_detected_within_the_bound() {
        let mut cfg = ScenarioConfig::heartbeat_default();
        cfg.crash_at_ns = Some(150_000_000);
        let out = run_case(&cfg, &FaultPlan::empty(), 3);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn config_round_trips_through_json() {
        for cfg in [
            ScenarioConfig::heartbeat_default(),
            ScenarioConfig::clockfleet_default(),
            ScenarioConfig::register_default(),
        ] {
            let back = ScenarioConfig::from_json(&cfg.to_json()).unwrap();
            assert_eq!(cfg, back);
        }
        let mut with_crash = ScenarioConfig::heartbeat_default();
        with_crash.crash_at_ns = Some(42);
        assert_eq!(
            ScenarioConfig::from_json(&with_crash.to_json()).unwrap(),
            with_crash
        );
    }
}
