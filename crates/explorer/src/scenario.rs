//! Scenario factories: the systems a fault plan perturbs, and the
//! oracles that judge each run.
//!
//! The catalog covers the workspace's three model layers with sixteen
//! scenarios in six families:
//!
//! * **heartbeat family** — the timed model: heartbeaters, plan-driven
//!   [`FaultChannel`]s, monitors, and (optionally) scripted crashes.
//!   Variants add a crash ([`ScenarioKind::HeartbeatCrash`]), a
//!   crash-recovery seam replayed through `Engine::checkpoint`/`restore`
//!   ([`ScenarioKind::HeartbeatRestart`], Lemma 2.1 as an executable
//!   test), an intermittently slow gray channel
//!   ([`ScenarioKind::HeartbeatGray`]), a symmetric two-way pair
//!   ([`ScenarioKind::HeartbeatBidi`]), a three-node relay line
//!   ([`ScenarioKind::Relay`]), and a partitioned four-node topology
//!   ([`ScenarioKind::Partition`]). Oracles: the `[d₁, d₂]` delivery
//!   envelope, per-edge FIFO order, per-pair failure-detector accuracy
//!   and completeness (hop-aware detection bounds), and Lemma 2.1
//!   replays of every component.
//! * **clockfleet family** — the clock model in isolation: `n` clock
//!   nodes with plan-scripted clocks driving periodic clock-time
//!   beepers. Oracles: `C_ε` on every recorded reading, per-node clock
//!   monotonicity and exact clock-time cadence, and Lemma 2.1 clock
//!   replays.
//! * **mutex family** — the paper's time-division mutual exclusion
//!   (Section 7's design techniques, `SlotUser` under `C(A, ε)`): slot
//!   users with `guard = ε` edges, transformed to clock time. Oracles:
//!   interval-based mutual exclusion, per-node liveness (every round
//!   entered), `C_ε`, and clock replays of each slot user.
//! * **register family** — the full `D_C` assembly of Section 6
//!   (Algorithm S through Simulation 1) in two- and three-node flavors.
//!   Oracles: linearizability (the same [`LinearizableRegister`] problem
//!   the conformance sweeps use), `C_ε`, liveness, and a workload
//!   replay.
//! * **counter** — the generalized-object extension: `AlgorithmSObj`
//!   over the [`Counter`] spec under a seeded object workload, judged by
//!   [`ObjectLinearizableOracle`].
//! * **sync family** — clock synchronization that *achieves* ε̂:
//!   drifting clock nodes running `psync-sync`'s probe/echo components
//!   over faultable `[d₁, d₂]` channels, certifying a measured bound
//!   each round. [`ScenarioKind::SyncRounds`] is the fault-resistant
//!   configuration (drops and duplicates in scope, crashed/gray peers
//!   aged out by grace). Oracles: the ε̂-parameterized `C_ε`
//!   ([`psync_sync::EpsHatOracle`] — certificate soundness against the
//!   recorded clock readings *and* achievement of the
//!   [`predicted_eps_hat`] bound), the
//!   constant-ε `C_ε` probe, and Lemma 2.1 clock replays of every sync
//!   component. The per-edge FIFO oracle is deliberately absent: a
//!   node legitimately hands several same-instant sends (probe bursts,
//!   held echoes) to independently delayed channels.
//!
//! Every factory is a pure function of `(config, plan, seed)` — the
//! entire contents of a replay artifact — which is what makes replays
//! bit-identical. Planted-bug canaries ([`CanaryKind`]) mutate one
//! factory knob each; the config carries the tag so artifacts of caught
//! canaries replay the mutant faithfully.

use core::cell::Cell;
use std::rc::Rc;

use psync_apps::heartbeat::{FdAction, FdOp, FdParams, Heartbeat, Heartbeater, Monitor};
use psync_apps::mutex::{MutexAction, MutexOp, SlotUser};
use psync_automata::toys::{BeepAction, ClockBeeper};
use psync_automata::{Action, ActionKind, Execution, TimedComponent, Verdict};
use psync_core::{app_trace, build_dc, ClockSim, NodeSpec};
use psync_executor::{ClockNode, DriftClock, Engine, OffsetClock, Run, StopReason};
use psync_net::{
    Envelope, FaultChannel, FaultStats, MaxDelay, MsgId, NodeId, Script, SysAction, Topology,
};
use psync_obs::{check_all_sharded, CEpsOracle, MetricsHub, MetricsSnapshot, OnlineJudge};
use psync_register::object::Counter;
use psync_register::{
    AlgorithmS, AlgorithmSObj, ClosedLoopWorkload, ObjAction, ObjWorkload, RegAction,
    RegisterParams, Value,
};
use psync_sync::{
    drift_rates, predicted_eps_hat, rho_max, EpsHatOracle, MeasuredEps, ProbeSync, RoundSync,
    SyncAction, SyncMsg, SyncOp, SyncParams,
};
use psync_time::{DelayBounds, Duration, Time};
use psync_verify::replay::{replay_clock, replay_timed};
use psync_verify::{
    check_fifo_per_edge, FnOracle, LinearizableRegister, ObjectLinearizableOracle, Oracle,
    ProblemOracle,
};

use crate::canary::CanaryKind;
use crate::faults::{
    scripted_clock_for, seq_of, BiasedScheduler, PlanChannelFault, PlanDelayPolicy,
};
use crate::json::Json;
use crate::plan::{at_ns, ns, FaultEntry, FaultEnvelope, FaultPlan};

/// Which system a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Timed-model failure detector over a faultable channel.
    Heartbeat,
    /// Heartbeat with a scripted crash of the monitored node.
    HeartbeatCrash,
    /// Heartbeat with a crash *and* a checkpoint/restore seam: the run is
    /// paused mid-flight, snapshotted, restored into a fresh engine, and
    /// driven to the horizon — the oracles must hold across the seam
    /// (Lemma 2.1 as a crash-recovery test).
    HeartbeatRestart,
    /// Heartbeat over a gray channel: periodically, sends are pinned to
    /// the worst admissible delay `d₂`.
    HeartbeatGray,
    /// Two nodes monitoring each other over two independent channels.
    HeartbeatBidi,
    /// Three-node line: heartbeats are forwarded by a deduplicating relay
    /// and monitored two hops downstream.
    Relay,
    /// Four nodes in two disjoint pairs; one pair's beater crashes.
    Partition,
    /// Clock-model beeper fleet with scripted clocks.
    ClockFleet,
    /// A larger, faster, more skewed beeper fleet.
    ClockFleetLarge,
    /// Time-division mutual exclusion (`SlotUser` under `C(A, ε)`).
    Mutex,
    /// Mutual exclusion with more nodes and tighter slots.
    MutexContended,
    /// Algorithm S in `D_C` (Section 6) under plan adversaries.
    Register,
    /// Algorithm S with three nodes.
    RegisterTriple,
    /// The generalized-object counter (`AlgorithmSObj<Counter>`).
    Counter,
    /// Probe/echo clock synchronization certifying the achieved ε̂
    /// ([`psync_sync::ProbeSync`] on drifting clocks).
    SyncProbe,
    /// Fault-resistant round-based sync ([`psync_sync::RoundSync`]):
    /// more nodes, drops and duplicates in scope, grace budgeted for
    /// the drop allowance.
    SyncRounds,
}

impl ScenarioKind {
    /// Stable keyword (artifact `scenario` field, CLI `--scenario`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Heartbeat => "heartbeat",
            ScenarioKind::HeartbeatCrash => "heartbeat_crash",
            ScenarioKind::HeartbeatRestart => "heartbeat_restart",
            ScenarioKind::HeartbeatGray => "heartbeat_gray",
            ScenarioKind::HeartbeatBidi => "heartbeat_bidi",
            ScenarioKind::Relay => "relay",
            ScenarioKind::Partition => "partition",
            ScenarioKind::ClockFleet => "clockfleet",
            ScenarioKind::ClockFleetLarge => "clockfleet_large",
            ScenarioKind::Mutex => "mutex",
            ScenarioKind::MutexContended => "mutex_contended",
            ScenarioKind::Register => "register",
            ScenarioKind::RegisterTriple => "register_triple",
            ScenarioKind::Counter => "counter",
            ScenarioKind::SyncProbe => "sync_probe",
            ScenarioKind::SyncRounds => "sync_rounds",
        }
    }

    /// Parses a keyword.
    ///
    /// # Errors
    ///
    /// Unknown keyword.
    pub fn from_name(s: &str) -> Result<ScenarioKind, String> {
        ScenarioKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown scenario {s:?}"))
    }

    /// All scenario kinds, in catalog order.
    #[must_use]
    pub fn all() -> [ScenarioKind; 16] {
        [
            ScenarioKind::Heartbeat,
            ScenarioKind::HeartbeatCrash,
            ScenarioKind::HeartbeatRestart,
            ScenarioKind::HeartbeatGray,
            ScenarioKind::HeartbeatBidi,
            ScenarioKind::Relay,
            ScenarioKind::Partition,
            ScenarioKind::ClockFleet,
            ScenarioKind::ClockFleetLarge,
            ScenarioKind::Mutex,
            ScenarioKind::MutexContended,
            ScenarioKind::Register,
            ScenarioKind::RegisterTriple,
            ScenarioKind::Counter,
            ScenarioKind::SyncProbe,
            ScenarioKind::SyncRounds,
        ]
    }

    /// Does this kind belong to the heartbeat (timed-model) family?
    #[must_use]
    pub fn is_heartbeat(self) -> bool {
        matches!(
            self,
            ScenarioKind::Heartbeat
                | ScenarioKind::HeartbeatCrash
                | ScenarioKind::HeartbeatRestart
                | ScenarioKind::HeartbeatGray
                | ScenarioKind::HeartbeatBidi
                | ScenarioKind::Relay
                | ScenarioKind::Partition
        )
    }

    /// Does this kind belong to the clock-synchronization family?
    #[must_use]
    pub fn is_sync(self) -> bool {
        matches!(self, ScenarioKind::SyncProbe | ScenarioKind::SyncRounds)
    }
}

/// Everything needed to rebuild a scenario's engine: the config half of a
/// replay artifact (the other half is the plan and the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// System family.
    pub kind: ScenarioKind,
    /// Node count.
    pub nodes: u32,
    /// Declared minimum delay `d₁`, nanoseconds.
    pub d1_ns: i64,
    /// Declared maximum delay `d₂`, nanoseconds.
    pub d2_ns: i64,
    /// Skew bound `ε`, nanoseconds.
    pub eps_ns: i64,
    /// Run horizon, nanoseconds.
    pub horizon_ns: i64,
    /// Heartbeat/beep period, or the mutex slot width, nanoseconds.
    pub period_ns: i64,
    /// Drop budget per edge (heartbeat family only).
    pub max_drops: u32,
    /// Closed-loop operations per node (register/counter), mutex rounds
    /// per node, or the per-peer probe burst (sync family).
    pub ops_per_node: u32,
    /// Base hardware drift rate in parts per million (sync family):
    /// node `i` drifts at `drift_rates(nodes, drift_ppm)[i]`. Zero for
    /// every other family.
    pub drift_ppm: i64,
    /// Scripted crash time (heartbeat family only), nanoseconds.
    pub crash_at_ns: Option<i64>,
    /// Checkpoint/restore seam time ([`ScenarioKind::HeartbeatRestart`]
    /// only), nanoseconds.
    pub restart_at_ns: Option<i64>,
    /// The planted-bug canary mutating this scenario, if any.
    pub canary: Option<CanaryKind>,
    /// The seeded bug: extra nanoseconds a boundary delay spike is allowed
    /// to overshoot `d₂` by. Zero = correct channel.
    pub bug_extra_ns: i64,
}

impl ScenarioConfig {
    /// The default heartbeat scenario.
    #[must_use]
    pub fn heartbeat_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::Heartbeat,
            nodes: 2,
            d1_ns: 1_000_000,
            d2_ns: 4_000_000,
            eps_ns: 0,
            horizon_ns: 300_000_000,
            period_ns: 10_000_000,
            max_drops: 2,
            ops_per_node: 0,
            drift_ppm: 0,
            crash_at_ns: None,
            restart_at_ns: None,
            canary: None,
            bug_extra_ns: 0,
        }
    }

    /// The default clock-fleet scenario.
    #[must_use]
    pub fn clockfleet_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::ClockFleet,
            nodes: 3,
            d1_ns: 0,
            d2_ns: 0,
            eps_ns: 2_000_000,
            horizon_ns: 250_000_000,
            period_ns: 9_000_000,
            max_drops: 0,
            ops_per_node: 0,
            drift_ppm: 0,
            crash_at_ns: None,
            restart_at_ns: None,
            canary: None,
            bug_extra_ns: 0,
        }
    }

    /// The default register scenario.
    #[must_use]
    pub fn register_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::Register,
            nodes: 2,
            d1_ns: 1_000_000,
            d2_ns: 4_000_000,
            eps_ns: 1_000_000,
            // Liveness bound, and also the window fault plans are drawn
            // over: the closed loop drains in tens of milliseconds, so a
            // tight horizon keeps generated clock skews landing while
            // operations are still racing.
            horizon_ns: 400_000_000,
            period_ns: 0,
            max_drops: 0,
            ops_per_node: 3,
            drift_ppm: 0,
            crash_at_ns: None,
            restart_at_ns: None,
            canary: None,
            bug_extra_ns: 0,
        }
    }

    /// The default clock-synchronization scenario: three drifting nodes
    /// probing each other over faultable `[1, 3] ms` channels, a 20 ms
    /// round, and the same `ε = 2 ms` envelope the clockfleet assumes —
    /// which the certified ε̂ must then beat.
    #[must_use]
    pub fn sync_default() -> ScenarioConfig {
        ScenarioConfig {
            kind: ScenarioKind::SyncProbe,
            nodes: 3,
            d1_ns: 1_000_000,
            d2_ns: 3_000_000,
            eps_ns: 2_000_000,
            horizon_ns: 300_000_000,
            period_ns: 20_000_000,
            max_drops: 0,
            ops_per_node: 2,
            drift_ppm: 200,
            crash_at_ns: None,
            restart_at_ns: None,
            canary: None,
            bug_extra_ns: 0,
        }
    }

    /// The catalog default for any scenario kind.
    #[must_use]
    pub fn default_for(kind: ScenarioKind) -> ScenarioConfig {
        match kind {
            ScenarioKind::Heartbeat => ScenarioConfig::heartbeat_default(),
            ScenarioKind::HeartbeatCrash => ScenarioConfig {
                kind,
                crash_at_ns: Some(150_000_000),
                ..ScenarioConfig::heartbeat_default()
            },
            ScenarioKind::HeartbeatRestart => ScenarioConfig {
                kind,
                crash_at_ns: Some(150_000_000),
                restart_at_ns: Some(110_000_000),
                ..ScenarioConfig::heartbeat_default()
            },
            ScenarioKind::HeartbeatGray | ScenarioKind::HeartbeatBidi => ScenarioConfig {
                kind,
                ..ScenarioConfig::heartbeat_default()
            },
            ScenarioKind::Relay => ScenarioConfig {
                kind,
                nodes: 3,
                ..ScenarioConfig::heartbeat_default()
            },
            ScenarioKind::Partition => ScenarioConfig {
                kind,
                nodes: 4,
                crash_at_ns: Some(150_000_000),
                ..ScenarioConfig::heartbeat_default()
            },
            ScenarioKind::ClockFleet => ScenarioConfig::clockfleet_default(),
            ScenarioKind::ClockFleetLarge => ScenarioConfig {
                kind,
                nodes: 6,
                eps_ns: 3_000_000,
                horizon_ns: 200_000_000,
                period_ns: 7_000_000,
                ..ScenarioConfig::clockfleet_default()
            },
            ScenarioKind::Mutex => ScenarioConfig {
                kind,
                nodes: 3,
                d1_ns: 0,
                d2_ns: 0,
                eps_ns: 2_000_000,
                horizon_ns: 200_000_000,
                period_ns: 10_000_000,
                max_drops: 0,
                ops_per_node: 4,
                drift_ppm: 0,
                crash_at_ns: None,
                restart_at_ns: None,
                canary: None,
                bug_extra_ns: 0,
            },
            ScenarioKind::MutexContended => ScenarioConfig {
                kind,
                nodes: 4,
                horizon_ns: 160_000_000,
                period_ns: 8_000_000,
                ops_per_node: 3,
                ..ScenarioConfig::default_for(ScenarioKind::Mutex)
            },
            ScenarioKind::Register => ScenarioConfig::register_default(),
            ScenarioKind::RegisterTriple | ScenarioKind::Counter => ScenarioConfig {
                kind,
                nodes: 3,
                ops_per_node: 2,
                ..ScenarioConfig::register_default()
            },
            ScenarioKind::SyncProbe => ScenarioConfig::sync_default(),
            ScenarioKind::SyncRounds => ScenarioConfig {
                kind,
                nodes: 4,
                max_drops: 2,
                ..ScenarioConfig::sync_default()
            },
        }
    }

    /// The same scenario with the late-delivery bug planted: a delay
    /// spike requesting exactly `d₂` is let through at `d₂ + extra_ns`.
    #[must_use]
    pub fn with_bug(mut self, extra_ns: i64) -> ScenarioConfig {
        assert!(extra_ns > 0, "the bug must overshoot by at least one tick");
        self.bug_extra_ns = extra_ns;
        self
    }

    /// The admissibility envelope this scenario grants to fault plans.
    #[must_use]
    pub fn envelope(&self) -> FaultEnvelope {
        let (allow_clock, allow_drop, allow_dup, allow_spike, edges) = if self.kind.is_heartbeat() {
            (false, true, true, true, hb_shape(self.kind).edges)
        } else {
            match self.kind {
                ScenarioKind::ClockFleet
                | ScenarioKind::ClockFleetLarge
                | ScenarioKind::Mutex
                | ScenarioKind::MutexContended => (true, false, false, false, vec![]),
                ScenarioKind::SyncProbe | ScenarioKind::SyncRounds => {
                    // Sync nodes run *drifting* clocks, not plan-scripted
                    // ones, so clock faults are out of scope; the
                    // adversary owns the channels instead. Drops and
                    // duplicates are granted only to the fault-resistant
                    // rounds variant — the plain probe scenario's grace
                    // budget does not tolerate losses.
                    let mut edges = Vec::new();
                    for i in 0..self.nodes {
                        for j in 0..self.nodes {
                            if i != j {
                                edges.push((i, j));
                            }
                        }
                    }
                    let lossy = self.kind == ScenarioKind::SyncRounds;
                    (false, lossy, lossy, true, edges)
                }
                _ => {
                    // Clock channels (`build_dc`) expose a delay policy but
                    // not drops/duplicates; the paper's reliable-channel
                    // model stands, so only spikes and clock faults are in
                    // scope.
                    let mut edges = Vec::new();
                    for i in 0..self.nodes {
                        for j in 0..self.nodes {
                            if i != j {
                                edges.push((i, j));
                            }
                        }
                    }
                    (true, false, false, true, edges)
                }
            }
        };
        let max_seq = if self.kind.is_heartbeat() {
            (self.horizon_ns / self.period_ns.max(1)) as u32 + 1
        } else {
            match self.kind {
                ScenarioKind::Register | ScenarioKind::RegisterTriple | ScenarioKind::Counter => {
                    self.ops_per_node * 2 + 2
                }
                // Each node's shared id counter covers its probes *and*
                // echoes: per round, `burst` probes to each peer plus up
                // to as many echoes back.
                ScenarioKind::SyncProbe | ScenarioKind::SyncRounds => {
                    let rounds = (self.horizon_ns / self.period_ns.max(1)) as u32 + 1;
                    rounds * 2 * self.ops_per_node * (self.nodes - 1)
                }
                _ => 0,
            }
        };
        FaultEnvelope {
            nodes: self.nodes,
            eps_ns: self.eps_ns,
            d1_ns: self.d1_ns,
            d2_ns: self.d2_ns,
            horizon_ns: self.horizon_ns,
            edges,
            max_seq,
            max_drops: self.max_drops,
            allow_clock,
            allow_drop,
            allow_dup,
            allow_spike,
        }
    }

    /// The declared delay bounds `[d₁, d₂]`.
    #[must_use]
    pub fn bounds(&self) -> DelayBounds {
        DelayBounds::new(ns(self.d1_ns), ns(self.d2_ns)).expect("config bounds are ordered")
    }

    /// Monitor parameters budgeted for the plan envelope: the timeout
    /// tolerates `max_drops` consecutive losses plus full delay jitter,
    /// so any false suspicion is a real bug, not a mistuned test.
    #[must_use]
    pub fn fd_params(&self) -> FdParams {
        let period = ns(self.period_ns);
        let jitter = ns(self.d2_ns - self.d1_ns);
        let slack = Duration::from_millis(2);
        FdParams {
            period,
            timeout: period * (i64::from(self.max_drops) + 1) + jitter + slack,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind.name())),
            ("nodes", Json::num(self.nodes)),
            ("d1_ns", Json::num(self.d1_ns)),
            ("d2_ns", Json::num(self.d2_ns)),
            ("eps_ns", Json::num(self.eps_ns)),
            ("horizon_ns", Json::num(self.horizon_ns)),
            ("period_ns", Json::num(self.period_ns)),
            ("max_drops", Json::num(self.max_drops)),
            ("ops_per_node", Json::num(self.ops_per_node)),
            ("drift_ppm", Json::num(self.drift_ppm)),
            (
                "crash_at_ns",
                self.crash_at_ns.map_or(Json::Null, Json::num),
            ),
            (
                "restart_at_ns",
                self.restart_at_ns.map_or(Json::Null, Json::num),
            ),
            (
                "canary",
                self.canary.map_or(Json::Null, |c| Json::str(c.name())),
            ),
            ("bug_extra_ns", Json::num(self.bug_extra_ns)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<ScenarioConfig, String> {
        let i64_field = |name: &str| -> Result<i64, String> {
            v.get(name)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("config missing {name}"))
        };
        let u32_field = |name: &str| -> Result<u32, String> {
            v.get(name)
                .and_then(Json::as_u32)
                .ok_or_else(|| format!("config missing {name}"))
        };
        // New fields are nullable *and* optional, so pre-catalog artifacts
        // (version 1, no restart/canary keys) stay replayable.
        let opt_i64 = |name: &str| -> Result<Option<i64>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(t) => Ok(Some(t.as_i64().ok_or(format!("bad {name}"))?)),
            }
        };
        Ok(ScenarioConfig {
            kind: ScenarioKind::from_name(
                v.get("kind")
                    .and_then(Json::as_str)
                    .ok_or("config missing kind")?,
            )?,
            nodes: u32_field("nodes")?,
            d1_ns: i64_field("d1_ns")?,
            d2_ns: i64_field("d2_ns")?,
            eps_ns: i64_field("eps_ns")?,
            horizon_ns: i64_field("horizon_ns")?,
            period_ns: i64_field("period_ns")?,
            max_drops: u32_field("max_drops")?,
            ops_per_node: u32_field("ops_per_node")?,
            // Pre-sync artifacts carry no drift; missing means zero.
            drift_ppm: opt_i64("drift_ppm")?.unwrap_or(0),
            crash_at_ns: opt_i64("crash_at_ns")?,
            restart_at_ns: opt_i64("restart_at_ns")?,
            canary: match v.get("canary") {
                None | Some(Json::Null) => None,
                Some(t) => Some(CanaryKind::from_name(t.as_str().ok_or("bad canary")?)?),
            },
            bug_extra_ns: i64_field("bug_extra_ns")?,
        })
    }
}

/// The judged result of one case: what the oracles said, a fingerprint of
/// the recorded execution for replay-identity checks, and the metrics the
/// attached observers collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// `(oracle name, violation)` pairs; empty = the run passed.
    pub violations: Vec<(String, String)>,
    /// Recorded event count.
    pub events: usize,
    /// Clock-script requests the C1–C4 guard clamped (attempted backward
    /// jumps / over-ε readings that were rejected at run time).
    pub rejected_clock_requests: u64,
    /// Order-sensitive hash of `(action, now, clock)` over all events.
    pub fingerprint: u64,
    /// Observer metrics of the run (deterministic: replaying the case
    /// reproduces this snapshot bit-for-bit, `==` included).
    pub metrics: MetricsSnapshot,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-sensitive fingerprint of a recorded execution.
#[must_use]
pub fn fingerprint<A: Action>(exec: &Execution<A>) -> u64 {
    let mut h = 0xC1A5_51C0_DE00_0001u64;
    for e in exec.events() {
        let line = format!("{:?}@{}@{:?}", e.action, e.now.as_nanos(), e.clock);
        for b in line.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h);
    }
    h
}

const CASE_MAX_EVENTS: usize = 250_000;

/// A judge's result: the oracle verdicts plus the deterministic judging
/// metrics (`monitor.checks`, `monitor.violations`) that
/// [`finish_case`] folds into the case's hub.
pub(crate) type JudgeVerdicts = (Vec<(String, String)>, MetricsSnapshot);

/// Judges a finished run against an oracle set on `shards` worker
/// threads. The shard count is threaded down from
/// [`CampaignConfig::monitor_shards`](crate::CampaignConfig) — there is
/// deliberately no process-global setter (a global breaks concurrent
/// library users; two campaigns in one process must be able to judge at
/// different widths). It is a pure performance knob: the sharded judge's
/// verdicts *and* metrics are bit-identical for every value (see
/// [`check_all_sharded`]), which is why it may live outside the
/// `(config, plan, seed)` triple without breaking replay identity. An
/// engine error short-circuits to a single `engine` violation with empty
/// metrics.
fn judge_sharded<A: Action + Send + Sync>(
    oracles: &[Box<dyn Oracle<A>>],
    run: &Result<Run<A>, String>,
    shards: usize,
) -> JudgeVerdicts {
    match run {
        Ok(run) => check_all_sharded(oracles, &run.execution, shards.max(1)),
        Err(e) => (
            vec![("engine".into(), e.clone())],
            MetricsSnapshot::default(),
        ),
    }
}

/// A typed runner's result: the raw engine run (or its error), the
/// oracles' `(name, violation)` verdicts, the number of clock-script
/// requests the C1–C4 guard clamped (always 0 for the timed-model
/// scenario), and the metrics collected by the attached observers.
#[derive(Debug)]
pub struct Judged<A: Action> {
    /// The engine run, or the engine error rendered as a string.
    pub run: Result<Run<A>, String>,
    /// `(oracle name, violation)` pairs; empty = the run passed.
    pub violations: Vec<(String, String)>,
    /// Clock-script requests the C1–C4 guard clamped.
    pub rejected_clock_requests: u64,
    /// Observer metrics of the run.
    pub metrics: MetricsSnapshot,
}

/// Folds one [`FaultChannel`]'s fault counters into a hub snapshot under
/// the `channel.*` names.
fn merge_fault_stats(hub: &MetricsHub, stats: &FaultStats) {
    hub.add("channel.sends", stats.sends());
    hub.add("channel.delivered", stats.delivered());
    hub.add("channel.dropped", stats.dropped());
    hub.add("channel.duplicated", stats.duplicated());
    hub.add("channel.spiked", stats.spiked());
}

/// A case's engine plus the observation handles the post-run accounting
/// needs — the common shape the plain runners and the checkpoint-resuming
/// shrink driver (`resume` module) share. The engine observers are
/// attached with checkpoint counters suppressed, so a checkpointed run's
/// metrics are bit-identical to a straight run's.
pub(crate) struct BuiltCase<A: Action> {
    pub(crate) engine: Engine<A>,
    pub(crate) hub: MetricsHub,
    /// The fault channels' counters (heartbeat family; one per edge, in
    /// topology-shape order).
    pub(crate) fault_stats: Vec<FaultStats>,
    /// Scripted-clock rejection handles, one per clock node.
    pub(crate) rejections: Vec<Rc<Cell<u64>>>,
}

/// Post-run accounting shared by every scenario kind: fold fault stats,
/// clamped-clock counts, and the judge's own metrics into the hub (in the
/// same order the original monolithic runners did) and snapshot.
pub(crate) fn finish_case<A: Action>(
    built: &BuiltCase<A>,
    judged: JudgeVerdicts,
    run: Result<Run<A>, String>,
) -> Judged<A> {
    let (violations, judge_metrics) = judged;
    for stats in &built.fault_stats {
        merge_fault_stats(&built.hub, stats);
    }
    let rejected: u64 = built.rejections.iter().map(|h| h.get()).sum();
    if !built.rejections.is_empty() {
        built.hub.add("clock.rejected_requests", rejected);
    }
    built.hub.absorb(&judge_metrics);
    Judged {
        run,
        violations,
        rejected_clock_requests: rejected,
        metrics: built.hub.snapshot(),
    }
}

/// Topology of one heartbeat-family scenario: which channels exist, who
/// beats toward whom, who monitors whom, whether node 1 relays, and who
/// a scripted crash hits.
pub(crate) struct HbShape {
    /// Faultable channels, as `(src, dst)` edges.
    pub(crate) edges: Vec<(u32, u32)>,
    /// Heartbeaters, as `(node, monitor)` pairs.
    pub(crate) beaters: Vec<(u32, u32)>,
    /// Monitors, as `(node, target)` pairs.
    pub(crate) monitors: Vec<(u32, u32)>,
    /// The deduplicating relay, as `(me, to)`.
    pub(crate) relay: Option<(u32, u32)>,
    /// Which node a scripted crash (if the config has one) hits.
    pub(crate) crash_node: u32,
}

pub(crate) fn hb_shape(kind: ScenarioKind) -> HbShape {
    match kind {
        ScenarioKind::Heartbeat
        | ScenarioKind::HeartbeatCrash
        | ScenarioKind::HeartbeatRestart
        | ScenarioKind::HeartbeatGray => HbShape {
            edges: vec![(0, 1)],
            beaters: vec![(0, 1)],
            monitors: vec![(1, 0)],
            relay: None,
            crash_node: 0,
        },
        ScenarioKind::HeartbeatBidi => HbShape {
            edges: vec![(0, 1), (1, 0)],
            beaters: vec![(0, 1), (1, 0)],
            monitors: vec![(1, 0), (0, 1)],
            relay: None,
            crash_node: 0,
        },
        ScenarioKind::Relay => HbShape {
            edges: vec![(0, 1), (1, 2)],
            beaters: vec![(0, 1)],
            monitors: vec![(2, 1)],
            relay: Some((1, 2)),
            crash_node: 0,
        },
        ScenarioKind::Partition => HbShape {
            edges: vec![(0, 1), (2, 3)],
            beaters: vec![(0, 1), (2, 3)],
            monitors: vec![(1, 0), (3, 2)],
            relay: None,
            crash_node: 2,
        },
        _ => unreachable!("hb_shape called on a non-heartbeat kind"),
    }
}

/// Monitor parameters actually deployed: the drop budget doubles behind
/// a relay (each hop may drop `max_drops`), and the
/// [`CanaryKind::FdTimeoutUnderbudget`] canary plants the classic bug of
/// budgeting for jitter but not for drops.
pub(crate) fn monitor_params(cfg: &ScenarioConfig, relayed: bool) -> FdParams {
    let period = ns(cfg.period_ns);
    let jitter = ns(cfg.d2_ns - cfg.d1_ns);
    let slack = Duration::from_millis(2);
    if cfg.canary == Some(CanaryKind::FdTimeoutUnderbudget) {
        return FdParams {
            period,
            timeout: period + jitter + slack,
        };
    }
    if relayed {
        FdParams {
            period,
            timeout: period * (2 * i64::from(cfg.max_drops) + 1) + jitter * 2 + slack,
        }
    } else {
        cfg.fd_params()
    }
}

/// The relay's scripted stall window (nanoseconds), used by the
/// [`CanaryKind::RelayLifoHeal`] canary: heartbeats arriving inside the
/// window are buffered until it closes, then flushed LIFO.
const RELAY_STALL_NS: (i64, i64) = (95_000_000, 130_000_000);

/// State of a [`HeartbeatRelay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayState {
    /// Sequence numbers ever received (the dedup filter).
    seen: Vec<u32>,
    /// Buffered sequence numbers with their earliest forward time.
    pending: Vec<(u32, Time)>,
}

/// A store-and-forward heartbeat relay: deduplicates incoming heartbeats
/// and forwards each exactly once (re-stamped with its own source id).
/// With a stall window configured, arrivals inside the window are held
/// until it closes and then flushed newest-first — the planted LIFO-heal
/// bug the per-edge FIFO oracle must catch.
#[derive(Debug, Clone)]
pub struct HeartbeatRelay {
    me: NodeId,
    to: NodeId,
    stall: Option<(Time, Time)>,
}

impl HeartbeatRelay {
    /// A healthy relay forwarding from `me` to `to`.
    #[must_use]
    pub fn new(me: NodeId, to: NodeId) -> Self {
        HeartbeatRelay {
            me,
            to,
            stall: None,
        }
    }

    /// Plants the LIFO-heal bug: arrivals in `[from, until)` are buffered
    /// until `until` and flushed newest-first.
    #[must_use]
    pub fn with_lifo_stall(mut self, from: Time, until: Time) -> Self {
        assert!(from < until, "stall window must be non-empty");
        self.stall = Some((from, until));
        self
    }

    fn env_for(&self, seq: u32) -> Envelope<Heartbeat> {
        Envelope {
            src: self.me,
            dst: self.to,
            id: MsgId::from_parts(self.me, seq),
            payload: Heartbeat { seq },
        }
    }

    /// The sequence number forwarded next: among ready entries, the
    /// oldest — or the newest when the stall bug is planted.
    fn choice(&self, s: &RelayState, now: Time) -> Option<u32> {
        let mut ready = s.pending.iter().filter(|(_, at)| *at <= now);
        if self.stall.is_some() {
            ready.next_back().map(|(seq, _)| *seq)
        } else {
            ready.next().map(|(seq, _)| *seq)
        }
    }
}

impl TimedComponent for HeartbeatRelay {
    type Action = FdAction;
    type State = RelayState;

    fn name(&self) -> String {
        format!("relay({}->{})", self.me, self.to)
    }

    fn initial(&self) -> RelayState {
        RelayState {
            seen: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn classify(&self, a: &FdAction) -> Option<ActionKind> {
        match a {
            SysAction::Recv(env) if env.dst == self.me => Some(ActionKind::Input),
            SysAction::Send(env) if env.src == self.me => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["RECVMSG", "SENDMSG"])
    }

    fn step(&self, s: &RelayState, a: &FdAction, now: Time) -> Option<RelayState> {
        match a {
            SysAction::Recv(env) if env.dst == self.me => {
                let seq = seq_of(env.id);
                let mut next = s.clone();
                if !next.seen.contains(&seq) {
                    next.seen.push(seq);
                    let ready = match self.stall {
                        Some((from, until)) if now >= from && now < until => until,
                        _ => now,
                    };
                    next.pending.push((seq, ready));
                }
                Some(next)
            }
            SysAction::Send(env) if env.src == self.me => {
                let seq = seq_of(env.id);
                if self.choice(s, now) != Some(seq) || *env != self.env_for(seq) {
                    return None;
                }
                let mut next = s.clone();
                next.pending.retain(|(q, _)| *q != seq);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &RelayState, now: Time) -> Vec<FdAction> {
        match self.choice(s, now) {
            Some(seq) => vec![SysAction::Send(self.env_for(seq))],
            None => Vec::new(),
        }
    }

    fn deadline(&self, s: &RelayState, _now: Time) -> Option<Time> {
        s.pending.iter().map(|(_, at)| *at).min()
    }
}

/// The relay instance a config deploys (and its replay oracle rebuilds).
fn relay_component(cfg: &ScenarioConfig, me: u32, to: u32) -> HeartbeatRelay {
    let relay = HeartbeatRelay::new(NodeId(me as usize), NodeId(to as usize));
    if cfg.canary == Some(CanaryKind::RelayLifoHeal) {
        relay.with_lifo_stall(at_ns(RELAY_STALL_NS.0), at_ns(RELAY_STALL_NS.1))
    } else {
        relay
    }
}

/// Builds a heartbeat-family case's engine (without running it).
pub(crate) fn build_heartbeat(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<FdAction> {
    build_heartbeat_with(cfg, plan, seed, None)
}

/// [`build_heartbeat`], optionally attaching an [`OnlineJudge`]'s
/// observer so stream oracles see every event as it is recorded. The
/// judge observer is read-only like every other observer: attaching it
/// never changes the produced execution.
pub(crate) fn build_heartbeat_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    online: Option<&OnlineJudge<FdAction>>,
) -> BuiltCase<FdAction> {
    let shape = hb_shape(cfg.kind);
    let declared = cfg.bounds();
    // The seeded bug widens the channel's *internal* bounds so the stretch
    // passes the channel's own assert; the oracles keep judging against
    // the declared envelope, which is exactly how they catch it.
    let actual = DelayBounds::new(declared.min(), declared.max() + ns(cfg.bug_extra_ns))
        .expect("widened bounds stay ordered");
    let period = ns(cfg.period_ns);
    let params = monitor_params(cfg, shape.relay.is_some());
    let hub = MetricsHub::new();

    let mut builder = Engine::builder();
    for &(src, dst) in &shape.beaters {
        builder = builder.timed(Heartbeater::new(
            NodeId(src as usize),
            NodeId(dst as usize),
            period,
        ));
    }
    if let Some((me, to)) = shape.relay {
        builder = builder.timed(relay_component(cfg, me, to));
    }
    let mut fault_stats = Vec::new();
    for &(src, dst) in &shape.edges {
        let mut fault = PlanChannelFault::new(plan, src, dst, seed, declared, ns(cfg.bug_extra_ns));
        if cfg.kind == ScenarioKind::HeartbeatGray {
            fault = fault.with_gray_windows(period * 4, period * 2);
        }
        if cfg.canary == Some(CanaryKind::DuplicateDelivery) {
            fault = fault.with_duplicate_all();
        }
        let channel = FaultChannel::<Heartbeat, FdOp>::new(
            NodeId(src as usize),
            NodeId(dst as usize),
            actual,
            MaxDelay,
            fault,
        );
        fault_stats.push(channel.stats());
        builder = builder.timed(channel);
    }
    for &(node, target) in &shape.monitors {
        builder = builder.timed(Monitor::new(
            NodeId(node as usize),
            NodeId(target as usize),
            params,
        ));
    }
    if let Some(crash) = cfg.crash_at_ns {
        builder = builder.timed(Script::<Heartbeat, FdOp>::new(
            [(
                at_ns(crash),
                FdOp::Crash {
                    node: NodeId(shape.crash_node as usize),
                },
            )],
            |_| false,
        ));
    }
    builder = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .observer(hub.channel_delay_observer());
    if let Some(judge) = online {
        builder = builder.observer(judge.observer());
    }
    let engine = builder
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats,
        rejections: Vec::new(),
    }
}

/// Judges a heartbeat run against the scenario's oracles.
pub(crate) fn judge_heartbeat(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    run: &Result<Run<FdAction>, String>,
    shards: usize,
) -> JudgeVerdicts {
    judge_sharded(&heartbeat_oracles(cfg, plan), run, shards)
}

/// Runs one heartbeat-family case: returns the raw engine run and the
/// oracle verdicts. Public (rather than folded into [`run_case`]) so
/// tests can compare whole [`Execution`]s across replays.
///
/// # Panics
///
/// Panics if the config is not a heartbeat-family config (the restart
/// variant has its own runner, [`run_heartbeat_restart`]).
pub fn run_heartbeat(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<FdAction> {
    run_heartbeat_with(cfg, plan, seed, 1)
}

pub(crate) fn run_heartbeat_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<FdAction> {
    assert!(cfg.kind.is_heartbeat() && cfg.kind != ScenarioKind::HeartbeatRestart);
    let mut built = build_heartbeat(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_heartbeat(cfg, plan, &run, shards);
    finish_case(&built, violations, run)
}

/// Runs one crash-recovery case: drives the engine to the restart seam,
/// snapshots it ([`Engine::checkpoint`]), restores the snapshot into a
/// freshly built engine, and drives that one to the horizon. By
/// Lemma 2.1 (pasting), the recorded execution — and therefore every
/// oracle verdict, the fingerprint, and the metrics — is bit-identical
/// to an uninterrupted run; this runner is the catalog's executable
/// witness of that, exercised under every fault plan a campaign throws
/// at it.
///
/// # Panics
///
/// Panics if the config is not a [`ScenarioKind::HeartbeatRestart`]
/// config.
pub fn run_heartbeat_restart(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> Judged<FdAction> {
    run_heartbeat_restart_with(cfg, plan, seed, 1)
}

pub(crate) fn run_heartbeat_restart_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<FdAction> {
    assert_eq!(cfg.kind, ScenarioKind::HeartbeatRestart);
    let seam = cfg
        .restart_at_ns
        .expect("restart scenario carries a seam time");
    let mut first = build_heartbeat(cfg, plan, seed);
    let run1 = first
        .engine
        .run_until(at_ns(seam))
        .map_err(|e| e.to_string());
    match run1 {
        Ok(r) if r.stop == StopReason::Horizon => {
            let checkpoint = first.engine.checkpoint();
            let metrics = first.hub.snapshot();
            let fault_values: Vec<[u64; 5]> =
                first.fault_stats.iter().map(FaultStats::values).collect();
            // The "restarted process": a fresh engine built from the same
            // artifact inputs, with the snapshot poured back in. restore()
            // also restores the captured horizon (the seam), so the final
            // horizon is re-armed explicitly.
            let mut second = build_heartbeat(cfg, plan, seed);
            second.engine.restore(&checkpoint);
            second.hub.restore(&metrics);
            for (stats, values) in second.fault_stats.iter().zip(&fault_values) {
                stats.set_values(*values);
            }
            let run = second
                .engine
                .run_until(at_ns(cfg.horizon_ns))
                .map_err(|e| e.to_string());
            let violations = judge_heartbeat(cfg, plan, &run, shards);
            finish_case(&second, violations, run)
        }
        run => {
            // Stopped before the seam (quiescent or capped): nothing to
            // restart; judge what was recorded.
            let violations = judge_heartbeat(cfg, plan, &run, shards);
            finish_case(&first, violations, run)
        }
    }
}

/// The heartbeat family's oracle set (shared with conformance-style
/// sweeps via the [`Oracle`] trait).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn heartbeat_oracles(cfg: &ScenarioConfig, plan: &FaultPlan) -> Vec<Box<dyn Oracle<FdAction>>> {
    let shape = hb_shape(cfg.kind);
    let declared = cfg.bounds();
    let dropped: Vec<(u32, u32, u32)> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Drop { src, dst, seq } => Some((src, dst, seq)),
            _ => None,
        })
        .collect();
    let duplicated: Vec<(u32, u32, u32)> = plan
        .entries
        .iter()
        .filter_map(|e| match *e {
            FaultEntry::Duplicate { src, dst, seq, .. } => Some((src, dst, seq)),
            _ => None,
        })
        .collect();

    let envelope = FnOracle::new("delivery envelope", move |exec: &Execution<FdAction>| {
        let mut sends: Vec<(u64, Time)> = Vec::new();
        let mut copies: Vec<(u64, u32)> = Vec::new();
        for (i, e) in exec.events().iter().enumerate() {
            match &e.action {
                SysAction::Send(env) => sends.push((env.id.0, e.now)),
                SysAction::Recv(env) => {
                    let Some((_, sent)) = sends.iter().find(|(id, _)| *id == env.id.0) else {
                        return Verdict::violated(format!(
                            "event {i}: received message {} that was never sent",
                            env.id.0
                        ));
                    };
                    let latency = e.now - *sent;
                    if latency < declared.min() || latency > declared.max() {
                        return Verdict::violated(format!(
                            "event {i}: message {} delivered after {latency}, outside [{}, {}]",
                            env.id.0,
                            declared.min(),
                            declared.max()
                        ));
                    }
                    let seq = seq_of(env.id);
                    let edge_seq = (env.src.0 as u32, env.dst.0 as u32, seq);
                    if dropped.contains(&edge_seq) {
                        return Verdict::violated(format!(
                            "event {i}: message {seq} was delivered despite a planned drop"
                        ));
                    }
                    match copies.iter_mut().find(|(id, _)| *id == env.id.0) {
                        Some((_, n)) => *n += 1,
                        None => copies.push((env.id.0, 1)),
                    }
                    let n = copies
                        .iter()
                        .find(|(id, _)| *id == env.id.0)
                        .map_or(0, |(_, n)| *n);
                    // Only a *planned* duplicate may arrive twice: a
                    // channel that duplicates on its own (the
                    // duplicate-delivery canary) is exactly what this
                    // oracle exists to catch.
                    let allowed = if duplicated.contains(&edge_seq) { 2 } else { 1 };
                    if n > allowed {
                        return Verdict::violated(format!(
                            "event {i}: message {seq} delivered {n} times (plan allows {allowed})"
                        ));
                    }
                }
                _ => {}
            }
        }
        Verdict::Holds
    });

    let fifo = FnOracle::new("fifo order", |exec: &Execution<FdAction>| {
        check_fifo_per_edge(exec)
    });

    let relayed = shape.relay.is_some();
    let params = monitor_params(cfg, relayed);
    let hops = if relayed { 2 } else { 1 };
    let detection = ns(cfg.d2_ns) * hops + params.timeout + Duration::from_millis(1);
    let horizon = at_ns(cfg.horizon_ns);
    let pairs = shape.monitors.clone();
    let fd = FnOracle::new("failure detector", move |exec: &Execution<FdAction>| {
        for &(m, t) in &pairs {
            let mut crashed_at: Option<Time> = None;
            let mut suspected_at: Option<Time> = None;
            for e in exec.events() {
                match &e.action {
                    SysAction::App(FdOp::Crash { node })
                        if node.0 == t as usize && crashed_at.is_none() =>
                    {
                        crashed_at = Some(e.now);
                    }
                    SysAction::App(FdOp::Suspect { monitor, target })
                        if monitor.0 == m as usize
                            && target.0 == t as usize
                            && suspected_at.is_none() =>
                    {
                        suspected_at = Some(e.now);
                    }
                    _ => {}
                }
            }
            match (crashed_at, suspected_at) {
                (None, Some(s)) => {
                    return Verdict::violated(format!(
                        "monitor {m}: false suspicion of {t} at {s} (no crash ever happened)"
                    ))
                }
                (Some(c), Some(s)) if s < c => {
                    return Verdict::violated(format!(
                        "monitor {m}: false suspicion of {t} at {s}, before the crash at {c}"
                    ))
                }
                (Some(c), Some(s)) if s - c > detection => {
                    return Verdict::violated(format!(
                        "monitor {m}: suspicion at {s} exceeds the detection bound {detection} \
                         after the crash at {c}"
                    ))
                }
                (Some(c), None) if c + detection < horizon => {
                    return Verdict::violated(format!(
                        "monitor {m}: crash of {t} at {c} never suspected within {detection} \
                         (completeness)"
                    ))
                }
                _ => {}
            }
        }
        Verdict::Holds
    });

    let mut oracles: Vec<Box<dyn Oracle<FdAction>>> =
        vec![Box::new(envelope), Box::new(fifo), Box::new(fd)];
    for &(node, target) in &shape.monitors {
        oracles.push(Box::new(FnOracle::new(
            format!("replay(monitor {node})"),
            move |exec: &Execution<FdAction>| match replay_timed(
                Monitor::new(NodeId(node as usize), NodeId(target as usize), params),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
            },
        )));
    }
    let period = ns(cfg.period_ns);
    for &(src, dst) in &shape.beaters {
        oracles.push(Box::new(FnOracle::new(
            format!("replay(heartbeater {src})"),
            move |exec: &Execution<FdAction>| match replay_timed(
                Heartbeater::new(NodeId(src as usize), NodeId(dst as usize), period),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
            },
        )));
    }
    if let Some((me, to)) = shape.relay {
        let relay = relay_component(cfg, me, to);
        oracles.push(Box::new(FnOracle::new(
            "replay(relay)",
            move |exec: &Execution<FdAction>| match replay_timed(relay.clone(), exec) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
            },
        )));
    }
    oracles
}

/// Per-node beep period of the clock fleet (staggered so the fleet's
/// interleavings are non-trivial).
fn fleet_period(cfg: &ScenarioConfig, node: u32) -> Duration {
    ns(cfg.period_ns + i64::from(node) * 1_000_000)
}

/// Runs one clock-fleet case. Returns the run, oracle verdicts, and the
/// number of clock-script requests the C1–C4 guard clamped.
///
/// # Panics
///
/// Panics if the config is not a clockfleet-family config.
pub fn run_clockfleet(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<BeepAction> {
    run_clockfleet_with(cfg, plan, seed, 1)
}

pub(crate) fn run_clockfleet_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<BeepAction> {
    assert!(matches!(
        cfg.kind,
        ScenarioKind::ClockFleet | ScenarioKind::ClockFleetLarge
    ));
    let mut built = build_clockfleet(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_clockfleet(cfg, &run, shards);
    finish_case(&built, violations, run)
}

/// Builds the clock-fleet case's engine (without running it).
pub(crate) fn build_clockfleet(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<BeepAction> {
    let eps = ns(cfg.eps_ns);
    let hub = MetricsHub::new();
    let mut builder = Engine::builder();
    let mut handles = Vec::new();
    for i in 0..cfg.nodes {
        let period = if cfg.canary == Some(CanaryKind::CadenceRush) && i == 0 {
            fleet_period(cfg, 0) - Duration::from_millis(1)
        } else {
            fleet_period(cfg, i)
        };
        if cfg.canary == Some(CanaryKind::SkewBeyondEps) && i == 0 {
            // The planted bug: node 0's clock runs 1 ms beyond the
            // declared ε. Its ClockNode is registered with a widened
            // envelope so the engine guard lets the readings through —
            // the C_ε oracle still judges against the declared ε.
            let widened = eps + Duration::from_millis(2);
            builder = builder.clock_node(
                ClockNode::new(
                    "n0".to_string(),
                    widened,
                    OffsetClock::new(eps + Duration::from_millis(1), widened),
                )
                .with(ClockBeeper::with_src(period, 0)),
            );
            continue;
        }
        let clock = scripted_clock_for(plan, i);
        handles.push(clock.rejections());
        builder = builder.clock_node(
            ClockNode::new(format!("n{i}"), eps, clock).with(ClockBeeper::with_src(period, i)),
        );
    }
    let engine = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: Vec::new(),
        rejections: handles,
    }
}

/// Judges a clock-fleet run against the scenario's oracles.
pub(crate) fn judge_clockfleet(
    cfg: &ScenarioConfig,
    run: &Result<Run<BeepAction>, String>,
    shards: usize,
) -> JudgeVerdicts {
    judge_sharded(&clockfleet_oracles(cfg), run, shards)
}

/// The clock-fleet scenario's oracle set.
#[must_use]
pub fn clockfleet_oracles(cfg: &ScenarioConfig) -> Vec<Box<dyn Oracle<BeepAction>>> {
    let eps = ns(cfg.eps_ns);
    let mut oracles: Vec<Box<dyn Oracle<BeepAction>>> = vec![Box::new(CEpsOracle::new(eps))];

    // Per-node clock monotonicity and exact clock-time cadence: beep k of
    // node i must carry clock reading (k+1)·period_i even under scripted
    // skew — the deadline clamp in the C1–C4 guard guarantees it.
    let periods: Vec<(u32, Duration)> = (0..cfg.nodes).map(|i| (i, fleet_period(cfg, i))).collect();
    oracles.push(Box::new(FnOracle::new(
        "clock cadence",
        move |exec: &Execution<BeepAction>| {
            for (node, period) in &periods {
                let mut last: Option<Time> = None;
                let mut expected_seq = 0u64;
                for (i, e) in exec.events().iter().enumerate() {
                    let BeepAction::Beep { src, seq } = &e.action;
                    if src != node {
                        continue;
                    }
                    let clock = match e.clock {
                        Some(c) => c,
                        None => {
                            return Verdict::violated(format!(
                                "event {i}: beep of node {node} recorded without a clock reading"
                            ))
                        }
                    };
                    if let Some(prev) = last {
                        if clock <= prev {
                            return Verdict::violated(format!(
                                "event {i}: node {node} clock moved {prev} → {clock} (C3 broken)"
                            ));
                        }
                    }
                    last = Some(clock);
                    if *seq != expected_seq {
                        return Verdict::violated(format!(
                            "event {i}: node {node} beeped seq {seq}, expected {expected_seq}"
                        ));
                    }
                    expected_seq += 1;
                    let due = Time::ZERO + *period * (*seq as i64 + 1);
                    if clock != due {
                        return Verdict::violated(format!(
                            "event {i}: node {node} beep {seq} at clock {clock}, expected {due}"
                        ));
                    }
                }
            }
            Verdict::Holds
        },
    )));

    for i in 0..cfg.nodes {
        let period = fleet_period(cfg, i);
        oracles.push(Box::new(FnOracle::new(
            format!("replay(beeper {i})"),
            move |exec: &Execution<BeepAction>| match replay_clock(
                ClockBeeper::with_src(period, i),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 clock replay failed: {e}")),
            },
        )));
    }
    oracles
}

/// The slot users' guard band: `ε` normally, zero under the
/// [`CanaryKind::MutexGuardZero`] canary (the paper's Section 7 failure
/// mode: an unguarded schedule is exclusive in the timed model but not
/// under any non-trivial clock skew).
fn mutex_guard(cfg: &ScenarioConfig) -> Duration {
    if cfg.canary == Some(CanaryKind::MutexGuardZero) {
        Duration::ZERO
    } else {
        ns(cfg.eps_ns)
    }
}

/// Runs one mutual-exclusion case.
///
/// # Panics
///
/// Panics if the config is not a mutex-family config.
pub fn run_mutex(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<MutexAction> {
    run_mutex_with(cfg, plan, seed, 1)
}

pub(crate) fn run_mutex_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<MutexAction> {
    assert!(matches!(
        cfg.kind,
        ScenarioKind::Mutex | ScenarioKind::MutexContended
    ));
    let mut built = build_mutex(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_mutex(cfg, &run, shards);
    finish_case(&built, violations, run)
}

/// Builds the mutual-exclusion case's engine (without running it): `n`
/// clock nodes, each running `C(SlotUser, ε)` against a plan-scripted
/// clock.
pub(crate) fn build_mutex(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<MutexAction> {
    let eps = ns(cfg.eps_ns);
    let slot = ns(cfg.period_ns);
    let guard = mutex_guard(cfg);
    let n = cfg.nodes as usize;
    let rounds = u64::from(cfg.ops_per_node);
    let hub = MetricsHub::new();
    let mut builder = Engine::builder();
    let mut handles = Vec::new();
    for i in 0..cfg.nodes {
        let clock = scripted_clock_for(plan, i);
        handles.push(clock.rejections());
        builder = builder.clock_node(ClockNode::new(format!("n{i}"), eps, clock).with(
            ClockSim::new(SlotUser::guarded(
                NodeId(i as usize),
                n,
                slot,
                guard,
                rounds,
            )),
        ));
    }
    let engine = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: Vec::new(),
        rejections: handles,
    }
}

/// Judges a mutex run against the scenario's oracles.
pub(crate) fn judge_mutex(
    cfg: &ScenarioConfig,
    run: &Result<Run<MutexAction>, String>,
    shards: usize,
) -> JudgeVerdicts {
    judge_sharded(&mutex_oracles(cfg), run, shards)
}

/// Interval-based mutual exclusion over real time: occupancies of
/// *different* nodes must not strictly overlap (touching at a boundary
/// instant is allowed — with `guard = ε` the transformed schedule is
/// exactly edge-to-edge in the worst case).
fn check_mutual_exclusion(exec: &Execution<MutexAction>, n: usize) -> Verdict {
    let mut open: Vec<Option<(u64, Time)>> = vec![None; n];
    let mut intervals: Vec<(usize, u64, Time, Time)> = Vec::new();
    let mut end = Time::ZERO;
    for (i, e) in exec.events().iter().enumerate() {
        end = end.max(e.now);
        let SysAction::App(op) = &e.action else {
            continue;
        };
        match op {
            MutexOp::Enter { node, round } => {
                if open[node.0].is_some() {
                    return Verdict::violated(format!(
                        "event {i}: {node} re-entered while already inside"
                    ));
                }
                open[node.0] = Some((*round, e.now));
            }
            MutexOp::Exit { node, round } => match open[node.0].take() {
                Some((r, entered)) if r == *round => {
                    intervals.push((node.0, r, entered, e.now));
                }
                other => {
                    return Verdict::violated(format!(
                        "event {i}: {node} exited round {round} without a matching entry \
                         (open: {other:?})"
                    ))
                }
            },
        }
    }
    for (node, slot) in open.iter().enumerate() {
        if let Some((r, entered)) = slot {
            intervals.push((node, *r, *entered, end));
        }
    }
    for (i, a) in intervals.iter().enumerate() {
        for b in &intervals[i + 1..] {
            if a.0 == b.0 {
                continue;
            }
            let start = a.2.max(b.2);
            let finish = a.3.min(b.3);
            if start < finish {
                return Verdict::violated(format!(
                    "node {} round {} [{}, {}] overlaps node {} round {} [{}, {}]",
                    a.0, a.1, a.2, a.3, b.0, b.1, b.2, b.3
                ));
            }
        }
    }
    Verdict::Holds
}

/// The mutex scenario's oracle set.
#[must_use]
pub fn mutex_oracles(cfg: &ScenarioConfig) -> Vec<Box<dyn Oracle<MutexAction>>> {
    let n = cfg.nodes as usize;
    let rounds = u64::from(cfg.ops_per_node);
    let exclusion = FnOracle::new("mutual exclusion", move |exec: &Execution<MutexAction>| {
        check_mutual_exclusion(exec, n)
    });
    let liveness = FnOracle::new("mutex liveness", move |exec: &Execution<MutexAction>| {
        let mut enters = vec![0u64; n];
        for e in exec.events() {
            if let SysAction::App(MutexOp::Enter { node, .. }) = &e.action {
                enters[node.0] += 1;
            }
        }
        for (node, &count) in enters.iter().enumerate() {
            if count != rounds {
                return Verdict::violated(format!(
                    "node {node} entered {count} times, expected {rounds}"
                ));
            }
        }
        Verdict::Holds
    });
    let mut oracles: Vec<Box<dyn Oracle<MutexAction>>> = vec![
        Box::new(exclusion),
        Box::new(liveness),
        Box::new(CEpsOracle::new(ns(cfg.eps_ns))),
    ];
    let slot = ns(cfg.period_ns);
    let guard = mutex_guard(cfg);
    for i in 0..cfg.nodes {
        oracles.push(Box::new(FnOracle::new(
            format!("replay(slot-user {i})"),
            move |exec: &Execution<MutexAction>| match replay_clock(
                ClockSim::new(SlotUser::guarded(
                    NodeId(i as usize),
                    n,
                    slot,
                    guard,
                    rounds,
                )),
                exec,
            ) {
                Ok(_) => Verdict::Holds,
                Err(e) => Verdict::violated(format!("Lemma 2.1 clock replay failed: {e}")),
            },
        )));
    }
    oracles
}

/// Runs one register (`D_C`) case. Returns the run, oracle verdicts, and
/// clamped clock-request count.
///
/// # Panics
///
/// Panics if the config is not a register-family config.
pub fn run_register(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<RegAction> {
    run_register_with(cfg, plan, seed, 1)
}

pub(crate) fn run_register_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<RegAction> {
    assert!(matches!(
        cfg.kind,
        ScenarioKind::Register | ScenarioKind::RegisterTriple
    ));
    let mut built = build_register(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_register(cfg, seed, &run, shards);
    finish_case(&built, violations, run)
}

/// The register/counter parameter set, with the sign-flip canary hook:
/// the mutant skips the `2ε` read wait (`read_slack = 0`), the exact
/// slack Lemma 6.4 needs — linearizability then breaks under admissible
/// clock skew.
fn register_params(cfg: &ScenarioConfig, topo: &Topology, canary: CanaryKind) -> RegisterParams {
    let mut params = RegisterParams::for_clock_model(
        topo,
        cfg.bounds(),
        ns(cfg.eps_ns),
        ns(cfg.d2_ns / 2),
        Duration::from_micros(100),
    );
    if cfg.canary == Some(canary) {
        params.read_slack = Duration::ZERO;
    }
    params
}

/// The closed-loop workloads' think-time bounds.
fn think_bounds() -> DelayBounds {
    DelayBounds::new(Duration::from_millis(1), Duration::from_millis(6)).expect("valid")
}

/// The clock strategies a `D_C` scenario deploys: plan-scripted clocks —
/// except under a sign-flip canary, where nodes 0 and 1 run at fixed
/// *admissible* worst-case offsets (`+ε` / `−ε`). The skew itself is
/// legal (`C_ε` holds throughout), but the mutant's missing `2ε` read
/// slack turns any node-1 read racing just behind a node-0 write ack
/// into a stale, non-linearizable return — the paper's own argument for
/// why Algorithm L does not survive the clock transformation
/// (Section 6.2).
fn dc_strategies(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    sign_flip: CanaryKind,
    handles: &mut Vec<Rc<Cell<u64>>>,
) -> Vec<Box<dyn psync_executor::ClockStrategy>> {
    let eps = ns(cfg.eps_ns);
    (0..cfg.nodes)
        .map(|i| {
            if cfg.canary == Some(sign_flip) && i < 2 {
                let offset = if i == 0 { eps } else { -eps };
                return Box::new(OffsetClock::new(offset, eps))
                    as Box<dyn psync_executor::ClockStrategy>;
            }
            let clock = scripted_clock_for(plan, i);
            handles.push(clock.rejections());
            Box::new(clock) as Box<dyn psync_executor::ClockStrategy>
        })
        .collect()
}

/// Builds the register (`D_C`) case's engine (without running it).
pub(crate) fn build_register(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<RegAction> {
    let hub = MetricsHub::new();
    let topo = Topology::complete(cfg.nodes as usize);
    let physical = cfg.bounds();
    let eps = ns(cfg.eps_ns);
    let params = register_params(cfg, &topo, CanaryKind::RegisterSignFlip);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let mut handles = Vec::new();
    let strategies = dc_strategies(cfg, plan, CanaryKind::RegisterSignFlip, &mut handles);
    let plan_for_policy = plan.clone();
    let workload = ClosedLoopWorkload::new(&topo, seed, think_bounds(), cfg.ops_per_node);
    let engine = build_dc(&topo, physical, eps, algorithms, strategies, move |_, _| {
        Box::new(PlanDelayPolicy::new(&plan_for_policy, seed))
    })
    .timed(workload)
    .observer(hub.engine_observer().without_checkpoint_counters())
    .scheduler(BiasedScheduler::new(plan, seed ^ 0x5C4E_D01E))
    .horizon(at_ns(cfg.horizon_ns))
    .max_events(CASE_MAX_EVENTS)
    .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: Vec::new(),
        rejections: handles,
    }
}

/// Judges a register run: liveness (the closed loop must drain before the
/// horizon) plus the oracle set.
pub(crate) fn judge_register(
    cfg: &ScenarioConfig,
    seed: u64,
    run: &Result<Run<RegAction>, String>,
    shards: usize,
) -> JudgeVerdicts {
    let (oracle_violations, metrics) = judge_sharded(&register_oracles(cfg, seed), run, shards);
    match run {
        Ok(run) => {
            let mut violations = Vec::new();
            if run.stop != StopReason::Quiescent {
                violations.push((
                    "liveness".to_string(),
                    format!("workload did not finish by the horizon ({:?})", run.stop),
                ));
            }
            violations.extend(oracle_violations);
            (violations, metrics)
        }
        Err(_) => (oracle_violations, metrics),
    }
}

/// The register scenario's oracle set. Linearizability is the *same*
/// [`LinearizableRegister`] problem instance the conformance sweeps use,
/// adapted through [`ProblemOracle`] — the shared-checker seam the
/// explorer was built around.
#[must_use]
pub fn register_oracles(cfg: &ScenarioConfig, seed: u64) -> Vec<Box<dyn Oracle<RegAction>>> {
    let n = cfg.nodes as usize;
    let ops = cfg.ops_per_node;
    vec![
        Box::new(ProblemOracle::new(
            LinearizableRegister::new(n, Value::INITIAL),
            |e: &Execution<RegAction>| app_trace(e),
        )),
        Box::new(CEpsOracle::new(ns(cfg.eps_ns))),
        Box::new(FnOracle::new(
            "replay(workload)",
            move |exec: &Execution<RegAction>| {
                // ClosedLoopWorkload is not Clone; rebuild the identical
                // component from the artifact inputs for each replay.
                let workload =
                    ClosedLoopWorkload::new(&Topology::complete(n), seed, think_bounds(), ops);
                match replay_timed(workload, exec) {
                    Ok(_) => Verdict::Holds,
                    Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
                }
            },
        )),
    ]
}

/// The counter workload's update payloads: powers of ten per node, so
/// any lost or double-counted increment is visible in a query's digits.
fn counter_update(node: NodeId, _op: u32) -> i64 {
    10i64.pow(node.0 as u32)
}

/// Runs one generalized-object counter case.
///
/// # Panics
///
/// Panics if the config is not a counter config.
pub fn run_counter(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> Judged<ObjAction<Counter>> {
    run_counter_with(cfg, plan, seed, 1)
}

pub(crate) fn run_counter_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<ObjAction<Counter>> {
    assert_eq!(cfg.kind, ScenarioKind::Counter);
    let mut built = build_counter(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    let violations = judge_counter(cfg, seed, &run, shards);
    finish_case(&built, violations, run)
}

/// Builds the counter (`AlgorithmSObj<Counter>` in `D_C`) case's engine
/// (without running it).
pub(crate) fn build_counter(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<ObjAction<Counter>> {
    let hub = MetricsHub::new();
    let topo = Topology::complete(cfg.nodes as usize);
    let physical = cfg.bounds();
    let eps = ns(cfg.eps_ns);
    let params = register_params(cfg, &topo, CanaryKind::CounterSignFlip);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmSObj::new(i, Counter, params.clone())))
        .collect();
    let mut handles = Vec::new();
    let strategies = dc_strategies(cfg, plan, CanaryKind::CounterSignFlip, &mut handles);
    let plan_for_policy = plan.clone();
    let workload = ObjWorkload::<Counter>::new(
        &topo,
        seed,
        think_bounds(),
        cfg.ops_per_node,
        counter_update,
    );
    let engine = build_dc(&topo, physical, eps, algorithms, strategies, move |_, _| {
        Box::new(PlanDelayPolicy::new(&plan_for_policy, seed))
    })
    .timed(workload)
    .observer(hub.engine_observer().without_checkpoint_counters())
    .scheduler(BiasedScheduler::new(plan, seed ^ 0x5C4E_D01E))
    .horizon(at_ns(cfg.horizon_ns))
    .max_events(CASE_MAX_EVENTS)
    .build();
    BuiltCase {
        engine,
        hub,
        fault_stats: Vec::new(),
        rejections: handles,
    }
}

/// Judges a counter run: liveness plus the oracle set.
pub(crate) fn judge_counter(
    cfg: &ScenarioConfig,
    seed: u64,
    run: &Result<Run<ObjAction<Counter>>, String>,
    shards: usize,
) -> JudgeVerdicts {
    let (oracle_violations, metrics) = judge_sharded(&counter_oracles(cfg, seed), run, shards);
    match run {
        Ok(run) => {
            let mut violations = Vec::new();
            if run.stop != StopReason::Quiescent {
                violations.push((
                    "liveness".to_string(),
                    format!("workload did not finish by the horizon ({:?})", run.stop),
                ));
            }
            violations.extend(oracle_violations);
            (violations, metrics)
        }
        Err(_) => (oracle_violations, metrics),
    }
}

/// The counter scenario's oracle set: generalized-object
/// linearizability, `C_ε`, and a workload replay.
#[must_use]
pub fn counter_oracles(
    cfg: &ScenarioConfig,
    seed: u64,
) -> Vec<Box<dyn Oracle<ObjAction<Counter>>>> {
    let n = cfg.nodes as usize;
    let ops = cfg.ops_per_node;
    vec![
        Box::new(ObjectLinearizableOracle::new(Counter, n)),
        Box::new(CEpsOracle::new(ns(cfg.eps_ns))),
        Box::new(FnOracle::new(
            "replay(workload)",
            move |exec: &Execution<ObjAction<Counter>>| {
                let workload = ObjWorkload::<Counter>::new(
                    &Topology::complete(n),
                    seed,
                    think_bounds(),
                    ops,
                    counter_update,
                );
                match replay_timed(workload, exec) {
                    Ok(_) => Verdict::Holds,
                    Err(e) => Verdict::violated(format!("Lemma 2.1 replay failed: {e}")),
                }
            },
        )),
    ]
}

/// The probe-sync parameter set for node `i`, with the skew-burst
/// canary hook: the mutant holds every echo back by
/// `2(d₂ − d₁) + 1 ms` — an in-envelope component bug (no channel ever
/// exceeds `d₂`) that turns every offset sample contradictory, so the
/// node certifies nothing better than the `2ε` prior and never covers
/// its peers. Only the ε̂-parameterized `C_ε` oracle can see that.
fn sync_params(cfg: &ScenarioConfig, i: u32) -> SyncParams {
    let echo_hold = if cfg.canary == Some(CanaryKind::SyncSkewBurst) {
        ns(2 * (cfg.d2_ns - cfg.d1_ns)) + Duration::from_millis(1)
    } else {
        Duration::ZERO
    };
    let grace = if cfg.kind == ScenarioKind::SyncRounds {
        RoundSync::grace_for_drops(u64::from(cfg.max_drops))
    } else {
        1
    };
    SyncParams {
        me: NodeId(i as usize),
        peers: (0..cfg.nodes)
            .filter(|&j| j != i)
            .map(|j| NodeId(j as usize))
            .collect(),
        d1: ns(cfg.d1_ns),
        d2: ns(cfg.d2_ns),
        eps: ns(cfg.eps_ns),
        rho_ppm: rho_max(cfg.nodes as usize, cfg.drift_ppm),
        period: ns(cfg.period_ns),
        burst: cfg.ops_per_node,
        grace,
        echo_hold,
    }
}

/// Builds the sync case's engine (without running it): `n` drifting
/// clock nodes running [`ProbeSync`] (or [`RoundSync`] for the
/// fault-resistant variant), wired over per-edge [`FaultChannel`]s that
/// the plan may drop, duplicate, or spike inside `[d₁, d₂]`.
pub(crate) fn build_sync(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
) -> BuiltCase<SyncAction> {
    let eps = ns(cfg.eps_ns);
    let declared = cfg.bounds();
    let actual = DelayBounds::new(declared.min(), declared.max() + ns(cfg.bug_extra_ns))
        .expect("widened bounds stay ordered");
    let rates = drift_rates(cfg.nodes as usize, cfg.drift_ppm);
    let hub = MetricsHub::new();
    let mut builder = Engine::builder();
    for i in 0..cfg.nodes {
        let node = ClockNode::new(format!("n{i}"), eps, DriftClock::new(rates[i as usize]));
        builder = if cfg.kind == ScenarioKind::SyncRounds {
            builder.clock_node(node.with(RoundSync::new(sync_params(cfg, i))))
        } else {
            builder.clock_node(node.with(ProbeSync::new(sync_params(cfg, i))))
        };
    }
    let mut fault_stats = Vec::new();
    for i in 0..cfg.nodes {
        for j in 0..cfg.nodes {
            if i == j {
                continue;
            }
            let fault = PlanChannelFault::new(plan, i, j, seed, declared, ns(cfg.bug_extra_ns));
            let channel = FaultChannel::<SyncMsg, SyncOp>::new(
                NodeId(i as usize),
                NodeId(j as usize),
                actual,
                MaxDelay,
                fault,
            );
            fault_stats.push(channel.stats());
            builder = builder.timed(channel);
        }
    }
    let engine = builder
        .observer(hub.engine_observer().without_checkpoint_counters())
        .observer(hub.channel_delay_observer())
        .scheduler(BiasedScheduler::new(plan, seed))
        .horizon(at_ns(cfg.horizon_ns))
        .max_events(CASE_MAX_EVENTS)
        .build();
    BuiltCase {
        engine,
        hub,
        fault_stats,
        rejections: Vec::new(),
    }
}

/// Judges a sync run against the scenario's oracles.
pub(crate) fn judge_sync(
    cfg: &ScenarioConfig,
    run: &Result<Run<SyncAction>, String>,
    shards: usize,
) -> JudgeVerdicts {
    judge_sharded(&sync_oracles(cfg), run, shards)
}

/// The sync scenario's oracle set: the ε̂-parameterized `C_ε`
/// (certificate soundness and achievement of the predicted bound — the
/// primary oracle), the constant-ε `C_ε` probe, and a Lemma 2.1 clock
/// replay of every sync component. The per-edge FIFO oracle is
/// deliberately omitted: probe bursts and held echoes are handed to
/// independently delayed channels in the same instant, so cross-message
/// reordering is legitimate.
#[must_use]
pub fn sync_oracles(cfg: &ScenarioConfig) -> Vec<Box<dyn Oracle<SyncAction>>> {
    let bound = predicted_eps_hat(
        ns(cfg.d1_ns),
        ns(cfg.d2_ns),
        rho_max(cfg.nodes as usize, cfg.drift_ppm),
        at_ns(cfg.horizon_ns),
    );
    let mut oracles: Vec<Box<dyn Oracle<SyncAction>>> = vec![
        Box::new(EpsHatOracle::new(cfg.nodes as usize, bound)),
        Box::new(CEpsOracle::new(ns(cfg.eps_ns))),
    ];
    for i in 0..cfg.nodes {
        let cfg = cfg.clone();
        let rounds = cfg.kind == ScenarioKind::SyncRounds;
        oracles.push(Box::new(FnOracle::new(
            format!("replay(sync {i})"),
            move |exec: &Execution<SyncAction>| {
                let result = if rounds {
                    replay_clock(RoundSync::new(sync_params(&cfg, i)), exec).map(|_| ())
                } else {
                    replay_clock(ProbeSync::new(sync_params(&cfg, i)), exec).map(|_| ())
                };
                match result {
                    Ok(()) => Verdict::Holds,
                    Err(e) => Verdict::violated(format!("Lemma 2.1 clock replay failed: {e}")),
                }
            },
        )));
    }
    oracles
}

/// Runs one clock-synchronization case and publishes each node's final
/// certified ε̂ as a `sync.eps_hat_ns.n{i}` gauge (campaign merging
/// keeps the worst level).
///
/// # Panics
///
/// Panics if the config is not a sync-family config.
pub fn run_sync(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> Judged<SyncAction> {
    run_sync_with(cfg, plan, seed, 1)
}

pub(crate) fn run_sync_with(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Judged<SyncAction> {
    assert!(cfg.kind.is_sync());
    let mut built = build_sync(cfg, plan, seed);
    let run = built.engine.run().map_err(|e| e.to_string());
    if let Ok(run) = &run {
        let measured = MeasuredEps::from_execution(&run.execution);
        for i in 0..cfg.nodes {
            let node = NodeId(i as usize);
            if let Some(cert) = measured.last_for(node) {
                built
                    .hub
                    .set_gauge(&format!("sync.eps_hat_ns.{node}"), cert.eps_hat.as_nanos());
            }
        }
    }
    let violations = judge_sync(cfg, &run, shards);
    finish_case(&built, violations, run)
}

/// Collapses a typed [`Judged`] result into the kind-erased
/// [`CaseOutcome`] the exploration loop stores and compares.
pub(crate) fn outcome_of<A: Action>(judged: Judged<A>) -> CaseOutcome {
    let (events, fp) = match &judged.run {
        Ok(r) => (r.execution.len(), fingerprint(&r.execution)),
        Err(_) => (0, 0),
    };
    CaseOutcome {
        violations: judged.violations,
        events,
        rejected_clock_requests: judged.rejected_clock_requests,
        fingerprint: fp,
        metrics: judged.metrics,
    }
}

/// Runs one case of any scenario kind and judges it sequentially — the
/// generic entry point `replay_artifact` and one-off callers share.
/// Equivalent to [`run_case_sharded`] with one shard (every outcome is
/// shard-count invariant, so replays need not know the campaign's
/// monitor width).
#[must_use]
pub fn run_case(cfg: &ScenarioConfig, plan: &FaultPlan, seed: u64) -> CaseOutcome {
    run_case_sharded(cfg, plan, seed, 1)
}

/// Runs one case of any scenario kind and judges it on `monitor_shards`
/// judge threads. The shard count is a pure performance knob threaded
/// down from [`CampaignConfig::monitor_shards`](crate::CampaignConfig);
/// the outcome is bit-identical for every value.
#[must_use]
pub fn run_case_sharded(
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
    seed: u64,
    monitor_shards: usize,
) -> CaseOutcome {
    let shards = monitor_shards.max(1);
    match cfg.kind {
        ScenarioKind::HeartbeatRestart => {
            outcome_of(run_heartbeat_restart_with(cfg, plan, seed, shards))
        }
        ScenarioKind::Heartbeat
        | ScenarioKind::HeartbeatCrash
        | ScenarioKind::HeartbeatGray
        | ScenarioKind::HeartbeatBidi
        | ScenarioKind::Relay
        | ScenarioKind::Partition => outcome_of(run_heartbeat_with(cfg, plan, seed, shards)),
        ScenarioKind::ClockFleet | ScenarioKind::ClockFleetLarge => {
            outcome_of(run_clockfleet_with(cfg, plan, seed, shards))
        }
        ScenarioKind::Mutex | ScenarioKind::MutexContended => {
            outcome_of(run_mutex_with(cfg, plan, seed, shards))
        }
        ScenarioKind::Register | ScenarioKind::RegisterTriple => {
            outcome_of(run_register_with(cfg, plan, seed, shards))
        }
        ScenarioKind::Counter => outcome_of(run_counter_with(cfg, plan, seed, shards)),
        ScenarioKind::SyncProbe | ScenarioKind::SyncRounds => {
            outcome_of(run_sync_with(cfg, plan, seed, shards))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cases_pass_all_oracles_in_every_scenario() {
        for kind in ScenarioKind::all() {
            let cfg = ScenarioConfig::default_for(kind);
            let out = run_case(&cfg, &FaultPlan::empty(), 1);
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                kind.name(),
                out.violations
            );
            assert!(out.events > 0, "{}: no events", kind.name());
        }
    }

    #[test]
    fn clean_clockfleet_case_rejects_no_clock_requests() {
        let cfg = ScenarioConfig::clockfleet_default();
        let out = run_case(&cfg, &FaultPlan::empty(), 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.rejected_clock_requests, 0);
    }

    #[test]
    fn crash_is_detected_within_the_bound() {
        let mut cfg = ScenarioConfig::heartbeat_default();
        cfg.crash_at_ns = Some(150_000_000);
        let out = run_case(&cfg, &FaultPlan::empty(), 3);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    /// Lemma 2.1 at the checkpoint seam: the restart scenario's outcome —
    /// violations, event count, fingerprint, metrics — is bit-identical
    /// to an uninterrupted run of the same system.
    #[test]
    fn restart_run_matches_the_uninterrupted_run() {
        let restart = ScenarioConfig::default_for(ScenarioKind::HeartbeatRestart);
        let mut straight = restart.clone();
        straight.kind = ScenarioKind::HeartbeatCrash;
        straight.restart_at_ns = None;
        for seed in [1u64, 7, 0x0C1A_551C] {
            let a = run_case(&restart, &FaultPlan::empty(), seed);
            let b = run_case(&straight, &FaultPlan::empty(), seed);
            assert_eq!(a, b, "seed {seed}: restart diverged from straight run");
        }
    }

    #[test]
    fn scenario_names_round_trip() {
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(ScenarioKind::from_name("nope").is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        for kind in ScenarioKind::all() {
            let cfg = ScenarioConfig::default_for(kind);
            let back = ScenarioConfig::from_json(&cfg.to_json()).unwrap();
            assert_eq!(cfg, back);
        }
        let mut with_canary = ScenarioConfig::heartbeat_default();
        with_canary.canary = Some(crate::canary::CanaryKind::DuplicateDelivery);
        assert_eq!(
            ScenarioConfig::from_json(&with_canary.to_json()).unwrap(),
            with_canary
        );
    }

    /// Pre-catalog artifacts carry neither `restart_at_ns` nor `canary`;
    /// their configs must still parse (as `None`).
    #[test]
    fn config_json_tolerates_missing_new_fields() {
        let cfg = ScenarioConfig::heartbeat_default();
        let Json::Obj(mut fields) = cfg.to_json() else {
            panic!("config JSON is an object")
        };
        fields.retain(|(k, _)| k != "restart_at_ns" && k != "canary" && k != "drift_ppm");
        let back = ScenarioConfig::from_json(&Json::Obj(fields)).unwrap();
        assert_eq!(back, cfg);
    }
}
