//! Bridges from a validated [`FaultPlan`] to the engine's fault hooks:
//! channel dispositions, delay overrides, scripted clocks and scheduler
//! bias. Everything here is a pure function of the plan and the case
//! seed, which is what makes artifacts replay bit-identically.

use std::collections::BTreeSet;

use psync_executor::{RandomScheduler, Scheduler, SchedulerCheckpoint, ScriptedClock};
use psync_net::{ChannelFault, DelayPolicy, MsgId, NodeId};
use psync_time::{DelayBounds, Duration, Time};

use crate::plan::{at_ns, ns, FaultEntry, FaultPlan};

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-sender message counter a plan entry targets: the low 32 bits
/// of a [`MsgId`] built by `MsgId::from_parts(node, counter)`.
#[must_use]
pub fn seq_of(id: MsgId) -> u32 {
    (id.0 & 0xffff_ffff) as u32
}

/// A [`ChannelFault`] executing one edge's slice of a fault plan.
///
/// Every message gets an explicit disposition (the base delay is computed
/// here, seeded and uniform over the *declared* bounds), so a seeded bug
/// widening the channel's internal bounds cannot leak extra latitude into
/// unfaulted messages.
pub struct PlanChannelFault {
    seed: u64,
    declared: DelayBounds,
    drops: Vec<u32>,
    dups: Vec<(u32, Duration)>,
    spikes: Vec<(u32, Duration)>,
    /// The seeded bug (`SeededBug::LateDelivery`): a spike requesting
    /// exactly `d₂` is stretched to `d₂ + late_extra`. Zero = no bug.
    late_extra: Duration,
    /// Gray failure: `(cycle, slow)` — messages *sent* during the first
    /// `slow` of every `cycle` of real time get the worst admissible delay
    /// `d₂` instead of the seeded uniform one. `None` = healthy channel.
    gray: Option<(Duration, Duration)>,
    /// The duplicate-delivery canary: every message is delivered twice
    /// (base delay + a copy at `d₂`), regardless of the plan.
    dup_all: bool,
}

impl PlanChannelFault {
    /// Collects the plan's entries for edge `src → dst`. `declared` is
    /// the admissibility envelope's `[d₁, d₂]`; `late_extra` non-zero
    /// plants the late-delivery bug (the channel must then be built with
    /// bounds widened by the same amount, or its own assert fires).
    #[must_use]
    pub fn new(
        plan: &FaultPlan,
        src: u32,
        dst: u32,
        seed: u64,
        declared: DelayBounds,
        late_extra: Duration,
    ) -> Self {
        let mut fault = PlanChannelFault {
            seed,
            declared,
            drops: Vec::new(),
            dups: Vec::new(),
            spikes: Vec::new(),
            late_extra,
            gray: None,
            dup_all: false,
        };
        for entry in &plan.entries {
            match *entry {
                FaultEntry::Drop {
                    src: s,
                    dst: d,
                    seq,
                } if (s, d) == (src, dst) => {
                    fault.drops.push(seq);
                }
                FaultEntry::Duplicate {
                    src: s,
                    dst: d,
                    seq,
                    delay_ns,
                } if (s, d) == (src, dst) => {
                    fault.dups.push((seq, ns(delay_ns)));
                }
                FaultEntry::DelaySpike {
                    src: s,
                    dst: d,
                    seq,
                    delay_ns,
                } if (s, d) == (src, dst) => {
                    fault.spikes.push((seq, ns(delay_ns)));
                }
                _ => {}
            }
        }
        fault
    }

    /// Turns the channel gray: messages sent during the first `slow` of
    /// every `cycle` of real time are pinned to the worst admissible delay
    /// `d₂`. Still inside the envelope — a gray channel is slow, not
    /// broken — so every oracle must keep holding.
    #[must_use]
    pub fn with_gray_windows(mut self, cycle: Duration, slow: Duration) -> Self {
        assert!(
            !cycle.is_zero() && slow <= cycle,
            "gray windows need 0 < slow <= cycle"
        );
        self.gray = Some((cycle, slow));
        self
    }

    /// Plants the duplicate-delivery canary: every message is delivered
    /// twice (base delay plus a copy at `d₂`), regardless of the plan.
    #[must_use]
    pub fn with_duplicate_all(mut self) -> Self {
        self.dup_all = true;
        self
    }

    /// Seeded base delay, uniform over the declared bounds — same shape
    /// as `SeededDelay`, computed here so the declared (not the possibly
    /// widened internal) bounds govern unfaulted messages. Messages sent
    /// inside a gray window are pinned to `d₂` instead.
    fn base_delay(&self, src: NodeId, dst: NodeId, id: MsgId, sent_at: Time) -> Duration {
        if let Some((cycle, slow)) = self.gray {
            let phase = (sent_at - Time::ZERO)
                .as_nanos()
                .rem_euclid(cycle.as_nanos());
            if phase < slow.as_nanos() {
                return self.declared.max();
            }
        }
        let width = self.declared.width().as_nanos();
        if width == 0 {
            return self.declared.min();
        }
        let h = splitmix64(self.seed ^ splitmix64(id.0) ^ ((src.0 as u64) << 48) ^ (dst.0 as u64));
        self.declared.min() + Duration::from_nanos((h % (width as u64 + 1)) as i64)
    }
}

impl ChannelFault for PlanChannelFault {
    fn deliveries(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        sent_at: Time,
        _bounds: DelayBounds,
    ) -> Option<Vec<Duration>> {
        let seq = seq_of(id);
        if self.drops.contains(&seq) {
            return Some(vec![]);
        }
        if let Some((_, d)) = self.spikes.iter().find(|(s, _)| *s == seq) {
            // The seeded bug: the channel lets a boundary spike through
            // at d₂ + extra.
            let d = if !self.late_extra.is_zero() && *d == self.declared.max() {
                *d + self.late_extra
            } else {
                *d
            };
            return Some(vec![d]);
        }
        if let Some((_, d)) = self.dups.iter().find(|(s, _)| *s == seq) {
            return Some(vec![self.base_delay(src, dst, id, sent_at), *d]);
        }
        if self.dup_all {
            return Some(vec![
                self.base_delay(src, dst, id, sent_at),
                self.declared.max(),
            ]);
        }
        Some(vec![self.base_delay(src, dst, id, sent_at)])
    }
}

/// A [`DelayPolicy`] executing a plan's delay spikes on systems whose
/// channels take a policy rather than a [`ChannelFault`] (the clock-model
/// `ClockChannel`s assembled by `build_dc`). Unfaulted messages get the
/// seeded uniform delay.
pub struct PlanDelayPolicy {
    seed: u64,
    spikes: Vec<(u32, u32, u32, Duration)>,
}

impl PlanDelayPolicy {
    /// Collects every delay-spike entry of the plan (all edges).
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        let spikes = plan
            .entries
            .iter()
            .filter_map(|e| match *e {
                FaultEntry::DelaySpike {
                    src,
                    dst,
                    seq,
                    delay_ns,
                } => Some((src, dst, seq, ns(delay_ns))),
                _ => None,
            })
            .collect();
        PlanDelayPolicy { seed, spikes }
    }
}

impl DelayPolicy for PlanDelayPolicy {
    fn delay(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        _sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        let seq = seq_of(id);
        if let Some((_, _, _, d)) = self
            .spikes
            .iter()
            .find(|(s, d2, q, _)| (*s as usize, *d2 as usize, *q) == (src.0, dst.0, seq))
        {
            // Validated against the same bounds the channel asserts.
            return (*d).max(bounds.min()).min(bounds.max());
        }
        let width = bounds.width().as_nanos();
        if width == 0 {
            return bounds.min();
        }
        let h = splitmix64(self.seed ^ splitmix64(id.0) ^ ((src.0 as u64) << 48) ^ (dst.0 as u64));
        bounds.min() + Duration::from_nanos((h % (width as u64 + 1)) as i64)
    }
}

/// A seeded scheduler whose `pick`-numbered decisions listed in the plan
/// are flipped to the last candidate — the plan's interleaving-bias knob.
pub struct BiasedScheduler {
    inner: RandomScheduler,
    flips: BTreeSet<u64>,
    count: u64,
}

impl BiasedScheduler {
    /// Wraps a seeded random scheduler with the plan's bias entries.
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        let flips = plan
            .entries
            .iter()
            .filter_map(|e| match *e {
                FaultEntry::SchedulerBias { pick } => Some(pick),
                _ => None,
            })
            .collect();
        BiasedScheduler {
            inner: RandomScheduler::new(seed),
            flips,
            count: 0,
        }
    }
}

impl<A> Scheduler<A> for BiasedScheduler {
    fn pick(&mut self, now: Time, candidates: &[A]) -> usize {
        let idx = if self.flips.contains(&self.count) {
            candidates.len() - 1
        } else {
            self.inner.pick(now, candidates)
        };
        self.count += 1;
        idx
    }

    fn checkpoint(&self) -> SchedulerCheckpoint {
        // The flip set is rebuilt from the plan on construction; only the
        // RNG position and the pick counter are run state.
        SchedulerCheckpoint::of(&(self.inner.clone(), self.count))
    }

    fn restore(&mut self, checkpoint: &SchedulerCheckpoint) {
        if let Some((inner, count)) = checkpoint.state::<(RandomScheduler, u64)>() {
            self.inner = inner.clone();
            self.count = *count;
        }
    }
}

/// Builds node `node`'s [`ScriptedClock`] from the plan's clock entries:
/// skews set the requested offset, backward jumps subtract from it. The
/// returned clock's rejection counter records every attempt the C1–C4
/// guard had to clamp.
#[must_use]
pub fn scripted_clock_for(plan: &FaultPlan, node: u32) -> ScriptedClock {
    let mut changes: Vec<(i64, i64, bool)> = Vec::new(); // (at, value, is_jump)
    for entry in &plan.entries {
        match *entry {
            FaultEntry::ClockSkew {
                node: n,
                at_ns,
                offset_ns,
            } if n == node => changes.push((at_ns, offset_ns, false)),
            FaultEntry::ClockBackwardJump {
                node: n,
                at_ns,
                jump_ns,
            } if n == node => changes.push((at_ns, jump_ns, true)),
            _ => {}
        }
    }
    changes.sort_by_key(|(at, _, _)| *at);
    let mut segments = Vec::new();
    let mut offset = 0i64;
    for (at, value, is_jump) in changes {
        offset = if is_jump { offset - value } else { value };
        segments.push((at_ns(at), ns(offset)));
    }
    ScriptedClock::new(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> DelayBounds {
        DelayBounds::new(Duration::from_millis(1), Duration::from_millis(4)).unwrap()
    }

    #[test]
    fn plan_fault_routes_dispositions_by_seq() {
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 2,
                },
                FaultEntry::Duplicate {
                    src: 0,
                    dst: 1,
                    seq: 3,
                    delay_ns: 4_000_000,
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 4,
                    delay_ns: 1_000_000,
                },
                // Other edge: must not leak into 0→1.
                FaultEntry::Drop {
                    src: 1,
                    dst: 0,
                    seq: 5,
                },
            ],
        };
        let f = PlanChannelFault::new(&plan, 0, 1, 7, bounds(), Duration::ZERO);
        let get = |seq: u32| {
            f.deliveries(
                NodeId(0),
                NodeId(1),
                MsgId::from_parts(NodeId(0), seq),
                Time::ZERO,
                bounds(),
            )
            .unwrap()
        };
        assert!(get(2).is_empty());
        assert_eq!(get(3).len(), 2);
        assert_eq!(get(4), vec![Duration::from_millis(1)]);
        assert_eq!(get(5).len(), 1, "other edge's drop must not apply");
        for d in get(0) {
            assert!(bounds().contains(d));
        }
    }

    #[test]
    fn late_bug_only_stretches_boundary_spikes() {
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 1,
                    delay_ns: 4_000_000, // exactly d₂
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 2,
                    delay_ns: 2_000_000, // interior
                },
            ],
        };
        let extra = Duration::NANOSECOND;
        let f = PlanChannelFault::new(&plan, 0, 1, 7, bounds(), extra);
        let get = |seq: u32| {
            f.deliveries(
                NodeId(0),
                NodeId(1),
                MsgId::from_parts(NodeId(0), seq),
                Time::ZERO,
                bounds(),
            )
            .unwrap()
        };
        assert_eq!(get(1), vec![Duration::from_millis(4) + extra]);
        assert_eq!(get(2), vec![Duration::from_millis(2)]);
        // Unfaulted traffic stays inside the declared bounds.
        for seq in 10..30u32 {
            for d in get(seq) {
                assert!(bounds().contains(d));
            }
        }
    }

    #[test]
    fn gray_windows_pin_sends_in_the_slow_phase_to_d2() {
        let plan = FaultPlan { entries: vec![] };
        let f = PlanChannelFault::new(&plan, 0, 1, 7, bounds(), Duration::ZERO)
            .with_gray_windows(Duration::from_millis(40), Duration::from_millis(20));
        let get = |seq: u32, at_ms: i64| {
            f.deliveries(
                NodeId(0),
                NodeId(1),
                MsgId::from_parts(NodeId(0), seq),
                Time::ZERO + Duration::from_millis(at_ms),
                bounds(),
            )
            .unwrap()
        };
        // Sent in the slow window (phase < 20 ms of each 40 ms cycle): d₂.
        assert_eq!(get(0, 0), vec![bounds().max()]);
        assert_eq!(get(1, 55), vec![bounds().max()]);
        // Sent in the healthy phase: the seeded uniform delay, in bounds.
        for (seq, at) in [(2u32, 25i64), (3, 70), (4, 39)] {
            let ds = get(seq, at);
            assert_eq!(ds.len(), 1);
            assert!(bounds().contains(ds[0]));
        }
    }

    #[test]
    fn duplicate_all_delivers_every_message_twice() {
        let plan = FaultPlan { entries: vec![] };
        let f =
            PlanChannelFault::new(&plan, 0, 1, 7, bounds(), Duration::ZERO).with_duplicate_all();
        for seq in 0..8u32 {
            let ds = f
                .deliveries(
                    NodeId(0),
                    NodeId(1),
                    MsgId::from_parts(NodeId(0), seq),
                    Time::ZERO,
                    bounds(),
                )
                .unwrap();
            assert_eq!(ds.len(), 2);
            assert_eq!(ds[1], bounds().max());
            assert!(bounds().contains(ds[0]));
        }
    }

    #[test]
    fn biased_scheduler_flips_only_listed_picks() {
        let plan = FaultPlan {
            entries: vec![FaultEntry::SchedulerBias { pick: 1 }],
        };
        let mut biased = BiasedScheduler::new(&plan, 11);
        let mut plain = RandomScheduler::new(11);
        let cands = [0u32, 1, 2, 3];
        // Pick 0: same as the seeded scheduler.
        assert_eq!(
            Scheduler::<u32>::pick(&mut biased, Time::ZERO, &cands),
            plain.pick(Time::ZERO, &cands)
        );
        // Pick 1: flipped to the last candidate.
        assert_eq!(Scheduler::<u32>::pick(&mut biased, Time::ZERO, &cands), 3);
    }

    #[test]
    fn scripted_clock_composes_skews_and_jumps() {
        let plan = FaultPlan {
            entries: vec![
                FaultEntry::ClockSkew {
                    node: 0,
                    at_ns: 10,
                    offset_ns: 100,
                },
                FaultEntry::ClockBackwardJump {
                    node: 0,
                    at_ns: 20,
                    jump_ns: 300,
                },
                // Other node: ignored.
                FaultEntry::ClockSkew {
                    node: 1,
                    at_ns: 0,
                    offset_ns: -100,
                },
            ],
        };
        let clock = scripted_clock_for(&plan, 0);
        // Smoke: the clock is usable and its counter starts at zero.
        assert_eq!(clock.rejections().get(), 0);
    }
}
