//! The fault-plan grammar and its admissibility check.
//!
//! A [`FaultPlan`] is a finite list of [`FaultEntry`] perturbations, each
//! targeting one knob the model already quantifies over: a node clock's
//! position inside the `C_ε` envelope (Definition 2.5), a message's
//! delivery inside `[d₁, d₂]` (Figure 1), or the scheduler's choice among
//! simultaneously enabled actions. Plans are *data* — pure values that
//! serialize into replay artifacts — and are validated against a
//! [`FaultEnvelope`] **before execution**: a plan one tick beyond `ε` or
//! `d₂` is reported as [`Inadmissible`], never run, and never mistaken
//! for an algorithm bug. Attempted backward clock jumps are the one
//! deliberate exception: they are admissible to *attempt* (the entry
//! describes a faulty time service, as in Kimberlite's
//! `ClockBackwardJump` scenario), and the C1–C4 guard in the engine
//! clamps and counts them at run time.

use psync_time::{Duration, Time};

use crate::json::Json;

/// One perturbation of an otherwise-free execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEntry {
    /// From real time `at_ns` on, node `node`'s clock requests the offset
    /// `offset_ns` from real time. Admissible iff `|offset_ns| ≤ ε`.
    ClockSkew {
        /// Target node.
        node: u32,
        /// Activation real time, nanoseconds.
        at_ns: i64,
        /// Requested clock − real-time offset, nanoseconds.
        offset_ns: i64,
    },
    /// At real time `at_ns`, node `node`'s clock *attempts* to jump
    /// backwards by `jump_ns` relative to its current offset. Always
    /// admissible to attempt; the engine's C1–C4 guard clamps the reading
    /// and the run records the rejection.
    ClockBackwardJump {
        /// Target node.
        node: u32,
        /// Activation real time, nanoseconds.
        at_ns: i64,
        /// Attempted backward jump, nanoseconds (> 0).
        jump_ns: i64,
    },
    /// Message `seq` on edge `src → dst` is dropped.
    Drop {
        /// Sender.
        src: u32,
        /// Receiver.
        dst: u32,
        /// Per-sender message counter (low 32 bits of the `MsgId`).
        seq: u32,
    },
    /// Message `seq` on edge `src → dst` is delivered twice: once at the
    /// channel's base delay, once after `delay_ns`. Admissible iff
    /// `delay_ns ∈ [d₁, d₂]`.
    Duplicate {
        /// Sender.
        src: u32,
        /// Receiver.
        dst: u32,
        /// Per-sender message counter.
        seq: u32,
        /// Delay of the duplicate copy, nanoseconds.
        delay_ns: i64,
    },
    /// Message `seq` on edge `src → dst` takes exactly `delay_ns` instead
    /// of the base policy's choice. Admissible iff `delay_ns ∈ [d₁, d₂]`.
    DelaySpike {
        /// Sender.
        src: u32,
        /// Receiver.
        dst: u32,
        /// Per-sender message counter.
        seq: u32,
        /// Forced delay, nanoseconds.
        delay_ns: i64,
    },
    /// The scheduler's `pick`-th decision (0-based, counted over the whole
    /// run) is flipped to the *last* candidate instead of the seeded
    /// choice — a targeted interleaving bias.
    SchedulerBias {
        /// Global pick index to flip.
        pick: u64,
    },
}

impl FaultEntry {
    /// The grammar keyword of this entry kind (artifact `kind` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEntry::ClockSkew { .. } => "clock_skew",
            FaultEntry::ClockBackwardJump { .. } => "clock_backward_jump",
            FaultEntry::Drop { .. } => "drop",
            FaultEntry::Duplicate { .. } => "duplicate",
            FaultEntry::DelaySpike { .. } => "delay_spike",
            FaultEntry::SchedulerBias { .. } => "scheduler_bias",
        }
    }

    /// The coverage *fault point* this entry exercises: the injection site
    /// abstracted over magnitudes and sequence numbers — `kind@node` for
    /// clock entries, `kind@src->dst` for channel entries,
    /// `scheduler_bias` for bias. Campaign telemetry counts distinct fault
    /// points hit against [`FaultEnvelope::fault_points`].
    #[must_use]
    pub fn fault_point(&self) -> String {
        match *self {
            FaultEntry::ClockSkew { node, .. } => format!("clock_skew@n{node}"),
            FaultEntry::ClockBackwardJump { node, .. } => {
                format!("clock_backward_jump@n{node}")
            }
            FaultEntry::Drop { src, dst, .. } => format!("drop@{src}->{dst}"),
            FaultEntry::Duplicate { src, dst, .. } => format!("duplicate@{src}->{dst}"),
            FaultEntry::DelaySpike { src, dst, .. } => format!("delay_spike@{src}->{dst}"),
            FaultEntry::SchedulerBias { .. } => "scheduler_bias".to_string(),
        }
    }

    /// The `(src, dst, seq)` target of a channel entry, if it is one.
    #[must_use]
    pub fn channel_target(&self) -> Option<(u32, u32, u32)> {
        match *self {
            FaultEntry::Drop { src, dst, seq }
            | FaultEntry::Duplicate { src, dst, seq, .. }
            | FaultEntry::DelaySpike { src, dst, seq, .. } => Some((src, dst, seq)),
            _ => None,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        match *self {
            FaultEntry::ClockSkew {
                node,
                at_ns,
                offset_ns,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("node", Json::num(node)),
                ("at_ns", Json::num(at_ns)),
                ("offset_ns", Json::num(offset_ns)),
            ]),
            FaultEntry::ClockBackwardJump {
                node,
                at_ns,
                jump_ns,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("node", Json::num(node)),
                ("at_ns", Json::num(at_ns)),
                ("jump_ns", Json::num(jump_ns)),
            ]),
            FaultEntry::Drop { src, dst, seq } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("src", Json::num(src)),
                ("dst", Json::num(dst)),
                ("seq", Json::num(seq)),
            ]),
            FaultEntry::Duplicate {
                src,
                dst,
                seq,
                delay_ns,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("src", Json::num(src)),
                ("dst", Json::num(dst)),
                ("seq", Json::num(seq)),
                ("delay_ns", Json::num(delay_ns)),
            ]),
            FaultEntry::DelaySpike {
                src,
                dst,
                seq,
                delay_ns,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("src", Json::num(src)),
                ("dst", Json::num(dst)),
                ("seq", Json::num(seq)),
                ("delay_ns", Json::num(delay_ns)),
            ]),
            FaultEntry::SchedulerBias { pick } => {
                Json::obj([("kind", Json::str(self.kind())), ("pick", Json::num(pick))])
            }
        }
    }

    pub(crate) fn from_json(v: &Json) -> Result<FaultEntry, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("entry missing kind")?;
        let u32_field = |name: &str| -> Result<u32, String> {
            v.get(name)
                .and_then(Json::as_u32)
                .ok_or_else(|| format!("entry missing {name}"))
        };
        let i64_field = |name: &str| -> Result<i64, String> {
            v.get(name)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("entry missing {name}"))
        };
        match kind {
            "clock_skew" => Ok(FaultEntry::ClockSkew {
                node: u32_field("node")?,
                at_ns: i64_field("at_ns")?,
                offset_ns: i64_field("offset_ns")?,
            }),
            "clock_backward_jump" => Ok(FaultEntry::ClockBackwardJump {
                node: u32_field("node")?,
                at_ns: i64_field("at_ns")?,
                jump_ns: i64_field("jump_ns")?,
            }),
            "drop" => Ok(FaultEntry::Drop {
                src: u32_field("src")?,
                dst: u32_field("dst")?,
                seq: u32_field("seq")?,
            }),
            "duplicate" => Ok(FaultEntry::Duplicate {
                src: u32_field("src")?,
                dst: u32_field("dst")?,
                seq: u32_field("seq")?,
                delay_ns: i64_field("delay_ns")?,
            }),
            "delay_spike" => Ok(FaultEntry::DelaySpike {
                src: u32_field("src")?,
                dst: u32_field("dst")?,
                seq: u32_field("seq")?,
                delay_ns: i64_field("delay_ns")?,
            }),
            "scheduler_bias" => Ok(FaultEntry::SchedulerBias {
                pick: v
                    .get("pick")
                    .and_then(Json::as_u64)
                    .ok_or("entry missing pick")?,
            }),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// A finite list of perturbations applied to one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The entries, in no particular order (each targets a disjoint knob
    /// once validated).
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// The empty plan: a completely unperturbed run.
    #[must_use]
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// How many entries the plan has.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the plan has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The admissibility envelope a scenario grants to plans: which fault
/// kinds exist in the scenario's model, and the `ε`/`[d₁, d₂]` boundaries
/// entries may sit on but not cross.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEnvelope {
    /// Number of nodes (clock entries must target one of them).
    pub nodes: u32,
    /// Skew bound `ε`, nanoseconds.
    pub eps_ns: i64,
    /// Minimum delay `d₁`, nanoseconds.
    pub d1_ns: i64,
    /// Maximum delay `d₂`, nanoseconds.
    pub d2_ns: i64,
    /// Run horizon, nanoseconds (clock entries activate within it).
    pub horizon_ns: i64,
    /// Channel edges that accept channel faults.
    pub edges: Vec<(u32, u32)>,
    /// Largest per-sender message counter worth targeting.
    pub max_seq: u32,
    /// Drop budget per edge (the scenario's oracles are calibrated to
    /// tolerate at most this many losses).
    pub max_drops: u32,
    /// Whether clock-fault entries exist in this scenario's model.
    pub allow_clock: bool,
    /// Whether drops are in the model.
    pub allow_drop: bool,
    /// Whether duplicates are in the model.
    pub allow_dup: bool,
    /// Whether delay spikes are in the model.
    pub allow_spike: bool,
}

impl FaultEnvelope {
    /// Every fault point the envelope's model contains, sorted — the
    /// denominator of the campaign's fault-point-coverage metric. Mirrors
    /// exactly the kind gating of [`FaultPlan::generate`]: clock points
    /// per node when clock faults are allowed, channel points per edge per
    /// allowed kind, and the scheduler-bias point always.
    #[must_use]
    pub fn fault_points(&self) -> Vec<String> {
        let mut points = Vec::new();
        if self.allow_clock {
            for node in 0..self.nodes {
                points.push(format!("clock_skew@n{node}"));
                points.push(format!("clock_backward_jump@n{node}"));
            }
        }
        for &(src, dst) in &self.edges {
            if self.allow_drop {
                points.push(format!("drop@{src}->{dst}"));
            }
            if self.allow_dup {
                points.push(format!("duplicate@{src}->{dst}"));
            }
            if self.allow_spike {
                points.push(format!("delay_spike@{src}->{dst}"));
            }
        }
        points.push("scheduler_bias".to_string());
        points.sort();
        points
    }
}

/// Why a plan was rejected *before execution* — the plan steps outside
/// the model's admissibility envelope, so running it would test nothing
/// the paper claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inadmissible {
    /// A clock-skew entry beyond `|offset| ≤ ε`.
    SkewBeyondEps {
        /// Offending entry index.
        index: usize,
        /// Requested offset (ns).
        offset_ns: i64,
        /// The bound `ε` (ns).
        eps_ns: i64,
    },
    /// A delay outside `[d₁, d₂]`.
    DelayOutOfBounds {
        /// Offending entry index.
        index: usize,
        /// Requested delay (ns).
        delay_ns: i64,
        /// `d₁` (ns).
        d1_ns: i64,
        /// `d₂` (ns).
        d2_ns: i64,
    },
    /// More drops on one edge than the scenario's oracles tolerate.
    TooManyDrops {
        /// The edge.
        edge: (u32, u32),
        /// Drops requested.
        requested: u32,
        /// The budget.
        budget: u32,
    },
    /// An entry targets a node or edge the scenario does not have.
    UnknownTarget {
        /// Offending entry index.
        index: usize,
        /// Human-readable description of the bad target.
        what: String,
    },
    /// An entry kind the scenario's model does not include.
    KindNotAllowed {
        /// Offending entry index.
        index: usize,
        /// The kind keyword.
        kind: &'static str,
    },
    /// Two entries target the same knob (same `(src, dst, seq)` or same
    /// `(node, at)`), making the plan's semantics order-dependent.
    ConflictingEntries {
        /// Index of the second (conflicting) entry.
        index: usize,
        /// Human-readable description of the contested knob.
        what: String,
    },
}

impl core::fmt::Display for Inadmissible {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Inadmissible::SkewBeyondEps {
                index,
                offset_ns,
                eps_ns,
            } => write!(
                f,
                "entry {index}: clock offset {offset_ns} ns beyond ε = {eps_ns} ns"
            ),
            Inadmissible::DelayOutOfBounds {
                index,
                delay_ns,
                d1_ns,
                d2_ns,
            } => write!(
                f,
                "entry {index}: delay {delay_ns} ns outside [{d1_ns}, {d2_ns}] ns"
            ),
            Inadmissible::TooManyDrops {
                edge,
                requested,
                budget,
            } => write!(
                f,
                "{requested} drops on edge {}→{} exceed the budget {budget}",
                edge.0, edge.1
            ),
            Inadmissible::UnknownTarget { index, what } => {
                write!(f, "entry {index}: unknown target {what}")
            }
            Inadmissible::KindNotAllowed { index, kind } => {
                write!(f, "entry {index}: kind {kind} not in this scenario's model")
            }
            Inadmissible::ConflictingEntries { index, what } => {
                write!(f, "entry {index}: second entry targeting {what}")
            }
        }
    }
}

impl std::error::Error for Inadmissible {}

impl FaultPlan {
    /// Checks every entry against the envelope. `Ok` means the plan stays
    /// within the model: boundary values (`|offset| = ε`, `delay = d₂`)
    /// are admissible; one nanosecond beyond is not.
    ///
    /// # Errors
    ///
    /// The first [`Inadmissible`] entry found.
    pub fn validate(&self, env: &FaultEnvelope) -> Result<(), Inadmissible> {
        let mut channel_targets: Vec<(u32, u32, u32)> = Vec::new();
        let mut clock_targets: Vec<(u32, i64)> = Vec::new();
        let mut drops_per_edge: Vec<((u32, u32), u32)> = Vec::new();
        for (index, entry) in self.entries.iter().enumerate() {
            match *entry {
                FaultEntry::ClockSkew {
                    node,
                    at_ns,
                    offset_ns,
                } => {
                    self.check_clock(env, index, node, at_ns, &mut clock_targets)?;
                    if offset_ns.abs() > env.eps_ns {
                        return Err(Inadmissible::SkewBeyondEps {
                            index,
                            offset_ns,
                            eps_ns: env.eps_ns,
                        });
                    }
                }
                FaultEntry::ClockBackwardJump {
                    node,
                    at_ns,
                    jump_ns,
                } => {
                    self.check_clock(env, index, node, at_ns, &mut clock_targets)?;
                    if jump_ns <= 0 {
                        return Err(Inadmissible::UnknownTarget {
                            index,
                            what: format!("non-positive jump {jump_ns} ns"),
                        });
                    }
                }
                FaultEntry::Drop { src, dst, seq } => {
                    if !env.allow_drop {
                        return Err(Inadmissible::KindNotAllowed {
                            index,
                            kind: entry.kind(),
                        });
                    }
                    self.check_edge(env, index, src, dst, seq, &mut channel_targets)?;
                    let edge = (src, dst);
                    match drops_per_edge.iter_mut().find(|(e, _)| *e == edge) {
                        Some((_, n)) => *n += 1,
                        None => drops_per_edge.push((edge, 1)),
                    }
                    let requested = drops_per_edge
                        .iter()
                        .find(|(e, _)| *e == edge)
                        .map_or(0, |(_, n)| *n);
                    if requested > env.max_drops {
                        return Err(Inadmissible::TooManyDrops {
                            edge,
                            requested,
                            budget: env.max_drops,
                        });
                    }
                }
                FaultEntry::Duplicate {
                    src,
                    dst,
                    seq,
                    delay_ns,
                } => {
                    if !env.allow_dup {
                        return Err(Inadmissible::KindNotAllowed {
                            index,
                            kind: entry.kind(),
                        });
                    }
                    self.check_edge(env, index, src, dst, seq, &mut channel_targets)?;
                    self.check_delay(env, index, delay_ns)?;
                }
                FaultEntry::DelaySpike {
                    src,
                    dst,
                    seq,
                    delay_ns,
                } => {
                    if !env.allow_spike {
                        return Err(Inadmissible::KindNotAllowed {
                            index,
                            kind: entry.kind(),
                        });
                    }
                    self.check_edge(env, index, src, dst, seq, &mut channel_targets)?;
                    self.check_delay(env, index, delay_ns)?;
                }
                FaultEntry::SchedulerBias { .. } => {}
            }
        }
        Ok(())
    }

    fn check_clock(
        &self,
        env: &FaultEnvelope,
        index: usize,
        node: u32,
        at_ns: i64,
        seen: &mut Vec<(u32, i64)>,
    ) -> Result<(), Inadmissible> {
        if !env.allow_clock {
            return Err(Inadmissible::KindNotAllowed {
                index,
                kind: self.entries[index].kind(),
            });
        }
        if node >= env.nodes {
            return Err(Inadmissible::UnknownTarget {
                index,
                what: format!("node {node} (of {})", env.nodes),
            });
        }
        if at_ns < 0 || at_ns > env.horizon_ns {
            return Err(Inadmissible::UnknownTarget {
                index,
                what: format!("activation {at_ns} ns outside [0, {}]", env.horizon_ns),
            });
        }
        if seen.contains(&(node, at_ns)) {
            return Err(Inadmissible::ConflictingEntries {
                index,
                what: format!("clock of node {node} at {at_ns} ns"),
            });
        }
        seen.push((node, at_ns));
        Ok(())
    }

    fn check_edge(
        &self,
        env: &FaultEnvelope,
        index: usize,
        src: u32,
        dst: u32,
        seq: u32,
        seen: &mut Vec<(u32, u32, u32)>,
    ) -> Result<(), Inadmissible> {
        if !env.edges.contains(&(src, dst)) {
            return Err(Inadmissible::UnknownTarget {
                index,
                what: format!("edge {src}→{dst}"),
            });
        }
        if seq > env.max_seq {
            return Err(Inadmissible::UnknownTarget {
                index,
                what: format!("seq {seq} (max {})", env.max_seq),
            });
        }
        if seen.contains(&(src, dst, seq)) {
            return Err(Inadmissible::ConflictingEntries {
                index,
                what: format!("message {seq} on edge {src}→{dst}"),
            });
        }
        seen.push((src, dst, seq));
        Ok(())
    }

    fn check_delay(
        &self,
        env: &FaultEnvelope,
        index: usize,
        delay_ns: i64,
    ) -> Result<(), Inadmissible> {
        if delay_ns < env.d1_ns || delay_ns > env.d2_ns {
            return Err(Inadmissible::DelayOutOfBounds {
                index,
                delay_ns,
                d1_ns: env.d1_ns,
                d2_ns: env.d2_ns,
            });
        }
        Ok(())
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny splitmix64-chained generator — the same primitive the delay and
/// drop policies use, so plan generation needs no external RNG crate.
pub(crate) struct Chain {
    state: u64,
}

impl Chain {
    pub(crate) fn new(seed: u64) -> Chain {
        Chain {
            state: splitmix64(seed),
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform in `[0, n)`. `n > 0`.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub(crate) fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64;
        lo + (self.below(span + 1) as i64)
    }
}

impl FaultPlan {
    /// Generates a seeded plan with at most `max_entries` entries, every
    /// one admissible in `env` by construction. Magnitudes are
    /// boundary-biased: clock offsets prefer `±ε`, delays prefer `d₁` and
    /// `d₂` — the corners where Theorems 4.7 and 6.5 are tight.
    #[must_use]
    pub fn generate(seed: u64, env: &FaultEnvelope, max_entries: usize) -> FaultPlan {
        let mut chain = Chain::new(seed ^ 0xFA17_71A0);
        let mut kinds: Vec<&'static str> = Vec::new();
        if env.allow_clock && env.nodes > 0 {
            kinds.push("clock_skew");
            kinds.push("clock_backward_jump");
        }
        if env.allow_drop && !env.edges.is_empty() {
            kinds.push("drop");
        }
        if env.allow_dup && !env.edges.is_empty() {
            kinds.push("duplicate");
        }
        if env.allow_spike && !env.edges.is_empty() {
            kinds.push("delay_spike");
        }
        kinds.push("scheduler_bias");

        let mut plan = FaultPlan::empty();
        if max_entries == 0 {
            return plan;
        }
        let count = 1 + chain.below(max_entries as u64) as usize;
        let mut drops_used: Vec<((u32, u32), u32)> = Vec::new();
        for _ in 0..count {
            let kind = kinds[chain.below(kinds.len() as u64) as usize];
            let entry = match kind {
                "clock_skew" => FaultEntry::ClockSkew {
                    node: chain.below(u64::from(env.nodes)) as u32,
                    at_ns: chain.range_i64(0, env.horizon_ns),
                    offset_ns: Self::boundary_biased(&mut chain, -env.eps_ns, env.eps_ns),
                },
                "clock_backward_jump" => FaultEntry::ClockBackwardJump {
                    node: chain.below(u64::from(env.nodes)) as u32,
                    at_ns: chain.range_i64(0, env.horizon_ns),
                    // Jumps up to 2ε: beyond the window for sure when at
                    // the high end, absorbable when small — both are
                    // interesting.
                    jump_ns: chain.range_i64(1, (2 * env.eps_ns).max(1)),
                },
                "drop" => {
                    let (src, dst) = env.edges[chain.below(env.edges.len() as u64) as usize];
                    let used = drops_used
                        .iter()
                        .find(|(e, _)| *e == (src, dst))
                        .map_or(0, |(_, n)| *n);
                    if used >= env.max_drops {
                        continue; // budget exhausted on this edge
                    }
                    match drops_used.iter_mut().find(|(e, _)| *e == (src, dst)) {
                        Some((_, n)) => *n += 1,
                        None => drops_used.push(((src, dst), 1)),
                    }
                    FaultEntry::Drop {
                        src,
                        dst,
                        seq: chain.below(u64::from(env.max_seq) + 1) as u32,
                    }
                }
                "duplicate" => {
                    let (src, dst) = env.edges[chain.below(env.edges.len() as u64) as usize];
                    FaultEntry::Duplicate {
                        src,
                        dst,
                        seq: chain.below(u64::from(env.max_seq) + 1) as u32,
                        delay_ns: Self::boundary_biased(&mut chain, env.d1_ns, env.d2_ns),
                    }
                }
                "delay_spike" => {
                    let (src, dst) = env.edges[chain.below(env.edges.len() as u64) as usize];
                    FaultEntry::DelaySpike {
                        src,
                        dst,
                        seq: chain.below(u64::from(env.max_seq) + 1) as u32,
                        delay_ns: Self::boundary_biased(&mut chain, env.d1_ns, env.d2_ns),
                    }
                }
                _ => FaultEntry::SchedulerBias {
                    pick: chain.below(512),
                },
            };
            // Keep the plan conflict-free: skip an entry whose knob is
            // already taken rather than bias the distribution by retrying.
            let conflict = match entry.channel_target() {
                Some(t) => plan.entries.iter().any(|e| e.channel_target() == Some(t)),
                None => match entry {
                    FaultEntry::ClockSkew { node, at_ns, .. }
                    | FaultEntry::ClockBackwardJump { node, at_ns, .. } => {
                        plan.entries.iter().any(|e| {
                            matches!(
                                *e,
                                FaultEntry::ClockSkew { node: n, at_ns: a, .. }
                                | FaultEntry::ClockBackwardJump { node: n, at_ns: a, .. }
                                if n == node && a == at_ns
                            )
                        })
                    }
                    _ => false,
                },
            };
            if !conflict {
                plan.entries.push(entry);
            }
        }
        debug_assert!(
            plan.validate(env).is_ok(),
            "generator produced an inadmissible plan"
        );
        plan
    }

    /// Boundary-biased draw from `[lo, hi]`: 40% `lo`, 40% `hi`, 20%
    /// uniform interior.
    fn boundary_biased(chain: &mut Chain, lo: i64, hi: i64) -> i64 {
        match chain.below(10) {
            0..=3 => lo,
            4..=7 => hi,
            _ => chain.range_i64(lo, hi),
        }
    }
}

/// Converts a nanosecond count to a [`Duration`].
#[must_use]
pub fn ns(n: i64) -> Duration {
    Duration::from_nanos(n)
}

/// Converts a nanosecond count to an absolute [`Time`].
#[must_use]
pub fn at_ns(n: i64) -> Time {
    Time::ZERO + Duration::from_nanos(n)
}

impl FaultPlan {
    pub(crate) fn to_json(&self) -> Json {
        Json::Arr(self.entries.iter().map(FaultEntry::to_json).collect())
    }

    pub(crate) fn from_json(v: &Json) -> Result<FaultPlan, String> {
        let items = v.as_arr().ok_or("plan must be an array")?;
        let entries = items
            .iter()
            .map(FaultEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> FaultEnvelope {
        FaultEnvelope {
            nodes: 2,
            eps_ns: 2_000_000,
            d1_ns: 1_000_000,
            d2_ns: 4_000_000,
            horizon_ns: 200_000_000,
            edges: vec![(0, 1)],
            max_seq: 19,
            max_drops: 2,
            allow_clock: true,
            allow_drop: true,
            allow_dup: true,
            allow_spike: true,
        }
    }

    #[test]
    fn boundary_values_are_admissible_one_tick_beyond_is_not() {
        let e = env();
        let on_eps = FaultPlan {
            entries: vec![FaultEntry::ClockSkew {
                node: 0,
                at_ns: 0,
                offset_ns: e.eps_ns,
            }],
        };
        assert!(on_eps.validate(&e).is_ok());
        let over_eps = FaultPlan {
            entries: vec![FaultEntry::ClockSkew {
                node: 0,
                at_ns: 0,
                offset_ns: e.eps_ns + 1,
            }],
        };
        assert!(matches!(
            over_eps.validate(&e),
            Err(Inadmissible::SkewBeyondEps { .. })
        ));

        let on_d2 = FaultPlan {
            entries: vec![FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 0,
                delay_ns: e.d2_ns,
            }],
        };
        assert!(on_d2.validate(&e).is_ok());
        let over_d2 = FaultPlan {
            entries: vec![FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 0,
                delay_ns: e.d2_ns + 1,
            }],
        };
        assert!(matches!(
            over_d2.validate(&e),
            Err(Inadmissible::DelayOutOfBounds { .. })
        ));
    }

    #[test]
    fn drop_budget_and_conflicts_are_enforced() {
        let e = env();
        let over_budget = FaultPlan {
            entries: vec![
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 0,
                },
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 1,
                },
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 2,
                },
            ],
        };
        assert!(matches!(
            over_budget.validate(&e),
            Err(Inadmissible::TooManyDrops { .. })
        ));
        let conflicting = FaultPlan {
            entries: vec![
                FaultEntry::Drop {
                    src: 0,
                    dst: 1,
                    seq: 3,
                },
                FaultEntry::DelaySpike {
                    src: 0,
                    dst: 1,
                    seq: 3,
                    delay_ns: e.d1_ns,
                },
            ],
        };
        assert!(matches!(
            conflicting.validate(&e),
            Err(Inadmissible::ConflictingEntries { .. })
        ));
    }

    #[test]
    fn generated_plans_are_admissible_and_deterministic() {
        let e = env();
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &e, 5);
            plan.validate(&e)
                .unwrap_or_else(|i| panic!("seed {seed}: generator escaped the envelope: {i}"));
            assert_eq!(plan, FaultPlan::generate(seed, &e, 5));
            assert!(!plan.is_empty() && plan.len() <= 5);
        }
    }

    #[test]
    fn generator_hits_the_boundaries() {
        let e = env();
        let mut hit_d2 = false;
        let mut hit_eps = false;
        for seed in 0..200 {
            for entry in FaultPlan::generate(seed, &e, 5).entries {
                match entry {
                    FaultEntry::DelaySpike { delay_ns, .. } if delay_ns == e.d2_ns => {
                        hit_d2 = true;
                    }
                    FaultEntry::ClockSkew { offset_ns, .. } if offset_ns.abs() == e.eps_ns => {
                        hit_eps = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(hit_d2, "no spike ever sat on d₂");
        assert!(hit_eps, "no skew ever sat on ±ε");
    }

    #[test]
    fn generated_fault_points_stay_inside_the_envelope_catalog() {
        let e = env();
        let catalog = e.fault_points();
        assert!(catalog.contains(&"scheduler_bias".to_string()));
        assert!(catalog.contains(&"drop@0->1".to_string()));
        assert!(catalog.contains(&"clock_skew@n1".to_string()));
        for seed in 0..100 {
            for entry in FaultPlan::generate(seed, &e, 5).entries {
                assert!(
                    catalog.contains(&entry.fault_point()),
                    "fault point {} not in the catalog",
                    entry.fault_point()
                );
            }
        }
    }

    #[test]
    fn entries_round_trip_through_json() {
        let e = env();
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &e, 5);
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(plan, back);
        }
    }
}
