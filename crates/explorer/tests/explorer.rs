//! End-to-end explorer tests: the seeded-bug acceptance case, envelope
//! boundary values, backward-jump rejection, and artifact round-trips.

use psync_explorer::{
    replay_artifact, run_campaign, run_case, run_heartbeat, Artifact, CampaignConfig, FaultEntry,
    FaultPlan, Inadmissible, ScenarioConfig, ARTIFACT_VERSION,
};

/// The acceptance scenario: a channel bug that delivers a boundary delay
/// spike one tick *after* `d₂`. The explorer must find it, shrink the
/// counterexample to at most three entries, and produce an artifact that
/// replays bit-identically.
#[test]
fn seeded_late_delivery_bug_is_found_shrunk_and_replayed() {
    let cfg = ScenarioConfig::heartbeat_default().with_bug(1);
    let campaign = CampaignConfig {
        cases: 64,
        seed: 0xC1A551C,
        max_entries: 6,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&campaign, &cfg);
    assert!(
        !report.failures.is_empty(),
        "the seeded d2+1 bug was not found in {} cases",
        campaign.cases
    );

    let failure = report
        .failures
        .iter()
        .find(|f| {
            f.artifact
                .violation
                .as_ref()
                .is_some_and(|(oracle, _)| oracle == "delivery envelope")
        })
        .expect("at least one failure must be a delivery-envelope violation");

    // Shrinking must isolate the trigger: a boundary delay spike at
    // exactly d2, which the buggy channel stretches to d2 + 1ns.
    let plan = &failure.artifact.plan;
    assert!(
        plan.len() <= 3,
        "shrunk plan still has {} entries: {plan:?}",
        plan.len()
    );
    assert!(
        plan.entries.iter().any(
            |e| matches!(e, FaultEntry::DelaySpike { delay_ns, .. } if *delay_ns == cfg.d2_ns)
        ),
        "shrunk plan lost the boundary spike: {plan:?}"
    );
    let (_, detail) = failure.artifact.violation.as_ref().unwrap();
    assert!(
        detail.contains("outside"),
        "violation should describe an out-of-envelope delivery: {detail}"
    );

    // The artifact is self-contained: JSON round-trips exactly...
    let text = failure.artifact.to_json();
    let parsed = Artifact::from_json(&text).expect("artifact JSON parses");
    assert_eq!(parsed, failure.artifact);

    // ...and replaying it re-executes the identical case: same verdicts,
    // same event count, same execution fingerprint, twice over.
    let first = replay_artifact(&parsed).expect("artifact replays");
    let second = replay_artifact(&parsed).expect("artifact replays");
    assert_eq!(first, second);
    assert!(!first.violations.is_empty());
    assert_eq!(first.violations[0].0, "delivery envelope");

    // Strongest form: the whole recorded executions are equal (Arc-backed
    // Execution equality), not just their fingerprints — and so are the
    // observer metrics.
    let a = run_heartbeat(&cfg, plan, failure.artifact.seed);
    let b = run_heartbeat(&cfg, plan, failure.artifact.seed);
    let run_a = a.run.expect("case runs");
    let run_b = b.run.expect("case runs");
    assert_eq!(run_a.execution, run_b.execution);
    assert_eq!(a.violations, b.violations);
    assert!(!a.violations.is_empty());
    assert_eq!(a.metrics, b.metrics);
}

/// Without the bug, the same campaigns are clean: every generated plan is
/// admissible and no oracle fires. (This is what makes the CI smoke run
/// meaningful — a non-zero exit is always a real find.)
#[test]
fn clean_campaigns_find_no_violations() {
    for (scenario, cases) in [
        (ScenarioConfig::heartbeat_default(), 24),
        (ScenarioConfig::clockfleet_default(), 24),
        (ScenarioConfig::register_default(), 8),
    ] {
        let campaign = CampaignConfig {
            cases,
            seed: 0xC1A551C,
            max_entries: 6,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&campaign, &scenario);
        assert!(
            report.failures.is_empty(),
            "[{:?}] unexpected violations: {:?}",
            scenario.kind,
            report
                .failures
                .iter()
                .map(|f| &f.artifact.violation)
                .collect::<Vec<_>>()
        );
        assert!(report.stats.entries > 0, "campaign generated no faults");
    }
}

/// A clock skew of exactly `ε` is admissible and the run passes every
/// oracle: the system is specified to tolerate the full envelope.
#[test]
fn skew_of_exactly_eps_is_admissible_and_survives() {
    let cfg = ScenarioConfig::clockfleet_default();
    let env = cfg.envelope();
    for offset in [cfg.eps_ns, -cfg.eps_ns] {
        let plan = FaultPlan {
            entries: vec![FaultEntry::ClockSkew {
                node: 0,
                at_ns: 50_000_000,
                offset_ns: offset,
            }],
        };
        plan.validate(&env).expect("|offset| = eps is admissible");
        let out = run_case(&cfg, &plan, 7);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}

/// One tick beyond `ε` is rejected *before execution* as an inadmissible
/// adversary — not reported as an algorithm bug.
#[test]
fn skew_one_tick_beyond_eps_is_inadmissible_before_execution() {
    let cfg = ScenarioConfig::clockfleet_default();
    let env = cfg.envelope();
    for offset in [cfg.eps_ns + 1, -(cfg.eps_ns + 1)] {
        let plan = FaultPlan {
            entries: vec![FaultEntry::ClockSkew {
                node: 0,
                at_ns: 50_000_000,
                offset_ns: offset,
            }],
        };
        match plan.validate(&env) {
            Err(Inadmissible::SkewBeyondEps {
                offset_ns, eps_ns, ..
            }) => {
                assert_eq!(offset_ns, offset);
                assert_eq!(eps_ns, cfg.eps_ns);
            }
            other => panic!("expected SkewBeyondEps, got {other:?}"),
        }
    }
}

/// Delay spikes at exactly `d₁` and exactly `d₂` are admissible and pass
/// (the paper's channel may legally choose either bound).
#[test]
fn delays_at_exactly_d1_and_d2_are_admissible_and_survive() {
    let cfg = ScenarioConfig::heartbeat_default();
    let env = cfg.envelope();
    for delay in [cfg.d1_ns, cfg.d2_ns] {
        let plan = FaultPlan {
            entries: vec![FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 4,
                delay_ns: delay,
            }],
        };
        plan.validate(&env).expect("boundary delay is admissible");
        let out = run_case(&cfg, &plan, 11);
        assert!(
            out.violations.is_empty(),
            "delay {delay}: {:?}",
            out.violations
        );
    }
}

/// One tick outside `[d₁, d₂]` in either direction is inadmissible
/// before execution.
#[test]
fn delay_one_tick_outside_bounds_is_inadmissible() {
    let cfg = ScenarioConfig::heartbeat_default();
    let env = cfg.envelope();
    for delay in [cfg.d1_ns - 1, cfg.d2_ns + 1] {
        let plan = FaultPlan {
            entries: vec![FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 4,
                delay_ns: delay,
            }],
        };
        match plan.validate(&env) {
            Err(Inadmissible::DelayOutOfBounds {
                delay_ns,
                d1_ns,
                d2_ns,
                ..
            }) => {
                assert_eq!(delay_ns, delay);
                assert_eq!((d1_ns, d2_ns), (cfg.d1_ns, cfg.d2_ns));
            }
            other => panic!("expected DelayOutOfBounds, got {other:?}"),
        }
    }
}

/// An *attempted* backward clock jump is an admissible thing to try —
/// and the C1–C4 guard must clamp it at run time (counted as a rejected
/// clock request) while every oracle still holds.
#[test]
fn attempted_backward_jump_is_rejected_by_the_guard_not_the_oracles() {
    let cfg = ScenarioConfig::clockfleet_default();
    let env = cfg.envelope();
    let plan = FaultPlan {
        entries: vec![FaultEntry::ClockBackwardJump {
            node: 0,
            at_ns: 100_000_000,
            // Far beyond ε: every post-jump request is off-envelope and
            // must be clamped back inside C_ε.
            jump_ns: cfg.eps_ns * 2 + 5_000_000,
        }],
    };
    plan.validate(&env)
        .expect("attempting a backward jump is admissible");
    let out = run_case(&cfg, &plan, 13);
    assert!(
        out.rejected_clock_requests > 0,
        "the guard should have clamped the scripted backward jump"
    );
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

/// Regression: a hand-written artifact with a nontrivial plan round-trips
/// through JSON and replays to the same outcome as a direct run.
#[test]
fn artifact_round_trip_matches_direct_execution() {
    let cfg = ScenarioConfig::heartbeat_default();
    let plan = FaultPlan {
        entries: vec![
            FaultEntry::Drop {
                src: 0,
                dst: 1,
                seq: 2,
            },
            FaultEntry::Duplicate {
                src: 0,
                dst: 1,
                seq: 6,
                delay_ns: 2_500_000,
            },
            FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 9,
                delay_ns: 4_000_000,
            },
            FaultEntry::SchedulerBias { pick: 11 },
        ],
    };
    plan.validate(&cfg.envelope()).expect("admissible");
    let seed = 0xD15C_0B01;
    let direct = run_case(&cfg, &plan, seed);
    assert!(direct.violations.is_empty(), "{:?}", direct.violations);

    let artifact = Artifact {
        version: ARTIFACT_VERSION,
        config: cfg,
        seed,
        plan,
        violation: None,
    };
    let parsed = Artifact::from_json(&artifact.to_json()).expect("parses");
    assert_eq!(parsed, artifact);
    let replayed = replay_artifact(&parsed).expect("replays");
    assert_eq!(replayed, direct);

    // The metric snapshot is part of the outcome equality above; pin the
    // interesting invariants explicitly so a regression reads clearly.
    assert_eq!(replayed.metrics, direct.metrics);
    assert_eq!(replayed.metrics.to_json(), direct.metrics.to_json());
    assert_eq!(direct.metrics.counter("engine.steps"), direct.events as u64);
    assert_eq!(
        direct.metrics.counter("channel.dropped"),
        1,
        "the planned drop must show up in the channel fault counters"
    );
    assert_eq!(direct.metrics.counter("channel.duplicated"), 1);
    // PlanChannelFault never defers to the base policy (deferring would
    // surrender control to the channel's internal — possibly widened —
    // bounds), so every non-drop, non-duplicate send counts as a
    // single-copy delay override.
    assert_eq!(
        direct.metrics.counter("channel.spiked"),
        direct.metrics.counter("channel.sends")
            - direct.metrics.counter("channel.dropped")
            - direct.metrics.counter("channel.duplicated")
    );
    assert_eq!(
        direct.metrics.counter("engine.deliveries"),
        direct.metrics.counter("channel.delivered"),
        "engine-side RECVMSG count and channel-side delivery count agree"
    );
    let delays = direct
        .metrics
        .histogram("channel.delay_ns.n0->n1")
        .expect("per-channel delay histogram was recorded");
    assert_eq!(delays.count(), direct.metrics.counter("channel.delivered"));
}

/// An artifact whose plan violates its own envelope is refused by
/// `replay_artifact` (inadmissible, not executed).
#[test]
fn inadmissible_artifact_is_refused() {
    let cfg = ScenarioConfig::heartbeat_default();
    let artifact = Artifact {
        version: ARTIFACT_VERSION,
        seed: 1,
        plan: FaultPlan {
            entries: vec![FaultEntry::DelaySpike {
                src: 0,
                dst: 1,
                seq: 0,
                delay_ns: cfg.d2_ns + 1,
            }],
        },
        config: cfg,
        violation: None,
    };
    let err = replay_artifact(&artifact).unwrap_err();
    assert!(err.contains("inadmissible"), "{err}");
}
