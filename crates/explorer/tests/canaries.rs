//! The falsification gate: every registered canary — a scenario with one
//! deliberately planted bug — must be caught by the oracle tagged as
//! responsible for it, under the same fixed-seed campaign CI runs. A
//! mutation score below 1.0 here means an oracle has silently stopped
//! pulling its weight.

use psync_explorer::{default_jobs, mutation_score, run_canary_suite, CampaignConfig, CanaryKind};

fn ci_campaign() -> CampaignConfig {
    CampaignConfig {
        cases: 64,
        seed: 0xC1A551C,
        max_entries: 6,
        ..CampaignConfig::default()
    }
}

/// The CI acceptance run in test form: 64 cases per canary at the pinned
/// seed, every planted bug caught by its expected oracle, and every
/// caught bug shrunk to a plan of at most two entries (the canaries are
/// *ambient* bugs — the code is wrong, not the fault plan, so shrinking
/// strips the plan down to at most a small enabling nudge).
#[test]
fn full_suite_scores_mutation_one_point_zero() {
    let outcomes = run_canary_suite(&CanaryKind::all(), &ci_campaign(), default_jobs());

    for outcome in &outcomes {
        let verdict = outcome.report.canary.as_ref().unwrap_or_else(|| {
            panic!(
                "[{}] campaign reported no canary verdict",
                outcome.kind.name()
            )
        });
        assert_eq!(
            verdict.expected_oracle,
            outcome.kind.expected_oracle(),
            "[{}] verdict tagged with the wrong oracle",
            outcome.kind.name()
        );
        assert!(
            outcome.caught(),
            "[{}] planted bug was NOT caught by {:?} in 64 cases",
            outcome.kind.name(),
            outcome.kind.expected_oracle()
        );
        let min = verdict
            .min_shrunk_entries
            .expect("caught canaries have a minimal shrunk plan");
        assert!(
            min <= 2,
            "[{}] smallest shrunk counterexample has {min} entries — the bug \
             should not need an elaborate fault plan to show itself",
            outcome.kind.name()
        );
    }

    let (caught, planted) = mutation_score(&outcomes);
    assert_eq!(planted, 10, "registry should hold ten canaries");
    assert_eq!(
        (caught, planted),
        (10, 10),
        "mutation score below 1.0: {caught}/{planted}"
    );
}

/// The canary registry itself is coherent: names round-trip, every
/// mutated scenario carries its tag, and the registry covers all six
/// scenario families (heartbeat, clock fleet, mutex, register, counter,
/// sync).
#[test]
fn registry_covers_every_scenario_family() {
    let mut families: Vec<&'static str> = CanaryKind::all()
        .iter()
        .map(|k| {
            let kind = k.base_kind();
            if kind.is_heartbeat() {
                "heartbeat"
            } else if kind.is_sync() {
                "sync"
            } else {
                kind.name()
            }
        })
        .collect();
    families.sort_unstable();
    families.dedup();
    assert_eq!(
        families,
        vec![
            "clockfleet",
            "counter",
            "heartbeat",
            "mutex",
            "register",
            "sync"
        ],
        "canary registry no longer spans the scenario families"
    );
}
