//! Differential test: parallel campaigns are bit-identical to sequential.
//!
//! `run_campaign_jobs` promises the full [`CampaignReport`] — stats,
//! first-seen kind coverage, aggregated metrics, and every shrunk failure
//! artifact — is independent of the worker count. This test holds it to
//! that promise by comparing whole reports with `==` (all report types
//! derive `PartialEq`/`Eq`) across `jobs ∈ {1, 2, 4}`:
//!
//! - a fixed sweep of seeds over every catalog scenario, passing
//!   campaigns only (broad coverage of the merge path);
//! - the planted-bug heartbeat scenario, so the comparison also covers
//!   failing cases end to end: shrinking, probe accounting, artifacts;
//! - a crash/recovery scenario with a planted bug, crossed with both
//!   shrink-probe modes (checkpointed and from-scratch);
//! - a property test over random `CampaignConfig`s (cases, seed,
//!   max_entries) and scenarios.
//!
//! Note: the vendored proptest stub replays deterministically from the
//! test name and performs no shrinking of its own, so it persists no
//! `*.proptest-regressions` files.

use proptest::prelude::*;
use psync_explorer::{run_campaign_jobs, CampaignConfig, ScenarioConfig, ScenarioKind};

const JOBS: [usize; 2] = [2, 4];

/// Runs the campaign sequentially, then re-runs on each worker count and
/// requires the whole report to compare equal.
fn assert_jobs_invariant(campaign: &CampaignConfig, config: &ScenarioConfig) {
    let sequential = run_campaign_jobs(campaign, config, 1);
    for jobs in JOBS {
        let parallel = run_campaign_jobs(campaign, config, jobs);
        assert_eq!(
            sequential, parallel,
            "report diverged at jobs={jobs} (campaign {campaign:?})"
        );
    }
}

#[test]
fn all_scenarios_reports_identical_across_job_counts() {
    for kind in ScenarioKind::all() {
        let config = ScenarioConfig::default_for(kind);
        for seed in [0x0C1A_551C, 1, 0xDEAD_BEEF] {
            let campaign = CampaignConfig {
                cases: 8,
                seed,
                max_entries: 5,
                ..CampaignConfig::default()
            };
            assert_jobs_invariant(&campaign, &config);
        }
    }
}

#[test]
fn failing_campaign_reports_identical_across_job_counts() {
    // The planted boundary bug makes the heartbeat campaign find real
    // violations, so the equality covers shrinking and artifacts too.
    let config = ScenarioConfig::heartbeat_default().with_bug(40);
    let campaign = CampaignConfig {
        cases: 24,
        seed: 0x0C1A_551C,
        max_entries: 6,
        ..CampaignConfig::default()
    };
    let report = run_campaign_jobs(&campaign, &config, 1);
    assert!(
        !report.failures.is_empty(),
        "planted bug should produce failures for this comparison to be meaningful"
    );
    assert_jobs_invariant(&campaign, &config);
}

/// The crash/recovery seam is the trickiest place for worker-count or
/// probe-mode divergence: the restart scenario checkpoints mid-case and
/// resumes across the seam. Pin the whole report as bit-identical over
/// `jobs ∈ {1, 2, 4}` × both shrink-probe modes, for a clean crash
/// campaign and a failing (planted-bug) one.
#[test]
fn crash_scenario_reports_identical_across_jobs_and_probe_modes() {
    for (config, cases) in [
        (
            ScenarioConfig::default_for(ScenarioKind::HeartbeatRestart),
            12,
        ),
        (
            ScenarioConfig::default_for(ScenarioKind::HeartbeatRestart).with_bug(1),
            16,
        ),
    ] {
        let mut baseline = None;
        for checkpointed_shrink in [true, false] {
            let campaign = CampaignConfig {
                cases,
                seed: 0x0C1A_551C,
                max_entries: 6,
                checkpointed_shrink,
                ..CampaignConfig::default()
            };
            let sequential = run_campaign_jobs(&campaign, &config, 1);
            assert_jobs_invariant(&campaign, &config);
            match &baseline {
                None => baseline = Some(sequential),
                Some(first) => assert_eq!(
                    first, &sequential,
                    "probe modes diverged on the crash scenario (bug={:?})",
                    config.bug_extra_ns
                ),
            }
        }
        if config.bug_extra_ns > 0 {
            let report = baseline.expect("baseline recorded");
            assert!(
                !report.failures.is_empty(),
                "planted bug should fail crash-scenario cases"
            );
        }
    }
}

#[test]
fn degenerate_campaigns_run_on_any_job_count() {
    let config = ScenarioConfig::register_default();
    for cases in [0, 1] {
        let campaign = CampaignConfig {
            cases,
            seed: 7,
            max_entries: 3,
            ..CampaignConfig::default()
        };
        assert_jobs_invariant(&campaign, &config);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Job-count invariance over random campaign shapes and scenarios.
    #[test]
    fn random_campaigns_identical_across_job_counts(
        cases in 1u64..8,
        seed in 0u64..1_000_000,
        max_entries in 1usize..8,
        kind_ix in 0usize..14,
    ) {
        let config = ScenarioConfig::default_for(ScenarioKind::all()[kind_ix]);
        let campaign = CampaignConfig { cases, seed, max_entries, ..CampaignConfig::default() };
        let sequential = run_campaign_jobs(&campaign, &config, 1);
        for jobs in JOBS {
            let parallel = run_campaign_jobs(&campaign, &config, jobs);
            prop_assert_eq!(
                &sequential, &parallel,
                "report diverged at jobs={} (campaign {:?})", jobs, campaign
            );
        }
    }
}
