//! Integration pins for the sharded/online monitoring layer:
//!
//! - the monitor-lane shard count is a pure performance knob — every
//!   case outcome (verdicts, fingerprint, metrics) is bit-identical for
//!   every shard count, which is what justifies it living outside the
//!   `(config, plan, seed)` replay triple;
//! - online campaigns are deterministic and worker-count invariant,
//!   exactly like offline ones;
//! - online campaigns still catch planted bugs, blaming the same
//!   streamable oracle the offline judge blames.
//!
//! The shard count is plain data threaded through `CampaignConfig` /
//! `run_case_sharded` — there is no process-global knob, so these tests
//! can interleave freely with other suites.

use psync_explorer::{
    run_campaign_jobs, run_case, run_case_sharded, CampaignConfig, CanaryKind, FaultPlan,
    ScenarioConfig, ScenarioKind,
};

#[test]
fn case_outcomes_are_monitor_shard_invariant() {
    // One scenario per judge shape: plain heartbeat (clean), a planted
    // envelope bug (violating), the relay (more oracles than shards
    // divides evenly), and a clock-model scenario.
    let cases = [
        ScenarioConfig::heartbeat_default(),
        ScenarioConfig::heartbeat_default().with_bug(40),
        ScenarioConfig::default_for(ScenarioKind::Relay),
        ScenarioConfig::default_for(ScenarioKind::ClockFleet),
    ];
    let plan = FaultPlan::default();
    for cfg in &cases {
        let sequential = run_case(cfg, &plan, 9);
        for shards in [2, 4, 7] {
            let sharded = run_case_sharded(cfg, &plan, 9, shards);
            assert_eq!(
                sequential, sharded,
                "outcome diverged at {shards} shards for {:?}",
                cfg.kind
            );
        }
    }
}

#[test]
fn online_campaigns_are_deterministic_and_jobs_invariant() {
    let scenario = ScenarioConfig::heartbeat_default().with_bug(40);
    let campaign = CampaignConfig {
        cases: 16,
        online: true,
        ..CampaignConfig::default()
    };
    let sequential = run_campaign_jobs(&campaign, &scenario, 1);
    assert!(
        !sequential.failures.is_empty(),
        "planted bug should fail online cases"
    );
    // The envelope bug is a streamable violation; the online judge
    // blames the same oracle the offline judge would.
    for failure in &sequential.failures {
        let (oracle, _) = failure
            .artifact
            .violation
            .as_ref()
            .expect("failing artifact carries its violation");
        assert_eq!(oracle, "delivery envelope");
    }
    for jobs in [2, 4] {
        let parallel = run_campaign_jobs(&campaign, &scenario, jobs);
        assert_eq!(
            sequential, parallel,
            "online report diverged at jobs={jobs}"
        );
    }
    let replay = run_campaign_jobs(&campaign, &scenario, 1);
    assert_eq!(sequential, replay, "online report is not replayable");
}

#[test]
fn online_campaigns_short_circuit_failing_cases() {
    // Same campaign, online vs offline, over the duplicate-delivery
    // canary on a stretched horizon: every case trips the envelope
    // oracle within the first few heartbeats, so the online run must
    // spend far fewer recorded events on its primary runs.
    let scenario = ScenarioConfig {
        canary: Some(CanaryKind::DuplicateDelivery),
        horizon_ns: 1_200_000_000,
        ..ScenarioConfig::heartbeat_default()
    };
    let offline = run_campaign_jobs(
        &CampaignConfig {
            cases: 16,
            ..CampaignConfig::default()
        },
        &scenario,
        1,
    );
    let online = run_campaign_jobs(
        &CampaignConfig {
            cases: 16,
            online: true,
            ..CampaignConfig::default()
        },
        &scenario,
        1,
    );
    assert!(!online.failures.is_empty());
    assert!(
        online.stats.events < offline.stats.events,
        "online judging saved no events: {} vs {}",
        online.stats.events,
        offline.stats.events
    );
    assert!(online.metrics.counter("monitor.short_circuits") > 0);
    // Clean campaigns, by contrast, judge every event and agree with the
    // offline mode on everything but the judge bookkeeping.
    let clean = ScenarioConfig::heartbeat_default();
    let off = run_campaign_jobs(
        &CampaignConfig {
            cases: 8,
            ..CampaignConfig::default()
        },
        &clean,
        1,
    );
    let on = run_campaign_jobs(
        &CampaignConfig {
            cases: 8,
            online: true,
            ..CampaignConfig::default()
        },
        &clean,
        1,
    );
    assert!(off.failures.is_empty() && on.failures.is_empty());
    assert_eq!(off.stats.events, on.stats.events);
    assert_eq!(on.metrics.counter("monitor.short_circuits"), 0);
}

#[test]
fn online_mode_falls_back_to_posthoc_for_other_kinds() {
    // Kinds without stream oracles must produce byte-identical reports
    // with the flag on or off.
    for kind in [
        ScenarioKind::HeartbeatRestart,
        ScenarioKind::ClockFleet,
        ScenarioKind::Register,
    ] {
        let scenario = ScenarioConfig::default_for(kind);
        let offline = run_campaign_jobs(
            &CampaignConfig {
                cases: 6,
                ..CampaignConfig::default()
            },
            &scenario,
            1,
        );
        let online = run_campaign_jobs(
            &CampaignConfig {
                cases: 6,
                online: true,
                ..CampaignConfig::default()
            },
            &scenario,
            1,
        );
        assert_eq!(offline, online, "fallback diverged for {kind:?}");
    }
}
