//! Differential tests for checkpoint-resumed shrink probes: the campaign
//! report must be bit-identical whether probes resume from checkpoints
//! (the default) or re-run from scratch, and resuming must actually
//! re-execute fewer events.

use psync_explorer::{run_campaign_with_telemetry, CampaignConfig, ScenarioConfig, ScenarioKind};

fn campaign(checkpointed: bool) -> CampaignConfig {
    CampaignConfig {
        cases: 24,
        seed: 0x0C1A_551C,
        max_entries: 6,
        checkpointed_shrink: checkpointed,
        online: false,
        monitor_shards: 1,
    }
}

/// The acceptance cross-check: a planted-bug campaign shrinks many
/// failing cases; both probe modes must settle on byte-for-byte the same
/// report (stats, metrics, shrunk plans, artifacts), while the
/// checkpointed mode re-executes strictly fewer events doing so.
#[test]
fn planted_bug_campaign_is_identical_across_probe_modes() {
    let scenario = ScenarioConfig::heartbeat_default().with_bug(1);
    let (resumed, resumed_cost) = run_campaign_with_telemetry(&campaign(true), &scenario, 1);
    let (straight, straight_cost) = run_campaign_with_telemetry(&campaign(false), &scenario, 1);

    assert!(
        !resumed.failures.is_empty(),
        "the planted bug should fail cases so both modes actually shrink"
    );
    assert_eq!(resumed, straight, "probe modes produced different reports");

    // Cost: the checkpointed mode records its ladders during the primary
    // case runs (one per case, no extra executions), then re-executes
    // only probe suffixes.
    assert_eq!(resumed_cost.recording_runs, 24);
    assert_eq!(straight_cost.recording_runs, 0);
    assert!(resumed_cost.checkpoints > 0);
    assert!(
        resumed_cost.shrink_events * 2 <= straight_cost.shrink_events,
        "resumed probes re-executed {} events, straight probes {} — less than 2x saved",
        resumed_cost.shrink_events,
        straight_cost.shrink_events
    );
}

/// The crash/recovery scenario checkpoints and restores *inside* its
/// primary run, so probe-resume ladders are never layered on top: both
/// probe modes replay its shrinks from scratch and must still settle on
/// the same report for a planted-bug campaign.
#[test]
fn crash_scenario_planted_bug_is_identical_across_probe_modes() {
    let scenario = ScenarioConfig::default_for(ScenarioKind::HeartbeatRestart).with_bug(1);
    let cfg = CampaignConfig {
        cases: 16,
        ..campaign(true)
    };
    let (resumed, resumed_cost) = run_campaign_with_telemetry(&cfg, &scenario, 1);
    let straight_cfg = CampaignConfig {
        checkpointed_shrink: false,
        ..cfg
    };
    let (straight, straight_cost) = run_campaign_with_telemetry(&straight_cfg, &scenario, 1);

    assert!(
        !resumed.failures.is_empty(),
        "the planted bug should fail crash-scenario cases"
    );
    assert_eq!(resumed, straight, "probe modes produced different reports");

    // The restart scenario opts out of probe-resume recording entirely,
    // so even the checkpointed mode shows from-scratch telemetry.
    assert_eq!(resumed_cost.recording_runs, 0);
    assert_eq!(resumed_cost.checkpoints, 0);
    assert_eq!(resumed_cost.shrink_events, straight_cost.shrink_events);
}

/// Clean campaigns never shrink, so the two modes produce equal reports
/// and neither re-executes a single shrink event. The checkpointed mode
/// still records a ladder during each primary run (that is where resume
/// sources come from), which the telemetry reports as recording runs and
/// checkpoints — not as shrink work. The exceptions are the restart
/// scenario and the sync scenarios, which always route from scratch
/// (see above; sync derives its ε̂ gauges outside the engine) and so
/// record nothing.
#[test]
fn clean_campaigns_spend_no_shrink_work_in_either_mode() {
    for kind in ScenarioKind::all() {
        let scenario = ScenarioConfig::default_for(kind);
        let cfg = CampaignConfig {
            cases: 6,
            ..campaign(true)
        };
        let (resumed, resumed_cost) = run_campaign_with_telemetry(&cfg, &scenario, 1);
        let straight_cfg = CampaignConfig {
            checkpointed_shrink: false,
            ..cfg
        };
        let (straight, straight_cost) = run_campaign_with_telemetry(&straight_cfg, &scenario, 1);
        assert!(
            resumed.failures.is_empty(),
            "[{kind:?}] unexpected failures"
        );
        assert_eq!(resumed, straight, "[{kind:?}] reports differ");
        assert_eq!(
            resumed_cost.shrink_events, 0,
            "[{kind:?}] resumed shrink work"
        );
        assert_eq!(
            straight_cost.shrink_events, 0,
            "[{kind:?}] straight shrink work"
        );
        if kind == ScenarioKind::HeartbeatRestart || kind.is_sync() {
            assert_eq!(
                resumed_cost,
                Default::default(),
                "[{kind:?}] from-scratch cost"
            );
        } else {
            assert_eq!(
                resumed_cost.recording_runs, cfg.cases,
                "[{kind:?}] recordings"
            );
            assert!(
                resumed_cost.checkpoints > 0,
                "[{kind:?}] no ladders recorded"
            );
        }
        assert_eq!(
            straight_cost,
            Default::default(),
            "[{kind:?}] straight cost"
        );
    }
}

/// `shrink_probes` counts true case executions: the cached driver never
/// re-probes a plan it has already evaluated, so the planted-bug
/// campaign's probe count is the same in both modes and every probe was
/// a cache miss (cache hits are tallied separately).
#[test]
fn shrink_probe_counts_are_true_executions_in_both_modes() {
    let scenario = ScenarioConfig::heartbeat_default().with_bug(1);
    let (resumed, resumed_cost) = run_campaign_with_telemetry(&campaign(true), &scenario, 1);
    let (straight, straight_cost) = run_campaign_with_telemetry(&campaign(false), &scenario, 1);
    assert_eq!(resumed.stats.shrink_probes, straight.stats.shrink_probes);
    assert!(resumed.stats.shrink_probes > 0);
    // ddmin revisits its seeded plan and adopted bases; those answers
    // come from the cache, not from re-execution.
    assert!(resumed_cost.cache_hits > 0);
    assert_eq!(resumed_cost.cache_hits, straight_cost.cache_hits);
}
