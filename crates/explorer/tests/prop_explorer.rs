//! Property tests for the shrinker, over generator-produced plans and a
//! family of synthetic failure predicates.
//!
//! The predicates deliberately know nothing about scenarios — they count
//! entries by a deterministic weight — so these properties hold for *any*
//! deterministic `fails`, which is exactly the contract `shrink_entries`
//! promises: if the input fails, the output is a failing, 1-minimal
//! sub-multiset; if it passes, the output is empty; and shrinking is
//! idempotent.
//!
//! Note: the vendored proptest stub replays deterministically from the
//! test name and performs no shrinking of its own, so it persists no
//! `*.proptest-regressions` files.

use proptest::prelude::*;
use psync_explorer::{shrink_entries, FaultEntry, FaultPlan, ScenarioConfig};

/// Deterministic weight of an entry (a hash of its debug form).
fn weight(e: &FaultEntry) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for b in format!("{e:?}").bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// A generated, envelope-admissible plan: heartbeat envelopes give
/// channel faults, clockfleet envelopes give clock faults.
fn gen_plan(seed: u64, env_ix: u64) -> FaultPlan {
    let env = if env_ix.is_multiple_of(2) {
        ScenarioConfig::heartbeat_default().envelope()
    } else {
        ScenarioConfig::clockfleet_default().envelope()
    };
    FaultPlan::generate(seed, &env, 8)
}

/// How many entries of `p` the predicate family counts as "bad".
fn bad(p: &FaultPlan, k: u64) -> u64 {
    p.entries
        .iter()
        .filter(|e| weight(e).is_multiple_of(k))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full shrinker contract in one pass: still-failing, subset,
    /// 1-minimal, idempotent — or empty if the input never failed.
    #[test]
    fn shrinker_contract(seed in 0u64..1_000_000, env_ix in 0u64..2, k in 2u64..6, m in 1u64..4) {
        let plan = gen_plan(seed, env_ix);
        let mut fails = |p: &FaultPlan| bad(p, k) >= m;
        let shrunk = shrink_entries(&plan, &mut fails);

        if bad(&plan, k) < m {
            // A passing plan has no counterexample to preserve.
            prop_assert!(shrunk.is_empty());
            return Ok(());
        }

        // 1. The shrunk plan still fails.
        prop_assert!(bad(&shrunk, k) >= m);

        // 2. Multiset-subset of the original: nothing is invented.
        for entry in &shrunk.entries {
            let in_shrunk = shrunk.entries.iter().filter(|e| *e == entry).count();
            let in_plan = plan.entries.iter().filter(|e| *e == entry).count();
            prop_assert!(in_shrunk <= in_plan, "entry {entry:?} multiplied");
        }

        // 3. 1-minimal: removing any single entry makes it pass.
        for i in 0..shrunk.len() {
            let mut entries = shrunk.entries.clone();
            entries.remove(i);
            prop_assert!(
                bad(&FaultPlan { entries }, k) < m,
                "entry {i} of the shrunk plan is removable"
            );
        }

        // 4. Idempotent: shrinking a shrunk plan changes nothing.
        let again = shrink_entries(&shrunk, &mut fails);
        prop_assert_eq!(again, shrunk);
    }

    /// Plans that pass shrink to empty even when probing is expensive —
    /// the shrinker must not run ddmin at all on a passing plan.
    #[test]
    fn passing_plans_shrink_to_empty_in_one_probe(seed in 0u64..1_000_000, env_ix in 0u64..2) {
        let plan = gen_plan(seed, env_ix);
        let mut probes = 0u64;
        let mut fails = |_: &FaultPlan| {
            probes += 1;
            false
        };
        let shrunk = shrink_entries(&plan, &mut fails);
        prop_assert!(shrunk.is_empty());
        prop_assert_eq!(probes, 1);
    }

    /// Generator plans are always admissible in the envelope they were
    /// generated for (the explorer never runs an illegal adversary).
    #[test]
    fn generated_plans_are_admissible(seed in 0u64..1_000_000, env_ix in 0u64..2) {
        let env = if env_ix.is_multiple_of(2) {
            ScenarioConfig::heartbeat_default().envelope()
        } else {
            ScenarioConfig::clockfleet_default().envelope()
        };
        let plan = FaultPlan::generate(seed, &env, 8);
        prop_assert!(plan.validate(&env).is_ok(), "{:?}", plan.validate(&env));
    }
}
