//! Property tests for the shrinker, over generator-produced plans and a
//! family of synthetic failure predicates — plus the admissibility
//! boundary sweep: every scenario's envelope accepts its exact boundary
//! values and rejects one tick beyond.
//!
//! The shrinker predicates deliberately know nothing about scenarios —
//! they count entries by a deterministic weight — so those properties
//! hold for *any* deterministic `fails`, which is exactly the contract
//! `shrink_entries` promises: if the input fails, the output is a
//! failing, 1-minimal sub-multiset; if it passes, the output is empty;
//! and shrinking is idempotent.
//!
//! Note: the vendored proptest stub replays deterministically from the
//! test name and performs no shrinking of its own, so it persists no
//! `*.proptest-regressions` files.

use proptest::prelude::*;
use psync_explorer::{
    shrink_entries, FaultEntry, FaultPlan, Inadmissible, ScenarioConfig, ScenarioKind,
};

/// Deterministic weight of an entry (a hash of its debug form).
fn weight(e: &FaultEntry) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for b in format!("{e:?}").bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// A generated, envelope-admissible plan from any catalog scenario:
/// heartbeat-family envelopes give channel faults, clock-only envelopes
/// give clock faults, register/counter envelopes give both.
fn gen_plan(seed: u64, kind_ix: usize) -> FaultPlan {
    let kinds = ScenarioKind::all();
    let env = ScenarioConfig::default_for(kinds[kind_ix % kinds.len()]).envelope();
    FaultPlan::generate(seed, &env, 8)
}

/// How many entries of `p` the predicate family counts as "bad".
fn bad(p: &FaultPlan, k: u64) -> u64 {
    p.entries
        .iter()
        .filter(|e| weight(e).is_multiple_of(k))
        .count() as u64
}

fn one_entry(entry: FaultEntry) -> FaultPlan {
    FaultPlan {
        entries: vec![entry],
    }
}

/// Satellite check for the scenario catalog: in *every* scenario, each
/// fault family the envelope models accepts its exact boundary value and
/// rejects the value one tick beyond — skew at `±ε` vs `±(ε+1)`, delays
/// at `d₁`/`d₂` vs one nanosecond outside, drop counts at the budget vs
/// one over. Inadmissible plans are refused before execution, so an
/// illegal adversary is never confused with an algorithm bug.
#[test]
fn every_scenario_envelope_rejects_one_tick_beyond_plans() {
    for kind in ScenarioKind::all() {
        let env = ScenarioConfig::default_for(kind).envelope();
        assert!(
            env.allow_clock || !env.edges.is_empty(),
            "[{kind:?}] envelope models no fault family at all"
        );

        if env.allow_clock {
            let at_ns = env.horizon_ns / 2;
            for sign in [1, -1] {
                let skew = |offset_ns| {
                    one_entry(FaultEntry::ClockSkew {
                        node: 0,
                        at_ns,
                        offset_ns,
                    })
                };
                skew(sign * env.eps_ns)
                    .validate(&env)
                    .unwrap_or_else(|e| panic!("[{kind:?}] |offset| = eps refused: {e:?}"));
                match skew(sign * (env.eps_ns + 1)).validate(&env) {
                    Err(Inadmissible::SkewBeyondEps { eps_ns, .. }) => {
                        assert_eq!(eps_ns, env.eps_ns, "[{kind:?}]");
                    }
                    other => panic!("[{kind:?}] eps+1 skew accepted: {other:?}"),
                }
            }
        }

        if let Some(&(src, dst)) = env.edges.first() {
            if env.allow_spike {
                let spike = |delay_ns| {
                    one_entry(FaultEntry::DelaySpike {
                        src,
                        dst,
                        seq: 0,
                        delay_ns,
                    })
                };
                for delay in [env.d1_ns, env.d2_ns] {
                    spike(delay)
                        .validate(&env)
                        .unwrap_or_else(|e| panic!("[{kind:?}] boundary delay refused: {e:?}"));
                }
                for delay in [env.d1_ns - 1, env.d2_ns + 1] {
                    assert!(
                        matches!(
                            spike(delay).validate(&env),
                            Err(Inadmissible::DelayOutOfBounds { .. })
                        ),
                        "[{kind:?}] out-of-bounds spike {delay} accepted"
                    );
                }
            }
            if env.allow_dup {
                let dup = |delay_ns| {
                    one_entry(FaultEntry::Duplicate {
                        src,
                        dst,
                        seq: 0,
                        delay_ns,
                    })
                };
                dup(env.d2_ns)
                    .validate(&env)
                    .unwrap_or_else(|e| panic!("[{kind:?}] boundary duplicate refused: {e:?}"));
                assert!(
                    matches!(
                        dup(env.d2_ns + 1).validate(&env),
                        Err(Inadmissible::DelayOutOfBounds { .. })
                    ),
                    "[{kind:?}] d2+1 duplicate accepted"
                );
            }
            if env.allow_drop {
                assert!(
                    env.max_seq >= env.max_drops,
                    "[{kind:?}] not enough distinct seqs to exhaust the drop budget"
                );
                let drops = |count: u32| FaultPlan {
                    entries: (0..count)
                        .map(|seq| FaultEntry::Drop { src, dst, seq })
                        .collect(),
                };
                drops(env.max_drops)
                    .validate(&env)
                    .unwrap_or_else(|e| panic!("[{kind:?}] in-budget drops refused: {e:?}"));
                assert!(
                    matches!(
                        drops(env.max_drops + 1).validate(&env),
                        Err(Inadmissible::TooManyDrops { .. })
                    ),
                    "[{kind:?}] budget+1 drops accepted"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full shrinker contract in one pass: still-failing, subset,
    /// 1-minimal, idempotent — or empty if the input never failed.
    #[test]
    fn shrinker_contract(seed in 0u64..1_000_000, kind_ix in 0usize..14, k in 2u64..6, m in 1u64..4) {
        let plan = gen_plan(seed, kind_ix);
        let mut fails = |p: &FaultPlan| bad(p, k) >= m;
        let shrunk = shrink_entries(&plan, &mut fails);

        if bad(&plan, k) < m {
            // A passing plan has no counterexample to preserve.
            prop_assert!(shrunk.is_empty());
            return Ok(());
        }

        // 1. The shrunk plan still fails.
        prop_assert!(bad(&shrunk, k) >= m);

        // 2. Multiset-subset of the original: nothing is invented.
        for entry in &shrunk.entries {
            let in_shrunk = shrunk.entries.iter().filter(|e| *e == entry).count();
            let in_plan = plan.entries.iter().filter(|e| *e == entry).count();
            prop_assert!(in_shrunk <= in_plan, "entry {entry:?} multiplied");
        }

        // 3. 1-minimal: removing any single entry makes it pass.
        for i in 0..shrunk.len() {
            let mut entries = shrunk.entries.clone();
            entries.remove(i);
            prop_assert!(
                bad(&FaultPlan { entries }, k) < m,
                "entry {i} of the shrunk plan is removable"
            );
        }

        // 4. Idempotent: shrinking a shrunk plan changes nothing.
        let again = shrink_entries(&shrunk, &mut fails);
        prop_assert_eq!(again, shrunk);
    }

    /// Plans that pass shrink to empty even when probing is expensive —
    /// the shrinker must not run ddmin at all on a passing plan.
    #[test]
    fn passing_plans_shrink_to_empty_in_one_probe(seed in 0u64..1_000_000, kind_ix in 0usize..14) {
        let plan = gen_plan(seed, kind_ix);
        let mut probes = 0u64;
        let mut fails = |_: &FaultPlan| {
            probes += 1;
            false
        };
        let shrunk = shrink_entries(&plan, &mut fails);
        prop_assert!(shrunk.is_empty());
        prop_assert_eq!(probes, 1);
    }

    /// Generator plans are always admissible in the envelope they were
    /// generated for, whatever the scenario (the explorer never runs an
    /// illegal adversary).
    #[test]
    fn generated_plans_are_admissible(seed in 0u64..1_000_000, kind_ix in 0usize..14) {
        let kinds = ScenarioKind::all();
        let env = ScenarioConfig::default_for(kinds[kind_ix % kinds.len()]).envelope();
        let plan = FaultPlan::generate(seed, &env, 8);
        prop_assert!(plan.validate(&env).is_ok(), "{:?}", plan.validate(&env));
    }
}
