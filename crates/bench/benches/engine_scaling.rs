//! Criterion bench: incremental vs scan-everything engine on the
//! token-ring burst workload (see `psync_bench::ring`).
//!
//! Reported as events per second in `EXPERIMENTS.md` §E9. The horizon is
//! chosen per ring size so every measurement replays roughly the same
//! number of events (~4096), isolating per-event engine overhead from run
//! length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_bench::ring::{ring_horizon, run_ring_incremental, run_ring_reference};

const TARGET_EVENTS: usize = 4096;

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for n in [2usize, 8, 32, 128] {
        let horizon = ring_horizon(n, TARGET_EVENTS);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| {
                let run = run_ring_incremental(n, horizon);
                assert!(!run.execution.is_empty());
                run.execution.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, &n| {
            b.iter(|| {
                let run = run_ring_reference(n, horizon);
                assert!(!run.execution.is_empty());
                run.execution.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
