//! Criterion bench: what does attaching an observer cost?
//!
//! Three configurations of the incremental engine on the token-ring
//! burst workload (`psync_bench::ring`, ~4096 events per run):
//!
//! * `detached` — no observer registered: the hook dispatch loop iterates
//!   an empty vector, the baseline;
//! * `noop` — [`NoopObserver`] attached: pays virtual dispatch for every
//!   hook invocation but does no work, isolating the cost of the hook
//!   plumbing itself;
//! * `metrics` — [`psync_obs::EngineMetrics`] attached via a
//!   [`psync_obs::MetricsHub`]: counters and histograms on every
//!   scheduling point, event, and advance — the realistic upper bound.
//!
//! The detached-vs-noop gap is the number quoted in `EXPERIMENTS.md` §E12
//! as the "zero-cost when detached, cheap when attached" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_bench::ring::{ring_horizon, run_ring_incremental, run_ring_incremental_observed};
use psync_executor::NoopObserver;
use psync_obs::MetricsHub;

const TARGET_EVENTS: usize = 4096;

fn bench_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(10);
    for n in [8usize, 32] {
        let horizon = ring_horizon(n, TARGET_EVENTS);
        group.bench_with_input(BenchmarkId::new("detached", n), &n, |b, &n| {
            b.iter(|| {
                let run = run_ring_incremental(n, horizon);
                assert!(!run.execution.is_empty());
                run.execution.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("noop", n), &n, |b, &n| {
            b.iter(|| {
                let run = run_ring_incremental_observed(n, horizon, Box::new(NoopObserver));
                assert!(!run.execution.is_empty());
                run.execution.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("metrics", n), &n, |b, &n| {
            b.iter(|| {
                let hub = MetricsHub::new();
                let run =
                    run_ring_incremental_observed(n, horizon, Box::new(hub.engine_observer()));
                assert!(!run.execution.is_empty());
                let snapshot = hub.snapshot();
                assert_eq!(snapshot.counter("engine.steps"), run.execution.len() as u64);
                run.execution.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
