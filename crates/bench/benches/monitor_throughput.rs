//! Monitor throughput: exact vs approximate judging of million-event
//! traces (ISSUE 9, reported in `EXPERIMENTS.md` §E18).
//!
//! One workload, three judging pipelines, trace lengths up to 10⁶ events
//! (eight `κ`-classes plus eight unclassified action values, 1 µs event
//! spacing, a slowly drifting ≤ 600 µs offset between reference and
//! observed — comfortably inside ε = 2 ms, so the accept path judges
//! every event):
//!
//! - `posthoc_exact` — what explorer campaigns did before online judging:
//!   materialize the observed trace (clone every action), then run the
//!   offline `eps_equivalent` matcher;
//! - `stream_exact` — `StreamingEps` fed event by event, no observed
//!   trace resident, but the full reference is (O(|reference|) memory);
//! - `stream_approx` — `ApproxEps` with grain = 1 ms: the reference is
//!   compressed to run-length buckets at construction, so memory is
//!   bounded by time-span/grain, and every verdict carries ±err = grain.
//!
//! Besides the criterion sweep this bench writes `BENCH_monitor.json`
//! (override the path with `PSYNC_BENCH_OUT`) and asserts the ISSUE 9
//! acceptance bar on the spot: at 10⁶ events the approximate mode judges
//! ≥ 3× the events/s of the exact post-hoc mode with a working set ≥ 20×
//! smaller, the exact streaming witness equals the offline one, the
//! approximate witness sits within ±err of it, a planted violation is
//! rejected by every pipeline, and `ShardedEps` returns the sequential
//! verdict for every shard count. `PSYNC_BENCH_SMOKE=1` caps the sweep at
//! 10⁵ events and skips the throughput-ratio assertion (CI runners have
//! no quiet cores to promise ratios on) while keeping every correctness
//! assertion.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_automata::relations::{eps_equivalent, ClassMap, RelationError, Witness};
use psync_automata::{Action, TimedTrace};
use psync_obs::{ApproxEps, ShardedEps, StreamingEps};
use psync_time::{Duration, Time};

/// A heap-allocated event label — the realistic (cache-unfriendly) case
/// for the exact pipelines, which keep every label resident.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Evt(String);

impl Action for Evt {
    fn name(&self) -> &'static str {
        "evt"
    }
}

const EPS: Duration = Duration::from_millis(2);
const GRAIN: Duration = Duration::from_millis(1);
const SPACING_NS: i64 = 1_000;

fn smoke() -> bool {
    std::env::var("PSYNC_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn lengths() -> Vec<usize> {
    if smoke() {
        vec![10_000, 100_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

/// Eight classes keyed by the first byte, everything else unclassified.
fn classes() -> ClassMap<Evt> {
    ClassMap::by(|a: &Evt| match a.0.as_bytes().first() {
        Some(c @ b'a'..=b'h') => Some(usize::from(c - b'a')),
        _ => None,
    })
}

/// The `i`-th action: every ninth event is one of eight unclassified
/// values (matched per value), the rest rotate through the classes with a
/// varying payload so action equality is not a constant-compare.
fn action(i: usize) -> Evt {
    if i % 9 == 8 {
        Evt(format!("x{}", i % 8))
    } else {
        Evt(format!("{}:{:03}", (b'a' + (i % 8) as u8) as char, i % 199))
    }
}

fn reference_time(i: usize) -> Time {
    Time::ZERO + Duration::from_nanos(i as i64 * SPACING_NS)
}

/// A triangle-wave offset in [0, 600 µs] changing by ≤ 1 µs per 1024
/// events: large enough to cross grain-lattice cells, slow enough that
/// observed times stay non-decreasing, small enough to stay inside ε.
fn drift(i: usize) -> Duration {
    let phase = (i / 1024) % 1200;
    Duration::from_micros(phase.min(1200 - phase) as i64)
}

fn reference(n: usize) -> TimedTrace<Evt> {
    TimedTrace::from_pairs((0..n).map(|i| (action(i), reference_time(i))))
}

/// The observed event stream, as the engine would hand it to observers.
fn stream(n: usize) -> Vec<(Evt, Time)> {
    (0..n)
        .map(|i| (action(i), reference_time(i) + drift(i)))
        .collect()
}

/// The status-quo pipeline: materialize the observed trace, then run the
/// offline matcher.
fn posthoc_exact(
    reference: &TimedTrace<Evt>,
    stream: &[(Evt, Time)],
    classes: &ClassMap<Evt>,
) -> Result<Witness, RelationError<Evt>> {
    let observed = TimedTrace::from_pairs(stream.iter().map(|(a, t)| (a.clone(), *t)));
    eps_equivalent(reference, &observed, EPS, classes)
}

fn stream_exact(
    reference: &TimedTrace<Evt>,
    stream: &[(Evt, Time)],
    classes: &ClassMap<Evt>,
) -> Result<Witness, RelationError<Evt>> {
    let mut m = StreamingEps::new(reference, EPS, classes);
    for (a, t) in stream {
        m.observe(a, *t);
    }
    m.finish()
}

/// Runs the approximate monitor and polls its resident-bytes high-water.
fn stream_approx(
    reference: &TimedTrace<Evt>,
    stream: &[(Evt, Time)],
    classes: &ClassMap<Evt>,
) -> (Result<Witness, RelationError<Evt>>, usize) {
    let mut m = ApproxEps::new(reference, EPS, GRAIN, classes);
    let mut high = m.memory_bytes();
    for (i, (a, t)) in stream.iter().enumerate() {
        m.observe(a, *t);
        if i % 4096 == 0 {
            high = high.max(m.memory_bytes());
        }
    }
    high = high.max(m.memory_bytes());
    let verdict = match m.finish() {
        Ok(w) => {
            assert_eq!(w.err, GRAIN);
            Ok(w.witness)
        }
        Err(v) => {
            assert_eq!(v.err, GRAIN);
            Err(v.error)
        }
    };
    (verdict, high)
}

/// What the exact monitors keep resident: the reference entries, their
/// string payloads, and one lane index per reference event.
fn exact_resident_bytes(reference: &TimedTrace<Evt>) -> usize {
    let entries = reference.len() * std::mem::size_of::<(Evt, Time)>();
    let payloads: usize = reference.iter().map(|(a, _)| a.0.len()).sum();
    let lane_indices = reference.len() * std::mem::size_of::<usize>();
    entries + payloads + lane_indices
}

/// Median wall time of `runs` executions, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The differential and sharding pins, run at every length regardless of
/// smoke mode.
fn assert_verdicts(
    n: usize,
    reference: &TimedTrace<Evt>,
    stream_events: &[(Evt, Time)],
    classes: &ClassMap<Evt>,
    approx_verdict: &Result<Witness, RelationError<Evt>>,
) {
    let offline = posthoc_exact(reference, stream_events, classes).expect("clean trace accepted");
    let exact = stream_exact(reference, stream_events, classes).expect("clean trace accepted");
    assert_eq!(exact, offline, "streaming and offline witnesses differ");
    let approx = approx_verdict
        .as_ref()
        .expect("clean trace accepted approximately");
    let gap = if approx.max_deviation > exact.max_deviation {
        approx.max_deviation - exact.max_deviation
    } else {
        exact.max_deviation - approx.max_deviation
    };
    assert!(
        gap < GRAIN,
        "approximate witness {approx:?} outside ±err of exact {exact:?}"
    );
    assert_eq!(approx.matched, exact.matched);

    // Lane-sharded exact judging is verdict-identical to sequential.
    let observed = TimedTrace::from_pairs(stream_events.iter().map(|(a, t)| (a.clone(), *t)));
    for shards in [1, 2, 4] {
        let sharded = ShardedEps::new(reference, EPS, classes, shards)
            .check(&observed)
            .expect("sharded check accepts the clean trace");
        assert_eq!(sharded, exact, "shards={shards} diverged at n={n}");
    }

    // A planted violation (last event pushed ε + 2·err late) is rejected
    // by every pipeline, and the approximate rejection survives the
    // tightened bound — the reject half of the ±err contract.
    let mut bad = stream_events.to_vec();
    let last = bad.last_mut().expect("non-empty stream");
    last.1 = last.1 + EPS + GRAIN + GRAIN;
    assert!(matches!(
        stream_approx(reference, &bad, classes).0,
        Err(RelationError::TimeBound { .. })
    ));
    assert!(stream_exact(reference, &bad, classes).is_err());
    assert!(posthoc_exact(reference, &bad, classes).is_err());
    let mut tightened = StreamingEps::new(reference, EPS - GRAIN, classes);
    for (a, t) in &bad {
        tightened.observe(a, *t);
    }
    assert!(
        tightened.finish().is_err(),
        "approx rejected but exact accepts at ε − err"
    );
}

fn bench_monitor_throughput(c: &mut Criterion) {
    let classes = classes();
    let n = 100_000;
    let reference_trace = reference(n);
    let events = stream(n);
    let mut group = c.benchmark_group("monitor_throughput");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("posthoc_exact", n), &n, |b, _| {
        b.iter(|| black_box(posthoc_exact(&reference_trace, &events, &classes)));
    });
    group.bench_with_input(BenchmarkId::new("stream_exact", n), &n, |b, _| {
        b.iter(|| black_box(stream_exact(&reference_trace, &events, &classes)));
    });
    group.bench_with_input(BenchmarkId::new("stream_approx", n), &n, |b, _| {
        b.iter(|| {
            let _ = black_box(stream_approx(&reference_trace, &events, &classes));
        });
    });
    group.finish();
    write_artifact(&classes);
}

fn write_artifact(classes: &ClassMap<Evt>) {
    let smoke = smoke();
    let runs = if smoke { 3 } else { 5 };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut entries = Vec::new();
    let mut peak: Option<(f64, f64)> = None; // (posthoc ms, approx ms) at max n
    for n in lengths() {
        let reference_trace = reference(n);
        let events = stream(n);
        let (approx_verdict, approx_mem) = stream_approx(&reference_trace, &events, classes);
        assert_verdicts(n, &reference_trace, &events, classes, &approx_verdict);
        let exact_mem = exact_resident_bytes(&reference_trace);
        assert!(
            approx_mem * 20 < exact_mem,
            "approximate working set {approx_mem} B is not ≥ 20× under the exact {exact_mem} B"
        );
        let mut record = |mode: &str, ms: f64, mem: usize| {
            let events_per_sec = (n as f64 / (ms / 1e3)) as u64;
            entries.push(format!(
                "    {{\"events\": {n}, \"mode\": \"{mode}\", \"median_ms\": {ms:.3}, \
                 \"events_per_sec\": {events_per_sec}, \"memory_bytes\": {mem}}}"
            ));
            ms
        };
        let posthoc_ms = record(
            "posthoc_exact",
            median_ms(runs, || {
                black_box(posthoc_exact(&reference_trace, &events, classes)).ok();
            }),
            exact_mem,
        );
        record(
            "stream_exact",
            median_ms(runs, || {
                black_box(stream_exact(&reference_trace, &events, classes)).ok();
            }),
            exact_mem,
        );
        let approx_ms = record(
            "stream_approx",
            median_ms(runs, || {
                let _ = black_box(stream_approx(&reference_trace, &events, classes));
            }),
            approx_mem,
        );
        // Lane-sharded exact judging over the pre-materialized trace:
        // verdict-pinned in `assert_verdicts`; the timings record thread
        // overhead on a 1-core host and scaling headroom on real cores.
        let observed = TimedTrace::from_pairs(events.iter().map(|(a, t)| (a.clone(), *t)));
        for shards in [2, 4] {
            let checker = ShardedEps::new(&reference_trace, EPS, classes, shards);
            record(
                &format!("sharded_exact_s{shards}"),
                median_ms(runs, || {
                    black_box(checker.check(&observed)).ok();
                }),
                exact_mem,
            );
        }
        peak = Some((posthoc_ms, approx_ms));
    }
    let (posthoc_ms, approx_ms) = peak.expect("at least one length");
    let speedup = posthoc_ms / approx_ms;
    let json = format!(
        "{{\n  \"bench\": \"monitor_throughput\",\n  \"smoke\": {smoke},\n  \
         \"host_parallelism\": {host_parallelism},\n  \"eps_ns\": {},\n  \"grain_ns\": {},\n  \
         \"speedup_approx_vs_posthoc_at_peak\": {speedup:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        EPS.as_nanos(),
        GRAIN.as_nanos(),
        entries.join(",\n")
    );
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_monitor.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("monitor_throughput: wrote {path}"),
        Err(e) => eprintln!("monitor_throughput: could not write {path}: {e}"),
    }
    if !smoke {
        assert!(
            speedup >= 3.0,
            "approximate judging is only {speedup:.2}× the exact post-hoc mode at 10⁶ events"
        );
    }
}

criterion_group!(benches, bench_monitor_throughput);
criterion_main!(benches);
