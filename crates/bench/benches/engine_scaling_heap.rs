//! Criterion bench: the wake-up-heap engine at ring sizes the flat scan
//! could never reach.
//!
//! Where `engine_scaling.rs` compares the two engines at small `n`, this
//! bench pushes the heap engine to `n ∈ {32, 128, 1024, 4096}` on two
//! token-ring workloads (see `psync_bench::ring`):
//!
//! * **dense** — every node holds [`TOKENS_PER_NODE`] tokens, so each
//!   simulated millisecond is a burst of `2·n·TOKENS_PER_NODE` events;
//! * **sparse** — a single token circulates, so at any instant all but
//!   one forwarder hints `Never` and all but one channel sits idle: the
//!   workload where per-advance cost is pure scheduler overhead.
//!
//! Reported in `EXPERIMENTS.md` §E15. Besides the criterion sweep the
//! bench writes `BENCH_engine.json` (override with `PSYNC_BENCH_OUT`):
//! events-per-second tables for both engines on both workloads, with the
//! scan-everything [`ReferenceEngine`] measured on *truncated* event
//! budgets at large `n` (its O(n)-per-event loop would otherwise run for
//! minutes) — throughputs are per-event rates, so the comparison stays
//! fair. The artifact asserts the headline claim: the heap engine is at
//! least 5× the reference at `n = 1024` on the dense ring. CI uploads
//! the file as a build artifact; the committed copy at the repo root
//! records the perf trajectory at review time.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_bench::ring::{
    build_ring_engine, build_ring_reference, build_sparse_ring_engine, build_sparse_ring_reference,
    ring_horizon, sparse_ring_horizon, TOKENS_PER_NODE,
};

const SIZES: [usize; 4] = [32, 128, 1024, 4096];

/// Event budget for every heap-engine measurement.
const HEAP_EVENTS: usize = 16_384;

/// Truncated reference budgets per ring size: enough events for a stable
/// per-event rate, small enough that the O(n) scan finishes promptly.
fn reference_budget(n: usize) -> usize {
    match n {
        32 => 8192,
        128 => 4096,
        1024 => 128,
        _ => 32,
    }
}

fn bench_heap_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling_heap");
    group.sample_size(10);
    for n in SIZES {
        let horizon = ring_horizon(n, HEAP_EVENTS * 2);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            b.iter(|| {
                let mut engine = build_ring_engine(n, horizon);
                let run = engine.run_until_events(HEAP_EVENTS).expect("dense run");
                assert!(run.execution.len() >= HEAP_EVENTS);
                run.execution.len()
            });
        });
        let sparse_horizon = sparse_ring_horizon(HEAP_EVENTS * 2);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, &n| {
            b.iter(|| {
                let mut engine = build_sparse_ring_engine(n, sparse_horizon);
                let run = engine.run_until_events(HEAP_EVENTS).expect("sparse run");
                assert!(!run.execution.is_empty());
                run.execution.len()
            });
        });
    }
    group.finish();
    write_artifact();
}

/// Median over `runs` samples of `(run-phase milliseconds, events)` —
/// engine construction happens inside `f` but outside its timed window.
fn median_run(runs: usize, mut f: impl FnMut() -> (f64, usize)) -> (f64, usize) {
    let mut samples: Vec<(f64, usize)> = (0..runs).map(|_| f()).collect();
    samples.sort_unstable_by(|a, b| f64::total_cmp(&a.0, &b.0));
    samples[samples.len() / 2]
}

fn events_per_sec(ms: f64, events: usize) -> f64 {
    events as f64 / (ms / 1e3)
}

fn row(workload: &str, engine: &str, n: usize, ms: f64, events: usize) -> String {
    format!(
        "    {{\"workload\": \"{workload}\", \"engine\": \"{engine}\", \"n\": {n}, \
         \"events\": {events}, \"median_ms\": {ms:.3}, \"events_per_sec\": {:.0}}}",
        events_per_sec(ms, events)
    )
}

fn write_artifact() {
    let mut entries = Vec::new();
    let mut dense_rate = [0.0f64; 2]; // [heap, reference] at n = 1024
    for n in SIZES {
        let budget = reference_budget(n);
        let horizon = ring_horizon(n, HEAP_EVENTS * 2);
        let (ms, events) = median_run(5, || {
            let mut engine = build_ring_engine(n, horizon);
            let t0 = Instant::now();
            let run = engine.run_until_events(HEAP_EVENTS).expect("dense heap");
            (
                t0.elapsed().as_secs_f64() * 1e3,
                black_box(run.execution.len()),
            )
        });
        entries.push(row("dense", "heap", n, ms, events));
        if n == 1024 {
            dense_rate[0] = events_per_sec(ms, events);
        }
        let (ms, events) = median_run(3, || {
            let mut engine = build_ring_reference(n, horizon);
            let t0 = Instant::now();
            let run = engine.run_until_events(budget).expect("dense reference");
            (
                t0.elapsed().as_secs_f64() * 1e3,
                black_box(run.execution.len()),
            )
        });
        entries.push(row("dense", "reference", n, ms, events));
        if n == 1024 {
            dense_rate[1] = events_per_sec(ms, events);
        }

        let sparse_horizon = sparse_ring_horizon(HEAP_EVENTS * 2);
        let (ms, events) = median_run(5, || {
            let mut engine = build_sparse_ring_engine(n, sparse_horizon);
            let t0 = Instant::now();
            let run = engine.run_until_events(HEAP_EVENTS).expect("sparse heap");
            (
                t0.elapsed().as_secs_f64() * 1e3,
                black_box(run.execution.len()),
            )
        });
        entries.push(row("sparse", "heap", n, ms, events));
        let (ms, events) = median_run(3, || {
            let mut engine = build_sparse_ring_reference(n, sparse_horizon);
            let t0 = Instant::now();
            let run = engine.run_until_events(budget).expect("sparse reference");
            (
                t0.elapsed().as_secs_f64() * 1e3,
                black_box(run.execution.len()),
            )
        });
        entries.push(row("sparse", "reference", n, ms, events));
    }
    let speedup = dense_rate[0] / dense_rate[1];
    let json = format!(
        "{{\n  \"bench\": \"engine_scaling_heap\",\n  \
         \"tokens_per_node_dense\": {TOKENS_PER_NODE},\n  \
         \"heap_event_budget\": {HEAP_EVENTS},\n  \
         \"dense_speedup_n1024\": {speedup:.1},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Benches run with the package dir as cwd; default to the workspace
    // root so the artifact lands next to the committed copy.
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("engine_scaling_heap: wrote {path}"),
        Err(e) => eprintln!("engine_scaling_heap: could not write {path}: {e}"),
    }
    assert!(
        speedup >= 5.0,
        "heap engine only {speedup:.1}x the reference at n=1024 on the dense ring"
    );
}

criterion_group!(benches, bench_heap_scaling);
criterion_main!(benches);
