//! Criterion bench: explorer campaign throughput vs worker count.
//!
//! Runs the default heartbeat campaign (generate → run → judge → shrink
//! per case) at `cases ∈ {64, 256}` on `jobs ∈ {1, 2, 4, 8}` workers.
//! Reported in `EXPERIMENTS.md` §E13. Because the parallel runner promises
//! a bit-identical `CampaignReport` for every worker count, the speedup is
//! pure scheduling — the same work in a different order — so the curve
//! measures pool overhead at low core counts and scaling headroom at high
//! ones.
//!
//! Besides the criterion sweep this bench writes `BENCH_campaign.json`
//! (override the path with `PSYNC_BENCH_OUT`): per-configuration median
//! wall times, a `identical_reports` flag re-verified on the spot by
//! comparing every parallel report against the sequential one, and the
//! worst-case `speedup_jobs4_vs_jobs1`. The recorded `host_parallelism`
//! is honest about what that speedup means: on a 1-thread host the curve
//! measures pool overhead and no speedup is claimed; with real cores the
//! bench *asserts* jobs=4 beats jobs=1. CI uploads the file as a build
//! artifact; the committed copy at the repo root records the perf
//! trajectory at review time.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_explorer::{run_campaign_jobs, CampaignConfig, ScenarioConfig};

const CASES: [u64; 2] = [64, 256];
const JOBS: [usize; 4] = [1, 2, 4, 8];

fn campaign(cases: u64) -> CampaignConfig {
    CampaignConfig {
        cases,
        ..CampaignConfig::default()
    }
}

fn bench_campaign_scaling(c: &mut Criterion) {
    let scenario = ScenarioConfig::heartbeat_default();
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for cases in CASES {
        let config = campaign(cases);
        for jobs in JOBS {
            group.bench_with_input(
                BenchmarkId::new(format!("jobs{jobs}"), cases),
                &jobs,
                |b, &jobs| {
                    b.iter(|| {
                        let report = run_campaign_jobs(&config, &scenario, jobs);
                        assert!(report.failures.is_empty());
                        report.stats.events
                    });
                },
            );
        }
    }
    group.finish();
    write_artifact(&scenario);
}

/// Median wall time of `runs` executions, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn write_artifact(scenario: &ScenarioConfig) {
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut entries = Vec::new();
    let mut identical = true;
    let mut speedup_jobs4 = f64::INFINITY;
    for cases in CASES {
        let config = campaign(cases);
        let sequential = run_campaign_jobs(&config, scenario, 1);
        let mut by_jobs = [0.0f64; JOBS.len()];
        for (slot, jobs) in JOBS.into_iter().enumerate() {
            identical &= run_campaign_jobs(&config, scenario, jobs) == sequential;
            let ms = median_ms(5, || {
                black_box(run_campaign_jobs(&config, scenario, jobs));
            });
            by_jobs[slot] = ms;
            entries.push(format!(
                "    {{\"scenario\": \"heartbeat\", \"cases\": {cases}, \"jobs\": {jobs}, \
                 \"events\": {}, \"median_ms\": {ms:.3}}}",
                sequential.stats.events
            ));
        }
        // jobs=1 is slot 0, jobs=4 is slot 2; keep the worst (smallest)
        // speedup over the case counts so the assertion is the honest one.
        speedup_jobs4 = speedup_jobs4.min(by_jobs[0] / by_jobs[2]);
    }
    let json = format!(
        "{{\n  \"bench\": \"campaign_scaling\",\n  \"host_parallelism\": {host_parallelism},\n  \
         \"identical_reports\": {identical},\n  \"speedup_jobs4_vs_jobs1\": {speedup_jobs4:.2},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Benches run with the package dir as cwd; default to the workspace
    // root so the artifact lands next to the committed copy.
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("campaign_scaling: wrote {path}"),
        Err(e) => eprintln!("campaign_scaling: could not write {path}: {e}"),
    }
    assert!(
        identical,
        "parallel campaign reports diverged from the sequential run"
    );
    // On a single hardware thread jobs=4 can only add pool overhead, so
    // the speedup claim is asserted only where real cores exist; the
    // recorded host_parallelism tells readers which regime a committed
    // artifact measured.
    if host_parallelism > 1 {
        assert!(
            speedup_jobs4 > 1.0,
            "jobs=4 did not beat jobs=1 on a {host_parallelism}-thread host \
             (speedup {speedup_jobs4:.2})"
        );
    }
}

criterion_group!(benches, bench_campaign_scaling);
criterion_main!(benches);
