//! Criterion bench: measured synchronization ε̂ vs channel jitter and
//! drift.
//!
//! Runs the honest [`ProbeSync`] demo fleet (3 nodes, 300 ms horizon)
//! over a grid of channel upper bounds `d₂ ∈ {2, 3, 5} ms` (with
//! `d₁ = 1 ms` fixed) × base drift `∈ {0, 200, 400} ppm`, and reports
//! the achieved skew certificate ε̂ against two yardsticks: the a-priori
//! `2ε` prior every node starts from, and the analytic envelope
//! `predicted_eps_hat` the E17 property tests pin. Reported in
//! `EXPERIMENTS.md` §E17.
//!
//! Besides the criterion sweep this bench writes `BENCH_sync.json`
//! (override the path with `PSYNC_BENCH_OUT`): per-grid-point ε̂, prior,
//! predicted bound and median fleet wall time, plus a `within_bound`
//! flag re-verified on the spot. CI uploads the file as a build
//! artifact; the committed copy at the repo root records the measured
//! bound at review time.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_sync::{build_sync_fleet, predicted_eps_hat, rho_max, FleetSpec, MeasuredEps};
use psync_time::Duration;

const D2_MS: [i64; 3] = [2, 3, 5];
const DRIFT_PPM: [i64; 3] = [0, 200, 400];

fn spec(d2_ms: i64, base_ppm: i64) -> FleetSpec {
    let mut s = FleetSpec::demo(3, 0xE17_BE7C ^ ((d2_ms as u64) << 8) ^ base_ppm as u64);
    s.d2 = Duration::from_millis(d2_ms);
    s.base_ppm = base_ppm;
    s
}

/// Runs the fleet to its horizon and returns the certified ε̂ in ns.
fn eps_hat_ns(s: &FleetSpec) -> i64 {
    let run = build_sync_fleet(s).run().expect("fleet runs clean");
    MeasuredEps::from_execution(&run.execution)
        .final_eps_hat()
        .expect("fleet certifies within the horizon")
        .as_nanos()
}

fn bench_sync_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_eps");
    group.sample_size(10);
    for d2_ms in D2_MS {
        for ppm in DRIFT_PPM {
            let s = spec(d2_ms, ppm);
            group.bench_with_input(
                BenchmarkId::new(format!("d2_{d2_ms}ms"), ppm),
                &s,
                |b, s| b.iter(|| black_box(eps_hat_ns(s))),
            );
        }
    }
    group.finish();
    write_artifact();
}

/// Median wall time of `runs` executions, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn write_artifact() {
    let mut entries = Vec::new();
    let mut within = true;
    for d2_ms in D2_MS {
        for ppm in DRIFT_PPM {
            let s = spec(d2_ms, ppm);
            let hat = eps_hat_ns(&s);
            let prior = (s.eps * 2).as_nanos();
            let bound =
                predicted_eps_hat(s.d1, s.d2, rho_max(s.nodes, s.base_ppm), s.horizon).as_nanos();
            within &= hat <= bound;
            let ms = median_ms(5, || {
                black_box(eps_hat_ns(&s));
            });
            entries.push(format!(
                "    {{\"d1_ms\": 1, \"d2_ms\": {d2_ms}, \"base_ppm\": {ppm}, \
                 \"eps_hat_ns\": {hat}, \"prior_2eps_ns\": {prior}, \
                 \"predicted_bound_ns\": {bound}, \"median_ms\": {ms:.3}}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"sync_eps\",\n  \"nodes\": 3,\n  \"horizon_ms\": 300,\n  \
         \"within_bound\": {within},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Benches run with the package dir as cwd; default to the workspace
    // root so the artifact lands next to the committed copy.
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sync.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("sync_eps: wrote {path}"),
        Err(e) => eprintln!("sync_eps: could not write {path}: {e}"),
    }
    assert!(
        within,
        "a grid point's measured ε̂ exceeded the predicted bound"
    );
}

criterion_group!(benches, bench_sync_eps);
criterion_main!(benches);
