//! Criterion bench: engine throughput on the D_C register scenario as the
//! node count grows (experiment E9's timing half).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_bench::Scenario;

fn bench_dc_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("dc_register_run");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario = Scenario {
                n,
                ops_per_node: 5,
                ..Scenario::default_with(17)
            };
            b.iter(|| {
                let exec = scenario.run_dc();
                assert!(!exec.is_empty());
                exec.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dc_run);
criterion_main!(benches);
