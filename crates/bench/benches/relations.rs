//! Criterion bench: the `=_{ε,κ}` and `≤_{δ,K}` trace matchers on traces
//! of growing length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_automata::relations::{delta_shifted, eps_equivalent, ClassMap};
use psync_automata::TimedTrace;
use psync_time::{Duration, Time};

fn make_traces(len: usize) -> (TimedTrace<&'static str>, TimedTrace<&'static str>) {
    const ACTIONS: [&str; 4] = ["a", "b", "c", "d"];
    let base: TimedTrace<&'static str> = (0..len)
        .map(|i| {
            (
                ACTIONS[i % 4],
                Time::ZERO + Duration::from_millis(i as i64 * 3),
            )
        })
        .collect();
    // Perturb each action by ±1 ms deterministically (preserving per-class
    // order because actions of one class are 12 ms apart).
    let perturbed: TimedTrace<&'static str> = (0..len)
        .map(|i| {
            let jitter = if i % 2 == 0 { 1 } else { -1 };
            (
                ACTIONS[i % 4],
                Time::ZERO + Duration::from_millis(i as i64 * 3 + jitter),
            )
        })
        .collect();
    (base, perturbed)
}

fn classes() -> ClassMap<&'static str> {
    ClassMap::by(|a: &&str| match *a {
        "a" => Some(0),
        "b" => Some(1),
        "c" => Some(2),
        _ => Some(3),
    })
}

fn bench_relations(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_relations");
    for len in [100usize, 1_000, 10_000] {
        let (base, perturbed) = make_traces(len);
        let cls = classes();
        group.bench_with_input(BenchmarkId::new("eps_equivalent", len), &len, |b, _| {
            b.iter(|| {
                eps_equivalent(&base, &perturbed, Duration::from_millis(1), &cls)
                    .expect("related")
                    .matched
            })
        });
        // For ≤_δ the right trace must only move forward: reuse base vs a
        // +1 ms uniformly shifted copy.
        let shifted: TimedTrace<&'static str> = base
            .iter()
            .map(|(a, t)| (*a, t + Duration::from_millis(1)))
            .collect();
        group.bench_with_input(BenchmarkId::new("delta_shifted", len), &len, |b, _| {
            b.iter(|| {
                delta_shifted(&base, &shifted, Duration::from_millis(1), &cls)
                    .expect("related")
                    .matched
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relations);
criterion_main!(benches);
