//! Criterion bench: checkpoint-resumed shrink probes vs from-scratch
//! probes on planted-bug campaigns.
//!
//! Every shrink probe of a failing case answers "does this candidate
//! plan still fail?". The straight driver answers by re-running the
//! case from event zero; the checkpointed driver resumes from a
//! snapshot of the failing base run taken just before the probe's first
//! divergence, so it re-executes only the suffix the candidate can
//! actually change. Reported in `EXPERIMENTS.md` §E14.
//!
//! Besides the criterion sweep this bench writes `BENCH_shrink.json`
//! (override the path with `PSYNC_BENCH_OUT`): for each campaign size,
//! the median wall time of both probe modes, the exact number of events
//! each mode re-executed during shrinking (from the campaign
//! telemetry), the resulting ratio, and an `identical_reports` flag
//! re-verified on the spot by comparing the two modes' full
//! `CampaignReport`s. CI uploads the file as a build artifact; the
//! committed copy at the repo root records the perf trajectory at
//! review time.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_explorer::{run_campaign_with_telemetry, CampaignConfig, ScenarioConfig};

const CASES: [u64; 2] = [32, 96];

/// The acceptance scenario: the demonstration bug (a boundary delay
/// spike delivered 1 ns after `d₂`) planted in the heartbeat channel,
/// so a sizable fraction of cases fail and every failing case shrinks.
fn scenario() -> ScenarioConfig {
    ScenarioConfig::heartbeat_default().with_bug(1)
}

fn campaign(cases: u64, checkpointed: bool) -> CampaignConfig {
    CampaignConfig {
        cases,
        checkpointed_shrink: checkpointed,
        ..CampaignConfig::default()
    }
}

fn bench_shrink_scaling(c: &mut Criterion) {
    let scenario = scenario();
    let mut group = c.benchmark_group("shrink_scaling");
    group.sample_size(10);
    for cases in CASES {
        for (mode, checkpointed) in [("resumed", true), ("straight", false)] {
            let config = campaign(cases, checkpointed);
            group.bench_with_input(BenchmarkId::new(mode, cases), &config, |b, config| {
                b.iter(|| {
                    let (report, _) = run_campaign_with_telemetry(config, &scenario, 1);
                    assert!(!report.failures.is_empty());
                    report.stats.shrink_probes
                });
            });
        }
    }
    group.finish();
    write_artifact(&scenario);
}

/// Median wall time of `runs` executions, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn write_artifact(scenario: &ScenarioConfig) {
    let mut entries = Vec::new();
    let mut identical = true;
    let mut min_ratio = f64::INFINITY;
    for cases in CASES {
        let (resumed, resumed_cost) =
            run_campaign_with_telemetry(&campaign(cases, true), scenario, 1);
        let (straight, straight_cost) =
            run_campaign_with_telemetry(&campaign(cases, false), scenario, 1);
        identical &= resumed == straight;
        assert!(
            !resumed.failures.is_empty(),
            "the planted bug produced no failures at {cases} cases — nothing was shrunk"
        );
        let ratio = straight_cost.shrink_events as f64 / resumed_cost.shrink_events.max(1) as f64;
        min_ratio = min_ratio.min(ratio);
        let resumed_ms = median_ms(5, || {
            black_box(run_campaign_with_telemetry(
                &campaign(cases, true),
                scenario,
                1,
            ));
        });
        let straight_ms = median_ms(5, || {
            black_box(run_campaign_with_telemetry(
                &campaign(cases, false),
                scenario,
                1,
            ));
        });
        entries.push(format!(
            "    {{\"scenario\": \"heartbeat+bug1ns\", \"cases\": {cases}, \
             \"failures\": {}, \"shrink_probes\": {}, \
             \"straight_shrink_events\": {}, \"resumed_shrink_events\": {}, \
             \"recording_runs\": {}, \"checkpoints\": {}, \"cache_hits\": {}, \
             \"event_ratio\": {ratio:.2}, \
             \"straight_median_ms\": {straight_ms:.3}, \"resumed_median_ms\": {resumed_ms:.3}}}",
            resumed.failures.len(),
            resumed.stats.shrink_probes,
            straight_cost.shrink_events,
            resumed_cost.shrink_events,
            resumed_cost.recording_runs,
            resumed_cost.checkpoints,
            resumed_cost.cache_hits,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"shrink_scaling\",\n  \"identical_reports\": {identical},\n  \
         \"min_event_ratio\": {min_ratio:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Benches run with the package dir as cwd; default to the workspace
    // root so the artifact lands next to the committed copy.
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shrink.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("shrink_scaling: wrote {path}"),
        Err(e) => eprintln!("shrink_scaling: could not write {path}: {e}"),
    }
    assert!(
        identical,
        "checkpoint-resumed campaign reports diverged from the straight runs"
    );
    assert!(
        min_ratio >= 2.0,
        "checkpoint resume saved less than 2x shrink events (min ratio {min_ratio:.2})"
    );
}

criterion_group!(benches, bench_shrink_scaling);
criterion_main!(benches);
