//! Live-backend load generation: register throughput and latency
//! percentiles vs the synchronization bound ε, on real threads.
//!
//! Drives [`psync_live::LiveRegister`] — one OS thread per node,
//! monotonic clocks at a measured ε̂, in-process wires with measured
//! delays — through a closed-loop register workload over a sweep of ε
//! floors. The paper prices Algorithm S's operations in ε (read
//! `2ε + c + δ`, write `d₂ + 2ε − c`, Theorem 6.5), so raising ε must
//! cost latency and therefore closed-loop throughput; this bench
//! measures that on the wall clock. Reported in `EXPERIMENTS.md` §E19.
//!
//! Writes `BENCH_live.json` (override with `PSYNC_BENCH_OUT`): per-ε
//! ops/sec, latency percentiles, the measured ε̂, the worst wire delay,
//! and the monitor/oracle verdicts, all re-checked on the spot. With
//! `PSYNC_BENCH_SMOKE=1` the sweep shrinks to one short point and the
//! cleanliness assertions are skipped (CI machines do not owe us a quiet
//! wall clock).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use psync_executor::{Driver, StopReason};
use psync_live::{judge_live_register, LiveConfig, LiveRegister, LiveReport};
use psync_time::{DelayBounds, Duration};

fn smoke() -> bool {
    std::env::var("PSYNC_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn eps_floors_ms() -> Vec<i64> {
    if smoke() {
        vec![1]
    } else {
        vec![1, 4, 16]
    }
}

fn config(eps_floor_ms: i64) -> LiveConfig {
    LiveConfig {
        nodes: 3,
        ops_per_node: if smoke() { 3 } else { 10 },
        eps_floor: Duration::from_millis(eps_floor_ms),
        think: DelayBounds::new(Duration::from_millis(1), Duration::from_millis(3))
            .expect("static bounds are valid"),
        quantum: std::time::Duration::from_micros(200),
        budget: std::time::Duration::from_secs(30),
        seed: 0xE19_11FE ^ (eps_floor_ms as u64),
        ..LiveConfig::default()
    }
}

struct Sample {
    report: LiveReport,
    posthoc_violations: usize,
    completed: bool,
}

fn run_once(eps_floor_ms: i64) -> Sample {
    let cfg = config(eps_floor_ms);
    let bounds = cfg.bounds;
    let nodes = cfg.nodes;
    let mut live = LiveRegister::new(cfg);
    let run = live.drive().expect("live run completes");
    let completed = run.stop == StopReason::Quiescent;
    let report = live.take_report().expect("report recorded");
    let posthoc = judge_live_register(&run.execution, nodes, report.eps_hat, bounds);
    Sample {
        report,
        posthoc_violations: posthoc.len(),
        completed,
    }
}

fn bench_live_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_throughput");
    group.sample_size(10);
    // Criterion measures the smallest-ε point only: each iteration is a
    // full wall-clock run, so the sweep lives in the artifact instead.
    group.bench_function("eps_floor_1ms", |b| {
        b.iter(|| black_box(run_once(1).report.ops_completed));
    });
    group.finish();
    write_artifact();
}

fn write_artifact() {
    let mut entries = Vec::new();
    let mut clean = true;
    for eps_ms in eps_floors_ms() {
        let s = run_once(eps_ms);
        let r = &s.report;
        clean &= s.completed && r.monitor.violations.is_empty() && s.posthoc_violations == 0;
        entries.push(format!(
            "    {{\"eps_floor_ms\": {eps_ms}, \"eps_hat_ns\": {}, \"ops\": {}, \
             \"ops_per_sec\": {:.2}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"max_latency_ns\": {}, \"read_bound_ns\": {}, \"write_bound_ns\": {}, \
             \"deliveries\": {}, \"max_delivery_delay_ns\": {}, \
             \"monitor_violations\": {}, \"posthoc_violations\": {}, \"completed\": {}}}",
            r.eps_hat.as_nanos(),
            r.ops_completed,
            r.ops_per_sec,
            r.latency.p50.as_nanos(),
            r.latency.p95.as_nanos(),
            r.latency.p99.as_nanos(),
            r.latency.max.as_nanos(),
            r.read_latency.as_nanos(),
            r.write_latency.as_nanos(),
            r.deliveries,
            r.max_delivery_delay.as_nanos(),
            r.monitor.violations.len(),
            s.posthoc_violations,
            s.completed,
        ));
    }
    let cfg = config(1);
    let json = format!(
        "{{\n  \"bench\": \"live_throughput\",\n  \"backend\": \"live\",\n  \
         \"nodes\": {},\n  \"ops_per_node\": {},\n  \"d1_ms\": {},\n  \"d2_ms\": {},\n  \
         \"smoke\": {},\n  \"clean\": {clean},\n  \"runs\": [\n{}\n  ]\n}}\n",
        cfg.nodes,
        cfg.ops_per_node,
        cfg.bounds.min().as_nanos() / 1_000_000,
        cfg.bounds.max().as_nanos() / 1_000_000,
        smoke(),
        entries.join(",\n")
    );
    let path = std::env::var("PSYNC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_live.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("live_throughput: wrote {path}"),
        Err(e) => eprintln!("live_throughput: could not write {path}: {e}"),
    }
    if !smoke() {
        assert!(
            clean,
            "a live sweep point violated its monitors or oracles (see {path})"
        );
    }
}

criterion_group!(benches, bench_live_throughput);
criterion_main!(benches);
