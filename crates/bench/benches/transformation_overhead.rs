//! Criterion bench: the runtime cost of each model tier — the same
//! register workload executed in `D_T`, `D_C` and `D_M`.
//!
//! The paper's pipeline trades latency bounds for realism; this bench
//! measures what the *simulator* pays for each tier (the MMT tier's τ/TICK
//! machinery dominates).

use criterion::{criterion_group, criterion_main, Criterion};
use psync_core::{build_dc, build_dm, build_dt, DmNodeConfig, NodeSpec};
use psync_executor::{ClockStrategy, PerfectClock};
use psync_mmt::{StepPolicy, TickConfig};
use psync_net::{MaxDelay, Script, Topology};
use psync_register::{AlgorithmS, RegMsg, RegisterOp, RegisterParams, Value};
use psync_time::{DelayBounds, Duration, Time};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn us(n: i64) -> Duration {
    Duration::from_micros(n)
}

struct Fixture {
    topo: Topology,
    physical: DelayBounds,
    eps: Duration,
    ell: Duration,
    params: RegisterParams,
    script: Vec<(Time, RegisterOp)>,
    horizon: Time,
}

fn fixture() -> Fixture {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let ell = us(200);
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_composed(eps, n as i64, ell).max(),
        c: ms(2),
        delta: us(100),
        read_slack: eps * 2,
    };
    let mut script = Vec::new();
    let mut t = Time::ZERO + ms(10);
    for round in 0..4u32 {
        for i in topo.nodes() {
            let op = if (round + i.0 as u32).is_multiple_of(2) {
                RegisterOp::Write {
                    node: i,
                    value: Value::unique(i, round),
                }
            } else {
                RegisterOp::Read { node: i }
            };
            script.push((t, op));
            t += ms(30);
        }
    }
    let horizon = t + ms(50);
    Fixture {
        topo,
        physical,
        eps,
        ell,
        params,
        script,
        horizon,
    }
}

impl Fixture {
    fn algorithms(&self) -> Vec<NodeSpec<RegMsg, RegisterOp>> {
        self.topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, self.params.clone())))
            .collect()
    }

    fn workload(&self) -> Script<RegMsg, RegisterOp> {
        Script::new(self.script.clone(), |op: &RegisterOp| op.is_response())
    }
}

fn bench_models(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("model_tier");
    group.sample_size(20);

    group.bench_function("dt", |b| {
        b.iter(|| {
            let mut engine = build_dt(&f.topo, f.physical, f.algorithms(), |_, _| {
                Box::new(MaxDelay)
            })
            .timed(f.workload())
            .horizon(f.horizon)
            .build();
            engine.run().unwrap().execution.len()
        });
    });

    group.bench_function("dc", |b| {
        b.iter(|| {
            let strategies = f
                .topo
                .nodes()
                .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
                .collect();
            let mut engine = build_dc(
                &f.topo,
                f.physical,
                f.eps,
                f.algorithms(),
                strategies,
                |_, _| Box::new(MaxDelay),
            )
            .timed(f.workload())
            .horizon(f.horizon)
            .build();
            engine.run().unwrap().execution.len()
        });
    });

    group.bench_function("dm", |b| {
        b.iter(|| {
            let configs = f
                .topo
                .nodes()
                .map(|_| DmNodeConfig {
                    ell: f.ell,
                    step_policy: StepPolicy::Lazy,
                    tick: TickConfig::honest(f.eps, f.ell),
                })
                .collect();
            let mut engine = build_dm(&f.topo, f.physical, f.algorithms(), configs, |_, _| {
                Box::new(MaxDelay)
            })
            .timed(f.workload())
            .horizon(f.horizon)
            .build();
            engine.run().unwrap().execution.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
