//! Criterion bench: the history checkers (linearizability and
//! ε-superlinearizability) on histories of growing size and concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psync_net::NodeId;
use psync_register::history::{OpKind, Operation};
use psync_register::Value;
use psync_time::{Duration, Time};
use psync_verify::{check_linearizable, check_superlinearizable};

fn t(n: i64) -> Time {
    Time::ZERO + Duration::from_millis(n)
}

/// A concurrent but linearizable history: `nodes` writers/readers doing
/// `per_node` overlapping operations.
fn make_history(nodes: usize, per_node: usize) -> Vec<Operation> {
    let mut ops = Vec::new();
    for k in 0..per_node {
        let base = (k as i64) * 20;
        for node in 0..nodes {
            let off = node as i64;
            if node == 0 {
                ops.push(Operation {
                    node: NodeId(node),
                    kind: OpKind::Write {
                        value: Value((k + 1) as u64),
                    },
                    invoked: t(base + off),
                    responded: Some(t(base + 15 + off)),
                });
            } else {
                // Readers overlapping the write may see old or new; use
                // the *previous* value so both orders stay feasible.
                let seen = if k == 0 { Value(0) } else { Value(k as u64) };
                ops.push(Operation {
                    node: NodeId(node),
                    kind: OpKind::Read { returned: seen },
                    invoked: t(base + off),
                    responded: Some(t(base + 10 + off)),
                });
            }
        }
    }
    ops.sort_by_key(|o| o.invoked);
    ops
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearizability_checker");
    for (nodes, per_node) in [(3usize, 50usize), (5, 50), (5, 200)] {
        let ops = make_history(nodes, per_node);
        assert!(check_linearizable(&ops, Value(0)).holds());
        group.bench_with_input(
            BenchmarkId::new("linearizable", format!("{nodes}x{per_node}")),
            &ops,
            |b, ops| b.iter(|| check_linearizable(ops, Value(0)).holds()),
        );
        group.bench_with_input(
            BenchmarkId::new("superlinearizable", format!("{nodes}x{per_node}")),
            &ops,
            |b, ops| {
                b.iter(|| check_superlinearizable(ops, Value(0), Duration::from_millis(1)).holds())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
