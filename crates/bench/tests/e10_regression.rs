//! Regression pin for the E10 table (generalized shared objects).
//!
//! The table in `EXPERIMENTS.md` once drifted a couple of nanoseconds
//! from what the experiments binary actually printed: the rows had been
//! transcribed before `DriftClock::next_clock` was fixed to use
//! euclidean division (truncating division rounded negative-drift clock
//! readings toward zero, shifting some deadline firings by 1 ns) and
//! were never re-generated. This test pins the exact post-fix means so
//! the committed table and the binary can never silently disagree
//! again: if an engine or clock change legitimately moves these numbers,
//! the test failure is the reminder to re-run
//! `cargo run --release -p psync-bench --bin experiments` and refresh
//! the document.

use psync_bench::{e10_generalized_objects, Scenario};
use psync_time::Duration;

#[test]
fn e10_table_matches_the_committed_experiments_document() {
    // Exactly the scenario the experiments binary uses.
    let base = Scenario {
        ops_per_node: 20,
        ..Scenario::default_with(2026)
    };
    let rows = e10_generalized_objects(&base, 8);
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert!(matches!(row.object, "counter" | "grow-set"));
        assert_eq!(row.runs, 8, "{}: fleet size", row.object);
        assert_eq!(row.violations, 0, "{}: linearizability", row.object);
        // The committed EXPERIMENTS.md §E10 values. Both objects share
        // the same workload schedule, so their latency profiles agree
        // sample-for-sample — the object semantics only affect the
        // linearizability check, never the timing.
        assert_eq!(
            row.query_mean,
            Duration::from_nanos(4_099_368),
            "{}: mean query latency drifted from EXPERIMENTS.md",
            row.object
        );
        assert_eq!(
            row.update_mean,
            Duration::from_nanos(4_998_977),
            "{}: mean update latency drifted from EXPERIMENTS.md",
            row.object
        );
    }
}
