//! Allocation-count regression test for the engine hot loop.
//!
//! Installs [`CountingAlloc`] as the global allocator of this test binary
//! and runs the deterministic ring workload (`n = 32`, ~4096 events) that
//! `engine_scaling` benchmarks, in both token flavours:
//!
//! - the `String`-token ("heavy") ring, where every action clone is a real
//!   heap allocation — this pins the allocation diet: the quotient
//!   *allocations / event* must stay strictly below the pre-diet baseline,
//!   so reintroducing a per-event clone (action clone on the pick path,
//!   `String` node names, double-lookup duplicate tracking) fails this
//!   test instead of silently shifting the benchmarks;
//! - the classic `u32`-token ring, where action clones are plain copies —
//!   this is a loose sanity bound that catches gross regressions (a new
//!   per-event `String`/`Vec` allocation) without being sensitive to the
//!   diet itself.
//!
//! Both engines are built *outside* the counted region: the diet targets
//! the run loop, and one-time construction (routing table, name interning)
//! is allowed to allocate freely.
//!
//! The binary is otherwise single-threaded, so the before/after counter
//! difference is exact for the measured region.

use psync_bench::alloc_count::CountingAlloc;
use psync_bench::ring::{
    build_ring_engine, build_ring_heavy_engine, ring_horizon, run_ring_heavy, run_ring_incremental,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Heavy-ring (`String` tokens) allocations per event measured at the
/// pre-diet seed (commit a53cf8e): ring n=32, horizon sized for 4096
/// events, run loop only (327375 allocations / 3968 events). The bulk of
/// it was the candidate list: every enabled action of every component was
/// re-cloned into the scheduler's slice on every event. The diet keeps
/// the candidate list alive across events and splices only the dirty
/// components' segments, clones exactly the one picked action, and moves
/// it into the event record, landing at 20.151 allocs/event — a 4×
/// reduction. Kept for context; the pinned bound is the ceiling below.
const PRE_DIET_HEAVY_ALLOCS_PER_EVENT: f64 = 82.504;

/// Pinned bound for the post-diet engine. The workload and the engine are
/// fully deterministic, so the measured 20.151 allocs/event is exact and
/// repeatable; the ceiling leaves ~0.85 allocs/event of headroom, which
/// still trips on a single reintroduced per-event clone (+1.0) — and
/// spectacularly on a return of per-candidate re-cloning (~80).
const HEAVY_ALLOCS_PER_EVENT_CEILING: f64 = 21.0;

/// Loose ceiling for the `u32`-token ring. Action clones are allocation
/// free here, so the diet barely moves this figure (~6.4 measured both
/// before and after); the bound only exists to catch a new per-event heap
/// allocation sneaking into the hot loop.
const U32_ALLOCS_PER_EVENT_CEILING: f64 = 7.5;

fn measured_events(events: usize) -> f64 {
    let events = events as f64;
    assert!(events > 0.0);
    events
}

#[test]
fn heavy_ring_n32_allocations_per_event_beat_pre_diet_baseline() {
    let n = 32;
    let horizon = ring_horizon(n, 4096);
    // Warm up once so lazy process-wide setup is paid before measuring.
    let warm = run_ring_heavy(n, horizon);
    let events = measured_events(warm.execution.len());

    let mut engine = build_ring_heavy_engine(n, horizon);
    let (run, allocs) = ALLOC.count(move || engine.run().expect("ring run"));
    assert_eq!(run.execution.len() as f64, events);

    let per_event = allocs as f64 / events;
    eprintln!(
        "heavy ring n={n}: {allocs} allocations / {events} events = {per_event:.3} allocs/event \
         (ceiling {HEAVY_ALLOCS_PER_EVENT_CEILING}, pre-diet baseline \
         {PRE_DIET_HEAVY_ALLOCS_PER_EVENT})"
    );
    assert!(
        per_event < HEAVY_ALLOCS_PER_EVENT_CEILING,
        "allocation diet regressed: {per_event:.3} allocs/event >= ceiling \
         {HEAVY_ALLOCS_PER_EVENT_CEILING} (pre-diet baseline was \
         {PRE_DIET_HEAVY_ALLOCS_PER_EVENT})"
    );
}

#[test]
fn u32_ring_n32_allocations_per_event_stay_bounded() {
    let n = 32;
    let horizon = ring_horizon(n, 4096);
    let warm = run_ring_incremental(n, horizon);
    let events = measured_events(warm.execution.len());

    let mut engine = build_ring_engine(n, horizon);
    let (run, allocs) = ALLOC.count(move || engine.run().expect("ring run"));
    assert_eq!(run.execution.len() as f64, events);

    let per_event = allocs as f64 / events;
    eprintln!(
        "u32 ring n={n}: {allocs} allocations / {events} events = {per_event:.3} allocs/event \
         (ceiling {U32_ALLOCS_PER_EVENT_CEILING})"
    );
    assert!(
        per_event < U32_ALLOCS_PER_EVENT_CEILING,
        "hot loop grew a per-event allocation: {per_event:.3} allocs/event >= ceiling \
         {U32_ALLOCS_PER_EVENT_CEILING}"
    );
}
