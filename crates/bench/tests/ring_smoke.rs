//! Large-ring smoke tests: the wake-up-heap engine at `n = 1024`, sized
//! to stay debug-build-friendly (CI runs these unoptimized).
//!
//! The full-scale throughput numbers live in
//! `benches/engine_scaling_heap.rs`; these tests pin correctness at the
//! same scale — the heap engine must replay the reference's execution on
//! a 1024-node sparse ring, and must sustain a dense 1024-node burst
//! without the lazy heaps drifting out of sync with component state.

use psync_bench::ring::{
    build_ring_engine, build_sparse_ring_engine, build_sparse_ring_reference, ring_horizon,
    sparse_ring_horizon,
};
use psync_executor::StopReason;

const N: usize = 1024;

/// Sparse differential at n = 1024: one token, 64 events, both engines.
/// The reference is O(n) per event even when idle, so the budget is
/// small — but every event crosses an advance that pops the heap in the
/// presence of 2047 `Never`-hinted components.
#[test]
fn sparse_1024_ring_matches_the_reference() {
    let horizon = sparse_ring_horizon(64);
    let a = build_sparse_ring_engine(N, horizon)
        .run()
        .expect("heap run");
    let b = build_sparse_ring_reference(N, horizon)
        .run()
        .expect("reference run");
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.execution, b.execution);
    assert!(a.execution.len() >= 60, "got {}", a.execution.len());
}

/// Dense burst at n = 1024, heap engine only (the reference would need
/// minutes in a debug build): one full simulated millisecond is a burst
/// of `2·1024·4 = 8192` same-instant events. Running 2048 of them
/// exercises intra-burst dirty tracking; the event count and final time
/// are pinned so a scheduling drift cannot pass silently.
#[test]
fn dense_1024_ring_sustains_a_burst() {
    let mut engine = build_ring_engine(N, ring_horizon(N, 8192));
    let run = engine.run_until_events(2048).expect("dense run");
    assert_eq!(run.stop, StopReason::Paused);
    assert_eq!(run.execution.len(), 2048);
    // The first burst: sends at t=0 are still in flight until 1 ms, so
    // every recorded event sits at t=0 or t=1ms.
    let last = run.execution.events().last().expect("nonempty").now;
    assert!(
        last <= psync_time::Time::ZERO + psync_time::Duration::from_millis(1),
        "burst leaked past its instant: {last}"
    );
}
