//! Token-ring scaling scenario for the engine benchmarks.
//!
//! `N` forwarders are arranged in a ring over `N` reordering channels with
//! a deterministic 1 ms hop delay, and every node starts holding
//! [`TOKENS_PER_NODE`] tokens. All tokens move in lockstep, so each
//! millisecond of simulated time is a *burst* of `2·N·TOKENS_PER_NODE`
//! same-instant events: every channel offers its whole batch of due
//! messages at once, and every delivery immediately re-arms the receiving
//! forwarder's send. This is the workload where an incremental engine
//! earns its keep: within a burst only the two components touched by the
//! last event can have changed, while a scan-everything engine re-queries
//! all `2N` components, re-clones every candidate, and re-compares all
//! candidates pairwise — for every single event.
//!
//! The scenario is deliberately deterministic (fixed delays, seeded
//! scheduler) so the incremental and reference engines replay the *same*
//! execution and the benchmark compares pure engine overhead, not
//! different schedules.

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{ActionKind, TimedComponent, WakeHint};
use psync_executor::{Engine, Observer, RandomScheduler, ReferenceEngine, Run};
use psync_net::{Channel, Envelope, MinDelay, MsgId, NodeId, SysAction};
use psync_time::{DelayBounds, Duration, Time};

/// A ring token: an orderable message payload constructible from a global
/// token index.
///
/// The ring is generic over its token type so the benchmarks can compare
/// inline payloads (`u32` — action clones are plain copies) against
/// heap-carrying payloads (`String` — every action clone is a real
/// allocation, which is what the engine's allocation diet eliminates on
/// the pick/record path).
pub trait RingToken: Clone + Ord + Eq + Hash + Debug + 'static {
    /// The `i`-th token, globally unique and ascending in `i`.
    fn from_index(i: u32) -> Self;
}

impl RingToken for u32 {
    fn from_index(i: u32) -> u32 {
        i
    }
}

impl RingToken for String {
    fn from_index(i: u32) -> String {
        // Zero-padded so lexicographic order matches numeric order.
        format!("token-{i:06}")
    }
}

/// Actions of the ring: plain routed messages, no application alphabet.
pub type RingAction = SysAction<u32, &'static str>;

/// Actions of the heap-payload ring variant: every token is a `String`, so
/// each action clone allocates.
pub type HeavyRingAction = SysAction<String, &'static str>;

/// How many tokens each node holds initially. More tokens per node means
/// fatter candidate sets (each channel offers its whole due batch), which
/// is exactly what stresses a scan-everything engine.
pub const TOKENS_PER_NODE: usize = 4;

/// One ring node: holds tokens and forwards each to its successor.
#[derive(Debug, Clone)]
pub struct RingForwarder<M: RingToken = u32> {
    me: NodeId,
    succ: NodeId,
    first_tokens: Vec<M>,
}

/// Tokens currently held (ascending), plus a send counter for unique
/// message ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingForwarderState<M: RingToken = u32> {
    tokens: Vec<M>,
    seq: u32,
}

impl<M: RingToken> RingForwarder<M> {
    /// Creates node `me` of an `n`-ring, initially holding the tokens
    /// `{me, me + n, me + 2n, …}` ([`TOKENS_PER_NODE`] of them — globally
    /// unique and ascending).
    #[must_use]
    pub fn new(me: usize, n: usize) -> Self {
        Self::with_tokens(me, n, TOKENS_PER_NODE)
    }

    /// As [`RingForwarder::new`] with an explicit initial token count —
    /// `0` builds an idle node that only ever relays what it receives.
    #[must_use]
    pub fn with_tokens(me: usize, n: usize, count: usize) -> Self {
        let first_tokens = (0..count)
            .map(|k| M::from_index(u32::try_from(me + k * n).expect("ring size fits u32")))
            .collect();
        RingForwarder {
            me: NodeId(me),
            succ: NodeId((me + 1) % n),
            first_tokens,
        }
    }

    fn envelope(&self, s: &RingForwarderState<M>) -> Envelope<M> {
        Envelope {
            src: self.me,
            dst: self.succ,
            id: MsgId::from_parts(self.me, s.seq),
            payload: s.tokens[0].clone(),
        }
    }
}

impl<M: RingToken> TimedComponent for RingForwarder<M> {
    type Action = SysAction<M, &'static str>;
    type State = RingForwarderState<M>;

    fn name(&self) -> String {
        format!("ring-forwarder({})", self.me)
    }

    fn initial(&self) -> RingForwarderState<M> {
        RingForwarderState {
            tokens: self.first_tokens.clone(),
            seq: 0,
        }
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if env.src == self.me => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.me => Some(ActionKind::Input),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(
        &self,
        s: &RingForwarderState<M>,
        a: &Self::Action,
        _now: Time,
    ) -> Option<RingForwarderState<M>> {
        match a {
            SysAction::Send(env) if env.src == self.me => {
                if s.tokens.is_empty() || *env != self.envelope(s) {
                    return None;
                }
                Some(RingForwarderState {
                    tokens: s.tokens[1..].to_vec(),
                    seq: s.seq + 1,
                })
            }
            SysAction::Recv(env) if env.dst == self.me => {
                let mut tokens = s.tokens.clone();
                let pos = tokens.partition_point(|t| *t < env.payload);
                tokens.insert(pos, env.payload.clone());
                Some(RingForwarderState { tokens, seq: s.seq })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &RingForwarderState<M>, _now: Time) -> Vec<Self::Action> {
        if s.tokens.is_empty() {
            Vec::new()
        } else {
            vec![SysAction::Send(self.envelope(s))]
        }
    }

    fn deadline(&self, s: &RingForwarderState<M>, now: Time) -> Option<Time> {
        // A held token must be forwarded immediately (the engine is eager,
        // so this deadline is only ever *reported*, never violated).
        if s.tokens.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn wake_hint(&self, s: &RingForwarderState<M>, _now: Time) -> WakeHint {
        // Empty-handed forwarders only change by receiving (a step); a
        // holding forwarder's deadline is `now`-dependent, so it may not
        // promise anything across time passage.
        if s.tokens.is_empty() {
            WakeHint::Never
        } else {
            WakeHint::Always
        }
    }
}

/// The fixed scheduler seed: both engines replay the same execution.
pub const RING_SEED: u64 = 42;

fn hop() -> DelayBounds {
    let ms = Duration::from_millis(1);
    DelayBounds::new(ms, ms).expect("valid bounds")
}

/// Horizon giving roughly `target_events` events on an `n`-ring
/// (`2 · n · TOKENS_PER_NODE` events per simulated millisecond).
#[must_use]
pub fn ring_horizon(n: usize, target_events: usize) -> Time {
    let steps = (target_events / (2 * n * TOKENS_PER_NODE)).max(1) as i64;
    Time::ZERO + Duration::from_millis(steps)
}

fn build_ring_components<M: RingToken>(
    n: usize,
) -> Vec<(RingForwarder<M>, Channel<M, &'static str>)> {
    (0..n)
        .map(|i| {
            (
                RingForwarder::new(i, n),
                Channel::new(NodeId(i), NodeId((i + 1) % n), hop(), MinDelay),
            )
        })
        .collect()
}

/// Builds (but does not run) the `n`-ring on the incremental [`Engine`] —
/// lets measurements separate one-time construction cost (routing table,
/// name interning) from the run loop itself. Generic over the token type:
/// `u32` for the classic inline-payload ring, `String` for the
/// heap-payload variant.
#[must_use]
pub fn build_ring_engine_generic<M: RingToken>(
    n: usize,
    horizon: Time,
) -> Engine<SysAction<M, &'static str>> {
    let mut b = Engine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_ring_components::<M>(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build()
}

/// [`build_ring_engine_generic`] at the classic `u32` token type.
#[must_use]
pub fn build_ring_engine(n: usize, horizon: Time) -> Engine<RingAction> {
    build_ring_engine_generic::<u32>(n, horizon)
}

/// [`build_ring_engine_generic`] at `String` tokens: every action clone in
/// the engine costs a heap allocation, making per-event allocation counts
/// sensitive to exactly the clones the allocation diet removed.
#[must_use]
pub fn build_ring_heavy_engine(n: usize, horizon: Time) -> Engine<HeavyRingAction> {
    build_ring_engine_generic::<String>(n, horizon)
}

/// Builds and runs the `n`-ring on the incremental [`Engine`].
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_incremental(n: usize, horizon: Time) -> Run<RingAction> {
    build_ring_engine(n, horizon).run().expect("ring run")
}

/// Builds and runs the `String`-token `n`-ring on the incremental
/// [`Engine`].
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_heavy(n: usize, horizon: Time) -> Run<HeavyRingAction> {
    build_ring_heavy_engine(n, horizon).run().expect("ring run")
}

/// As [`run_ring_incremental`], with an observer attached — the workload
/// for the observer-overhead benchmark (`benches/observer_overhead.rs`).
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_incremental_observed(
    n: usize,
    horizon: Time,
    observer: Box<dyn Observer<RingAction>>,
) -> Run<RingAction> {
    let mut b = Engine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon)
        .observer_boxed(observer);
    for (fwd, ch) in build_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build().run().expect("ring run")
}

/// Builds (but does not run) the `n`-ring on the scan-everything
/// [`ReferenceEngine`] — for measurements that pause the run at an event
/// budget rather than a time horizon.
#[must_use]
pub fn build_ring_reference(n: usize, horizon: Time) -> ReferenceEngine<RingAction> {
    let mut b = ReferenceEngine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build()
}

/// Builds and runs the `n`-ring on the scan-everything
/// [`ReferenceEngine`].
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_reference(n: usize, horizon: Time) -> Run<RingAction> {
    build_ring_reference(n, horizon).run().expect("ring run")
}

/// Components of the *sparse* `n`-ring: node 0 holds one token, every
/// other node starts empty. The workload is the polar opposite of the
/// dense ring — out of `2n` components exactly one forwarder and one
/// channel are ever busy, so at any instant all but a handful of heap
/// entries are `Never`/far-future hints. A scan-everything engine still
/// pays O(n) per event; the wake-up heap pays O(log n).
fn build_sparse_ring_components(n: usize) -> Vec<(RingForwarder, Channel<u32, &'static str>)> {
    (0..n)
        .map(|i| {
            (
                RingForwarder::with_tokens(i, n, usize::from(i == 0)),
                Channel::new(NodeId(i), NodeId((i + 1) % n), hop(), MinDelay),
            )
        })
        .collect()
}

/// Horizon giving roughly `target_events` events on a sparse `n`-ring
/// (one token, one hop — 2 events — per simulated millisecond).
#[must_use]
pub fn sparse_ring_horizon(target_events: usize) -> Time {
    Time::ZERO + Duration::from_millis((target_events / 2).max(1) as i64)
}

/// Builds (but does not run) the sparse `n`-ring on the incremental
/// [`Engine`].
#[must_use]
pub fn build_sparse_ring_engine(n: usize, horizon: Time) -> Engine<RingAction> {
    let mut b = Engine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_sparse_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build()
}

/// Builds (but does not run) the sparse `n`-ring on the scan-everything
/// [`ReferenceEngine`].
#[must_use]
pub fn build_sparse_ring_reference(n: usize, horizon: Time) -> ReferenceEngine<RingAction> {
    let mut b = ReferenceEngine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_sparse_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_produces_the_expected_burst_rate() {
        let run = run_ring_incremental(4, ring_horizon(4, 320));
        // 2 events (recv + send) per token per millisecond; 16 tokens,
        // 10 ms. The very first send of each token costs no recv.
        assert!(run.execution.len() >= 300, "got {}", run.execution.len());
    }

    #[test]
    fn both_engines_replay_the_same_ring_execution() {
        let h = ring_horizon(3, 240);
        let a = run_ring_incremental(3, h);
        let b = run_ring_reference(3, h);
        assert_eq!(a.execution, b.execution);
    }

    #[test]
    fn sparse_ring_circulates_its_single_token() {
        let h = sparse_ring_horizon(64);
        let a = build_sparse_ring_engine(8, h).run().expect("sparse run");
        let b = build_sparse_ring_reference(8, h).run().expect("sparse run");
        assert_eq!(a.execution, b.execution);
        // One send per simulated millisecond (plus the matching recvs).
        assert!(a.execution.len() >= 60, "got {}", a.execution.len());
    }
}
