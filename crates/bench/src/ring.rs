//! Token-ring scaling scenario for the engine benchmarks.
//!
//! `N` forwarders are arranged in a ring over `N` reordering channels with
//! a deterministic 1 ms hop delay, and every node starts holding
//! [`TOKENS_PER_NODE`] tokens. All tokens move in lockstep, so each
//! millisecond of simulated time is a *burst* of `2·N·TOKENS_PER_NODE`
//! same-instant events: every channel offers its whole batch of due
//! messages at once, and every delivery immediately re-arms the receiving
//! forwarder's send. This is the workload where an incremental engine
//! earns its keep: within a burst only the two components touched by the
//! last event can have changed, while a scan-everything engine re-queries
//! all `2N` components, re-clones every candidate, and re-compares all
//! candidates pairwise — for every single event.
//!
//! The scenario is deliberately deterministic (fixed delays, seeded
//! scheduler) so the incremental and reference engines replay the *same*
//! execution and the benchmark compares pure engine overhead, not
//! different schedules.

use psync_automata::{ActionKind, TimedComponent};
use psync_executor::{Engine, Observer, RandomScheduler, ReferenceEngine, Run};
use psync_net::{Channel, Envelope, MinDelay, MsgId, NodeId, SysAction};
use psync_time::{DelayBounds, Duration, Time};

/// Actions of the ring: plain routed messages, no application alphabet.
pub type RingAction = SysAction<u32, &'static str>;

/// How many tokens each node holds initially. More tokens per node means
/// fatter candidate sets (each channel offers its whole due batch), which
/// is exactly what stresses a scan-everything engine.
pub const TOKENS_PER_NODE: usize = 4;

/// One ring node: holds tokens and forwards each to its successor.
#[derive(Debug, Clone)]
pub struct RingForwarder {
    me: NodeId,
    succ: NodeId,
    first_tokens: Vec<u32>,
}

/// Tokens currently held (ascending), plus a send counter for unique
/// message ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingForwarderState {
    tokens: Vec<u32>,
    seq: u32,
}

impl RingForwarder {
    /// Creates node `me` of an `n`-ring, initially holding the tokens
    /// `{me, me + n, me + 2n, …}` ([`TOKENS_PER_NODE`] of them — globally
    /// unique and ascending).
    #[must_use]
    pub fn new(me: usize, n: usize) -> Self {
        let first_tokens = (0..TOKENS_PER_NODE)
            .map(|k| u32::try_from(me + k * n).expect("ring size fits u32"))
            .collect();
        RingForwarder {
            me: NodeId(me),
            succ: NodeId((me + 1) % n),
            first_tokens,
        }
    }

    fn envelope(&self, s: &RingForwarderState) -> Envelope<u32> {
        Envelope {
            src: self.me,
            dst: self.succ,
            id: MsgId::from_parts(self.me, s.seq),
            payload: s.tokens[0],
        }
    }
}

impl TimedComponent for RingForwarder {
    type Action = RingAction;
    type State = RingForwarderState;

    fn name(&self) -> String {
        format!("ring-forwarder({})", self.me)
    }

    fn initial(&self) -> RingForwarderState {
        RingForwarderState {
            tokens: self.first_tokens.clone(),
            seq: 0,
        }
    }

    fn classify(&self, a: &RingAction) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if env.src == self.me => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.me => Some(ActionKind::Input),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(
        &self,
        s: &RingForwarderState,
        a: &RingAction,
        _now: Time,
    ) -> Option<RingForwarderState> {
        match a {
            SysAction::Send(env) if env.src == self.me => {
                if s.tokens.is_empty() || *env != self.envelope(s) {
                    return None;
                }
                Some(RingForwarderState {
                    tokens: s.tokens[1..].to_vec(),
                    seq: s.seq + 1,
                })
            }
            SysAction::Recv(env) if env.dst == self.me => {
                let mut tokens = s.tokens.clone();
                let pos = tokens.partition_point(|&t| t < env.payload);
                tokens.insert(pos, env.payload);
                Some(RingForwarderState { tokens, seq: s.seq })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &RingForwarderState, _now: Time) -> Vec<RingAction> {
        if s.tokens.is_empty() {
            Vec::new()
        } else {
            vec![SysAction::Send(self.envelope(s))]
        }
    }

    fn deadline(&self, s: &RingForwarderState, now: Time) -> Option<Time> {
        // A held token must be forwarded immediately (the engine is eager,
        // so this deadline is only ever *reported*, never violated).
        if s.tokens.is_empty() {
            None
        } else {
            Some(now)
        }
    }
}

/// The fixed scheduler seed: both engines replay the same execution.
pub const RING_SEED: u64 = 42;

fn hop() -> DelayBounds {
    let ms = Duration::from_millis(1);
    DelayBounds::new(ms, ms).expect("valid bounds")
}

/// Horizon giving roughly `target_events` events on an `n`-ring
/// (`2 · n · TOKENS_PER_NODE` events per simulated millisecond).
#[must_use]
pub fn ring_horizon(n: usize, target_events: usize) -> Time {
    let steps = (target_events / (2 * n * TOKENS_PER_NODE)).max(1) as i64;
    Time::ZERO + Duration::from_millis(steps)
}

fn build_ring_components(n: usize) -> Vec<(RingForwarder, Channel<u32, &'static str>)> {
    (0..n)
        .map(|i| {
            (
                RingForwarder::new(i, n),
                Channel::new(NodeId(i), NodeId((i + 1) % n), hop(), MinDelay),
            )
        })
        .collect()
}

/// Builds and runs the `n`-ring on the incremental [`Engine`].
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_incremental(n: usize, horizon: Time) -> Run<RingAction> {
    let mut b = Engine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build().run().expect("ring run")
}

/// As [`run_ring_incremental`], with an observer attached — the workload
/// for the observer-overhead benchmark (`benches/observer_overhead.rs`).
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_incremental_observed(
    n: usize,
    horizon: Time,
    observer: Box<dyn Observer<RingAction>>,
) -> Run<RingAction> {
    let mut b = Engine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon)
        .observer_boxed(observer);
    for (fwd, ch) in build_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build().run().expect("ring run")
}

/// Builds and runs the `n`-ring on the scan-everything
/// [`ReferenceEngine`].
///
/// # Panics
///
/// Panics if the run fails (the ring is well-formed by construction).
#[must_use]
pub fn run_ring_reference(n: usize, horizon: Time) -> Run<RingAction> {
    let mut b = ReferenceEngine::builder()
        .scheduler(RandomScheduler::new(RING_SEED))
        .horizon(horizon);
    for (fwd, ch) in build_ring_components(n) {
        b = b.timed(fwd).timed(ch);
    }
    b.build().run().expect("ring run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_produces_the_expected_burst_rate() {
        let run = run_ring_incremental(4, ring_horizon(4, 320));
        // 2 events (recv + send) per token per millisecond; 16 tokens,
        // 10 ms. The very first send of each token costs no recv.
        assert!(run.execution.len() >= 300, "got {}", run.execution.len());
    }

    #[test]
    fn both_engines_replay_the_same_ring_execution() {
        let h = ring_horizon(3, 240);
        let a = run_ring_incremental(3, h);
        let b = run_ring_reference(3, h);
        assert_eq!(a.execution, b.execution);
    }
}
