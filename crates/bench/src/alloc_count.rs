//! A counting global allocator for allocation-regression tests.
//!
//! The engine's allocation diet (no per-event action clones on the pick
//! path, interned node names, entry-API duplicate tracking) is easy to
//! regress silently: a stray `clone()` in the hot loop costs one heap
//! allocation per event and no test fails. Installing [`CountingAlloc`]
//! as the `#[global_allocator]` of a test binary makes the cost visible:
//! the test runs a deterministic workload, divides the observed
//! allocation count by the event count, and pins the quotient against
//! the pre-diet baseline.
//!
//! The counter is a relaxed atomic — the tests that use it are
//! single-threaded over the measured region, so the count is exact
//! there; outside it the number only ever moves up, which is the safe
//! direction for a "strictly fewer than baseline" assertion.

// The one sanctioned use of `unsafe` in this crate: `GlobalAlloc` is an
// unsafe trait, and this impl delegates verbatim to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `#[global_allocator]` that delegates to [`System`] and counts
/// allocation calls (`alloc` + `realloc`; frees are not counted — the
/// diet is about how often we *ask* for memory).
pub struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter at zero, usable in `static` position.
    #[must_use]
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocs: AtomicU64::new(0),
        }
    }

    /// Allocation calls observed so far.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Allocation calls performed by `f`, measured as a before/after
    /// difference on this counter.
    pub fn count<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let before = self.allocations();
        let out = f();
        (out, self.allocations() - before)
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
