//! Experiment harness: runs the scenarios behind every quantitative claim
//! of the paper and returns the rows printed by the `experiments` binary
//! (recorded in `EXPERIMENTS.md`) and timed by the criterion benches.
//!
//! Experiment index (see `DESIGN.md` §9):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | read `2ε+δ+c`, write `d₂+2ε−c` in the clock model (Thm 6.5) |
//! | E2 | ours vs \[10\]: read `2ε+δ+c` vs `4u`, write `d₂+2ε−c` vs `d₂+3u` |
//! | E3 | trace distortion ≤ ε under Simulation 1 (Thm 4.6/4.7) |
//! | E4 | output shift ≤ `kℓ+2ε+3ℓ` under Simulation 2 (Thm 5.1) |
//! | E5 | clock-time delay in `[max(0,d₁−2ε), d₂+2ε]` (Lemma 4.5) |
//! | E6 | buffering never engages when `d₁ > 2ε`; holds ≤ `2ε−d₁` (§7.2) |
//! | E7 | combined read+write totals, ours vs \[10\] (§6.3) |
//! | E8 | linearizability holds across an adversary fleet; naive transfer of Algorithm L breaks (§6.2) |
//! | E9 | engineering: engine throughput, model overhead |
//! | E10 | the generalized-object extension: counters/grow-sets keep the Theorem 6.5 formulas and object-level linearizability (§6 closing remark) |

// `deny`, not `forbid`: the counting test allocator (`alloc_count`) must
// implement `GlobalAlloc`, which is an unsafe trait; that module opts in
// explicitly and everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod alloc_count;
pub mod ring;

use psync_automata::relations::eps_equivalent;
use psync_automata::{Execution, TimedTrace};
use psync_core::analysis::{duration_stats, flights, DurationStats};
use psync_core::{
    app_trace, build_dc, build_dm, node_classes, output_classes, sim1_witness, sim2_shift_bound,
    DmNodeConfig, NodeSpec,
};
use psync_executor::{
    ClockStrategy, DriftClock, OffsetClock, PerfectClock, RandomScheduler, RandomWalkClock,
    StopReason,
};
use psync_mmt::{StepPolicy, TickConfig};
use psync_net::{MaxDelay, NodeId, Script, SeededDelay, SysAction, Topology};
use psync_register::history::{self, Operation};
use psync_register::{
    build_baseline, AlgorithmS, ClosedLoopWorkload, RegAction, RegMsg, RegisterOp, RegisterParams,
    Value,
};
use psync_time::{DelayBounds, Duration, Time};
use psync_verify::check_linearizable;

/// Milliseconds, shorthand.
#[must_use]
pub fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// Microseconds, shorthand.
#[must_use]
pub fn us(n: i64) -> Duration {
    Duration::from_micros(n)
}

/// A register scenario in the clock model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Node count (complete topology).
    pub n: usize,
    /// Physical link bounds `[d₁, d₂]`.
    pub physical: DelayBounds,
    /// Clock skew bound `ε`.
    pub eps: Duration,
    /// Trade-off knob `c`.
    pub c: Duration,
    /// Settling slack `δ`.
    pub delta: Duration,
    /// Seed for workload, scheduler, delays and jittery clocks.
    pub seed: u64,
    /// Operations per node (closed loop).
    pub ops_per_node: u32,
}

impl Scenario {
    /// A sensible default scenario.
    #[must_use]
    pub fn default_with(seed: u64) -> Scenario {
        Scenario {
            n: 3,
            physical: DelayBounds::new(ms(1), ms(5)).expect("valid"),
            eps: ms(1),
            c: ms(2),
            delta: us(100),
            seed,
            ops_per_node: 10,
        }
    }

    /// Algorithm parameters for the clock model (Theorem 6.5).
    #[must_use]
    pub fn params(&self) -> RegisterParams {
        RegisterParams::for_clock_model(
            &Topology::complete(self.n),
            self.physical,
            self.eps,
            self.c,
            self.delta,
        )
    }

    fn topo(&self) -> Topology {
        Topology::complete(self.n)
    }

    /// The adversarial clock fleet: corner offsets, drift, random walk.
    #[must_use]
    pub fn adversarial_clocks(&self) -> Vec<Box<dyn ClockStrategy>> {
        let eps = self.eps;
        let seed = self.seed;
        (0..self.n)
            .map(|i| -> Box<dyn ClockStrategy> {
                match i % 4 {
                    0 => Box::new(OffsetClock::new(eps, eps)),
                    1 => Box::new(OffsetClock::new(-eps, eps)),
                    2 => Box::new(DriftClock::new(700)),
                    _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
                }
            })
            .collect()
    }

    fn workload(&self) -> ClosedLoopWorkload {
        ClosedLoopWorkload::new(
            &self.topo(),
            self.seed,
            DelayBounds::new(ms(1), ms(6)).expect("valid"),
            self.ops_per_node,
        )
    }

    fn delay_policy(&self) -> impl Fn(NodeId, NodeId) -> Box<dyn psync_net::DelayPolicy> {
        let seed = self.seed;
        move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    }

    /// Runs the transformed Algorithm S in the clock model (`D_C`).
    ///
    /// # Panics
    ///
    /// Panics if the composition errors or the workload fails to finish.
    #[must_use]
    pub fn run_dc(&self) -> Execution<RegAction> {
        let params = self.params();
        self.run_dc_with_params(&params)
    }

    /// As [`Scenario::run_dc`] but with explicit algorithm parameters
    /// (used by E8's naive-transfer variant).
    #[must_use]
    pub fn run_dc_with_params(&self, params: &RegisterParams) -> Execution<RegAction> {
        let topo = self.topo();
        let algorithms = topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect();
        let mut engine = build_dc(
            &topo,
            self.physical,
            self.eps,
            algorithms,
            self.adversarial_clocks(),
            self.delay_policy(),
        )
        .timed(self.workload())
        .scheduler(RandomScheduler::new(self.seed))
        .horizon(Time::ZERO + Duration::from_secs(30))
        .build();
        let run = engine.run().expect("well-formed D_C");
        assert_eq!(run.stop, StopReason::Quiescent, "workload must finish");
        run.execution
    }

    /// Runs the reconstructed baseline in the clock model.
    ///
    /// # Panics
    ///
    /// Panics if the composition errors or the workload fails to finish.
    #[must_use]
    pub fn run_baseline(&self) -> Execution<RegAction> {
        let topo = self.topo();
        let mut engine = build_baseline(
            &topo,
            self.physical,
            self.eps,
            self.adversarial_clocks(),
            self.delay_policy(),
        )
        .timed(self.workload())
        .scheduler(RandomScheduler::new(self.seed))
        .horizon(Time::ZERO + Duration::from_secs(30))
        .build();
        let run = engine.run().expect("well-formed baseline");
        assert_eq!(run.stop, StopReason::Quiescent, "workload must finish");
        run.execution
    }

    /// Extracts the history, asserting well-formedness.
    ///
    /// # Panics
    ///
    /// Panics on malformed traces.
    #[must_use]
    pub fn history(&self, exec: &Execution<RegAction>) -> Vec<Operation> {
        history::extract(&app_trace(exec), self.n).expect("closed loop is well-formed")
    }
}

// ───────────────────────────── E1 ─────────────────────────────

/// One row of experiment E1: measured vs formula latencies at one `c`.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// The trade-off knob.
    pub c: Duration,
    /// Paper: `2ε + δ + c`.
    pub read_formula: Duration,
    /// Measured read latencies.
    pub read_measured: DurationStats,
    /// Paper: `d₂ + 2ε − c`.
    pub write_formula: Duration,
    /// Measured write latencies.
    pub write_measured: DurationStats,
    /// Worst absolute deviation from the formulas (bounded by `2ε`).
    pub worst_deviation: Duration,
}

/// E1: sweep `c` over its legal range and measure operation latencies of
/// the transformed Algorithm S against Theorem 6.5's formulas.
///
/// # Panics
///
/// Panics if a run is malformed or produces no operations of some kind.
#[must_use]
pub fn e1_latency_sweep(base: &Scenario, c_values: &[Duration]) -> Vec<E1Row> {
    c_values
        .iter()
        .map(|&c| {
            let scenario = Scenario { c, ..base.clone() };
            let params = scenario.params();
            let exec = scenario.run_dc();
            let ops = scenario.history(&exec);
            assert!(check_linearizable(&ops, Value::INITIAL).holds());
            let (reads, writes) = history::latency_split(&ops);
            let read_measured = duration_stats(reads.iter().copied()).expect("reads present");
            let write_measured = duration_stats(writes.iter().copied()).expect("writes present");
            let worst = reads
                .iter()
                .map(|r| (*r - params.read_latency()).abs())
                .chain(writes.iter().map(|w| (*w - params.write_latency()).abs()))
                .max()
                .unwrap_or(Duration::ZERO);
            E1Row {
                c,
                read_formula: params.read_latency(),
                read_measured,
                write_formula: params.write_latency(),
                write_measured,
                worst_deviation: worst,
            }
        })
        .collect()
}

// ───────────────────────────── E2 / E7 ─────────────────────────────

/// One row of the comparison of Section 6.3 at one `c`.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// The trade-off knob of our algorithm (the baseline has none).
    pub c: Duration,
    /// Our mean read latency (formula `2ε + δ + c`).
    pub ours_read: Duration,
    /// Baseline mean read latency (formula `4u`, `u = 2ε`).
    pub base_read: Duration,
    /// Our mean write latency (formula `d₂ + 2ε − c`).
    pub ours_write: Duration,
    /// Baseline mean write latency (formula `d₂ + 3u`).
    pub base_write: Duration,
}

impl E2Row {
    /// Combined read+write total for our algorithm.
    #[must_use]
    pub fn ours_combined(&self) -> Duration {
        self.ours_read + self.ours_write
    }

    /// Combined read+write total for the baseline.
    #[must_use]
    pub fn base_combined(&self) -> Duration {
        self.base_read + self.base_write
    }
}

/// E2: both algorithms under the same adversary fleet, sweeping `c`.
///
/// # Panics
///
/// Panics if runs are malformed or non-linearizable.
#[must_use]
pub fn e2_baseline_comparison(base: &Scenario, c_values: &[Duration]) -> Vec<E2Row> {
    let mean = |v: &[Duration]| -> Duration {
        duration_stats(v.iter().copied()).map_or(Duration::ZERO, |s| s.mean)
    };
    let base_exec = base.run_baseline();
    let base_ops = base.history(&base_exec);
    assert!(check_linearizable(&base_ops, Value::INITIAL).holds());
    let (base_reads, base_writes) = history::latency_split(&base_ops);
    let (base_read, base_write) = (mean(&base_reads), mean(&base_writes));
    c_values
        .iter()
        .map(|&c| {
            let scenario = Scenario { c, ..base.clone() };
            let exec = scenario.run_dc();
            let ops = scenario.history(&exec);
            assert!(check_linearizable(&ops, Value::INITIAL).holds());
            let (reads, writes) = history::latency_split(&ops);
            E2Row {
                c,
                ours_read: mean(&reads),
                base_read,
                ours_write: mean(&writes),
                base_write,
            }
        })
        .collect()
}

/// The analytical crossover in `c` beyond which the baseline's read is
/// faster: `c* = 4u − 2ε − δ = 6ε − δ`.
#[must_use]
pub fn e2_read_crossover(eps: Duration, delta: Duration) -> Duration {
    eps * 6 - delta
}

// ───────────────────────────── E3 ─────────────────────────────

/// One row of E3: measured trace distortion at one `ε`.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// The skew bound.
    pub eps: Duration,
    /// Matched visible actions.
    pub matched: usize,
    /// Worst |real − witness| over matched actions.
    pub max_distortion: Duration,
}

/// E3: sweep `ε`, measure the distortion between the recorded `D_C` trace
/// and its `γ_α` witness (Theorem 4.6 bounds it by `ε`).
///
/// # Panics
///
/// Panics if a run is malformed or the relation fails.
#[must_use]
pub fn e3_sim1_distortion(base: &Scenario, eps_values: &[Duration]) -> Vec<E3Row> {
    eps_values
        .iter()
        .map(|&eps| {
            let scenario = Scenario {
                eps,
                ..base.clone()
            };
            let exec = scenario.run_dc();
            let witness = sim1_witness(&exec);
            let trace = app_trace(&exec);
            let classes = node_classes::<RegMsg, RegisterOp>(|op| Some(op.node()));
            let w = eps_equivalent(&witness, &trace, eps, &classes)
                .expect("Theorem 4.6 relation must hold");
            assert!(w.max_deviation <= eps);
            E3Row {
                eps,
                matched: w.matched,
                max_distortion: w.max_deviation,
            }
        })
        .collect()
}

// ───────────────────────────── E4 ─────────────────────────────

/// One row of E4: measured output shift at one `ℓ`.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Step bound `ℓ`.
    pub ell: Duration,
    /// Output-rate bound `k` used.
    pub k: i64,
    /// The bound `kℓ + 2ε + 3ℓ`.
    pub bound: Duration,
    /// Worst measured shift of any output.
    pub max_shift: Duration,
}

/// E4: the scripted `D_C` vs `D_M` comparison of Theorem 5.1, sweeping
/// `ℓ`.
///
/// # Panics
///
/// Panics if a run is malformed or the relation fails.
#[must_use]
pub fn e4_sim2_shift(n: usize, eps: Duration, ell_values: &[Duration]) -> Vec<E4Row> {
    ell_values
        .iter()
        .map(|&ell| {
            let topo = Topology::complete(n);
            let physical = DelayBounds::new(ms(1), ms(5)).expect("valid");
            let k = n as i64;
            let params = RegisterParams {
                peers: topo.nodes().collect(),
                d2_virtual: physical.widen_composed(eps, k, ell).max(),
                c: ms(2),
                delta: us(100),
                read_slack: eps * 2,
            };
            // Widely spaced script.
            let mut script = Vec::new();
            let mut t = Time::ZERO + ms(10);
            for round in 0..4u32 {
                for i in topo.nodes() {
                    let op = if (round + i.0 as u32).is_multiple_of(2) {
                        RegisterOp::Write {
                            node: i,
                            value: Value::unique(i, round),
                        }
                    } else {
                        RegisterOp::Read { node: i }
                    };
                    script.push((t, op));
                    t += ms(40);
                }
            }
            let horizon = t + ms(100);
            let algorithms = || {
                topo.nodes()
                    .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
                    .collect::<Vec<_>>()
            };
            let workload = || Script::new(script.clone(), |op: &RegisterOp| op.is_response());

            let strategies = topo
                .nodes()
                .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
                .collect();
            let mut dc_engine = build_dc(&topo, physical, eps, algorithms(), strategies, |_, _| {
                Box::new(MaxDelay)
            })
            .timed(workload())
            .horizon(horizon)
            .build();
            let dc = app_trace(&dc_engine.run().expect("D_C").execution);

            let configs = topo
                .nodes()
                .map(|_| DmNodeConfig {
                    ell,
                    step_policy: StepPolicy::Lazy,
                    tick: TickConfig::honest(eps, ell),
                })
                .collect();
            let mut dm_engine = build_dm(&topo, physical, algorithms(), configs, |_, _| {
                Box::new(MaxDelay)
            })
            .timed(workload())
            .horizon(horizon)
            .build();
            let dm = app_trace(&dm_engine.run().expect("D_M").execution);

            let bound = sim2_shift_bound(k, eps, ell);
            let classes =
                output_classes::<RegMsg, RegisterOp>(|op| op.is_response().then(|| op.node()));
            let w = psync_core::check_sim2(&dc, &dm, bound, &classes)
                .expect("Theorem 5.1 relation must hold");
            E4Row {
                ell,
                k,
                bound,
                max_shift: w.max_deviation,
            }
        })
        .collect()
}

// ───────────────────────────── E5 ─────────────────────────────

/// One row of E5: the clock-time delay envelope at one `(d₁, d₂, ε)`.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Physical bounds.
    pub physical: DelayBounds,
    /// Skew bound.
    pub eps: Duration,
    /// Lemma 4.5's envelope `[max(0, d₁−2ε), d₂+2ε]`.
    pub envelope: DelayBounds,
    /// Measured clock-time delays (completed messages).
    pub measured: DurationStats,
}

/// E5: measure per-message clock-time delays against Lemma 4.5.
///
/// # Panics
///
/// Panics if a run is malformed or a message violates the envelope.
#[must_use]
pub fn e5_channel_envelope(base: &Scenario, settings: &[(DelayBounds, Duration)]) -> Vec<E5Row> {
    settings
        .iter()
        .map(|&(physical, eps)| {
            let scenario = Scenario {
                physical,
                eps,
                c: Duration::ZERO,
                ..base.clone()
            };
            let exec = scenario.run_dc();
            let envelope = physical.widen_for_skew(eps);
            let delays: Vec<Duration> = flights(&exec)
                .values()
                .filter_map(psync_core::analysis::Flight::clock_delay)
                .collect();
            for d in &delays {
                assert!(
                    *d >= envelope.min() && *d <= envelope.max(),
                    "clock delay {d} outside {envelope}"
                );
            }
            E5Row {
                physical,
                eps,
                envelope,
                measured: duration_stats(delays).expect("messages flowed"),
            }
        })
        .collect()
}

// ───────────────────────────── E6 ─────────────────────────────

/// One row of E6: buffering behavior at one `d₁/ε` setting.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Minimum link delay.
    pub d1: Duration,
    /// Skew bound.
    pub eps: Duration,
    /// Messages observed.
    pub messages: usize,
    /// Messages held by the receive buffer.
    pub held: usize,
    /// Longest hold.
    pub max_hold: Duration,
    /// The analytical bound `max(0, 2ε − d₁)`.
    pub bound: Duration,
}

/// E6: sweep `d₁` against a fixed `ε` under extreme-corner clocks and the
/// fastest delay adversary; report buffering engagement (Section 7.2).
///
/// # Panics
///
/// Panics if a hold exceeds the bound or occurs past the threshold.
#[must_use]
pub fn e6_buffering(n: usize, eps: Duration, d1_values: &[Duration], seed: u64) -> Vec<E6Row> {
    d1_values
        .iter()
        .map(|&d1| {
            let topo = Topology::complete(n);
            let physical = DelayBounds::new(d1, d1 + ms(4)).expect("valid");
            let params = RegisterParams::for_clock_model(&topo, physical, eps, ms(1), us(50));
            let algorithms = topo
                .nodes()
                .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
                .collect();
            let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
                .map(|i| -> Box<dyn ClockStrategy> {
                    if i % 2 == 0 {
                        Box::new(OffsetClock::new(eps, eps))
                    } else {
                        Box::new(OffsetClock::new(-eps, eps))
                    }
                })
                .collect();
            let workload = ClosedLoopWorkload::new(&topo, seed, DelayBounds::exact(ms(2)), 10);
            let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
                Box::new(psync_net::MinDelay)
            })
            .timed(workload)
            .horizon(Time::ZERO + Duration::from_secs(10))
            .build();
            let exec = engine.run().expect("well-formed").execution;

            let all = flights(&exec);
            let holds: Vec<Duration> = all
                .values()
                .filter_map(psync_core::analysis::Flight::hold_time)
                .filter(|h| h.is_positive())
                .collect();
            let bound = (eps * 2 - d1).max_zero();
            let max_hold = duration_stats(holds.iter().copied()).map_or(Duration::ZERO, |s| s.max);
            assert!(max_hold <= bound, "hold {max_hold} exceeds bound {bound}");
            if d1 > eps * 2 {
                assert!(holds.is_empty(), "buffering past the threshold");
            }
            E6Row {
                d1,
                eps,
                messages: all.len(),
                held: holds.len(),
                max_hold,
                bound,
            }
        })
        .collect()
}

// ───────────────────────────── E8 ─────────────────────────────

/// Result of the E8 adversary fleet.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// Runs of the transformed Algorithm S.
    pub s_runs: usize,
    /// Linearizability violations among them (must be 0).
    pub s_violations: usize,
    /// Whether the crafted naive transfer of Algorithm L (no `2ε` read
    /// slack) produced a violation (it should: that is *why* S exists).
    pub naive_l_violated: bool,
}

/// E8: a fleet of seeded adversarial runs of the transformed Algorithm S
/// (expected: zero violations), plus a crafted demonstration that naively
/// transferring Algorithm L — without the superlinearizability slack —
/// breaks in the clock model.
///
/// # Panics
///
/// Panics if runs are malformed.
#[must_use]
pub fn e8_linearizability(base: &Scenario, fleet: usize) -> E8Result {
    let mut s_violations = 0;
    for seed in 0..fleet as u64 {
        let scenario = Scenario {
            seed: base.seed ^ (seed * 7919),
            ..base.clone()
        };
        let ops = scenario.history(&scenario.run_dc());
        if !check_linearizable(&ops, Value::INITIAL).holds() {
            s_violations += 1;
        }
    }

    E8Result {
        s_runs: fleet,
        s_violations,
        naive_l_violated: naive_l_violation_demo(),
    }
}

/// The crafted witness that Algorithm L does not survive the clock
/// transformation: a fast writer next to a slow reader, with the read
/// invoked right after the write's ACK. With read slack `0` the read
/// returns before the slow node applies the update.
fn naive_l_violation_demo() -> bool {
    let n = 2;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).expect("valid");
    let eps = ms(1);
    let delta = us(100);
    // Algorithm L: read_slack = 0, designed for the widened link.
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_for_skew(eps).max(),
        c: Duration::ZERO,
        delta,
        read_slack: Duration::ZERO,
    };
    let d2v = params.d2_virtual;
    // WRITE at node 0 at 10 ms; with the fast clock (+ε) its ACK lands at
    // real 10 + (d'₂ − c) − ε... the crafted read at node 1 starts right
    // after the latest possible ACK and still returns stale.
    let write_at = Time::ZERO + ms(10);
    let ack_by = write_at + d2v; // ACK real time ≤ invocation + write-latency
    let read_at = ack_by + us(1);
    let script: Vec<(Time, RegisterOp)> = vec![
        (
            write_at,
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(77),
            },
        ),
        (read_at, RegisterOp::Read { node: NodeId(1) }),
    ];
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(eps, eps)),  // fast writer
        Box::new(OffsetClock::new(-eps, eps)), // slow reader
    ];
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(Script::new(script, |op: &RegisterOp| op.is_response()))
    .horizon(read_at + ms(50))
    .build();
    let exec = engine.run().expect("well-formed").execution;
    let ops = history::extract(&app_trace(&exec), n).expect("well-formed");
    !check_linearizable(&ops, Value::INITIAL).holds()
}

// ───────────────────────────── E9 ─────────────────────────────

/// One row of E9: engine throughput at one node count.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Node count.
    pub n: usize,
    /// Events in the run.
    pub events: usize,
    /// Wall-clock seconds.
    pub wall: f64,
    /// Events per second.
    pub events_per_sec: f64,
}

/// E9: run the D_C register scenario for growing `n` and measure engine
/// throughput.
///
/// # Panics
///
/// Panics if a run is malformed.
#[must_use]
pub fn e9_throughput(ns: &[usize], ops_per_node: u32, seed: u64) -> Vec<E9Row> {
    ns.iter()
        .map(|&n| {
            let scenario = Scenario {
                n,
                ops_per_node,
                ..Scenario::default_with(seed)
            };
            let start = std::time::Instant::now();
            let exec = scenario.run_dc();
            let wall = start.elapsed().as_secs_f64();
            let events = exec.len();
            E9Row {
                n,
                events,
                wall,
                events_per_sec: events as f64 / wall,
            }
        })
        .collect()
}

// ───────────────────────────── E10 ─────────────────────────────

/// One row of E10: a generalized object under the adversary fleet.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Object name.
    pub object: &'static str,
    /// Runs executed.
    pub runs: usize,
    /// Linearizability violations (must be 0).
    pub violations: usize,
    /// Mean query latency (formula `2ε + δ + c`).
    pub query_mean: Duration,
    /// Mean update latency (formula `d₂ + 2ε − c`).
    pub update_mean: Duration,
}

/// E10: replicated counters and grow-sets through Simulation 1 under the
/// adversary fleet — object-level linearizability plus the register's
/// latency formulas.
///
/// # Panics
///
/// Panics if a run is malformed.
#[must_use]
pub fn e10_generalized_objects(base: &Scenario, fleet: usize) -> Vec<E10Row> {
    let mut rows = Vec::new();
    for (object, per_run) in e10_generalized_objects_detail(base, fleet) {
        let violations = per_run.iter().filter(|r| !r.linearizable).count();
        let queries: Vec<Duration> = per_run.iter().flat_map(|r| r.queries.clone()).collect();
        let updates: Vec<Duration> = per_run.iter().flat_map(|r| r.updates.clone()).collect();
        rows.push(E10Row {
            object,
            runs: fleet,
            violations,
            query_mean: duration_stats(queries).map_or(Duration::ZERO, |s| s.mean),
            update_mean: duration_stats(updates).map_or(Duration::ZERO, |s| s.mean),
        });
    }
    rows
}

/// One E10 run's raw samples (see [`e10_generalized_objects_detail`]).
#[derive(Debug, Clone)]
pub struct E10RunDetail {
    /// Did the run linearize against the object's sequential spec?
    pub linearizable: bool,
    /// Per-operation query latencies, invocation order.
    pub queries: Vec<Duration>,
    /// Per-operation update latencies, invocation order.
    pub updates: Vec<Duration>,
}

/// The raw per-run samples behind [`e10_generalized_objects`] — the pooled
/// table rows above are derived from exactly these. Exposed so the E10
/// regression test can pin the latency distribution (not just the pooled
/// mean) without re-deriving the fleet seeding scheme.
///
/// # Panics
///
/// Panics if a run is malformed.
#[must_use]
pub fn e10_generalized_objects_detail(
    base: &Scenario,
    fleet: usize,
) -> Vec<(&'static str, Vec<E10RunDetail>)> {
    use psync_register::object::{Counter, GrowSet, ObjectSpec};
    use psync_register::{AlgorithmSObj, ObjAction, ObjWorkload};
    use psync_verify::{check_object_linearizable, extract_object_history, ObjOpKind};

    fn app_trace_obj<O: ObjectSpec>(exec: &Execution<ObjAction<O>>) -> TimedTrace<ObjAction<O>> {
        exec.events()
            .iter()
            .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
            .map(|e| (e.action.clone(), e.now))
            .collect()
    }

    fn run_one<O: ObjectSpec>(
        base: &Scenario,
        spec: O,
        seed: u64,
        gen_update: impl Fn(NodeId, u32) -> O::Update + 'static,
    ) -> (bool, Vec<Duration>, Vec<Duration>) {
        let topo = Topology::complete(base.n);
        let params = base.params();
        let algorithms = topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmSObj::new(i, spec.clone(), params.clone())))
            .collect();
        let scenario = Scenario {
            seed,
            ..base.clone()
        };
        let workload = ObjWorkload::<O>::new(
            &topo,
            seed,
            DelayBounds::new(ms(1), ms(6)).expect("valid"),
            base.ops_per_node,
            gen_update,
        );
        let mut engine = build_dc(
            &topo,
            base.physical,
            base.eps,
            algorithms,
            scenario.adversarial_clocks(),
            move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
        )
        .timed(workload)
        .scheduler(RandomScheduler::new(seed))
        .horizon(Time::ZERO + Duration::from_secs(30))
        .build();
        let run = engine.run().expect("well-formed object system");
        assert_eq!(run.stop, StopReason::Quiescent);
        let ops = extract_object_history::<O>(&app_trace_obj(&run.execution), base.n)
            .expect("well-formed");
        let ok = check_object_linearizable(&spec, &ops).holds();
        let mut queries = Vec::new();
        let mut updates = Vec::new();
        for o in &ops {
            if let Some(res) = o.responded {
                match o.kind {
                    ObjOpKind::Query(_) => queries.push(res - o.invoked),
                    ObjOpKind::Update(_) => updates.push(res - o.invoked),
                }
            }
        }
        (ok, queries, updates)
    }

    let mut out = Vec::new();
    for object in ["counter", "grow-set"] {
        let mut per_run = Vec::new();
        for k in 0..fleet as u64 {
            let seed = base.seed ^ (k * 6151);
            let (ok, queries, updates) = if object == "counter" {
                run_one(base, Counter, seed, |node, k| {
                    (node.0 as i64 + 1) * 1000 + i64::from(k)
                })
            } else {
                run_one(base, GrowSet, seed, |node, k| {
                    u8::try_from(node.0 as u32 * 32 + (k % 32)).expect("< 128")
                })
            };
            per_run.push(E10RunDetail {
                linearizable: ok,
                queries,
                updates,
            });
        }
        out.push((object, per_run));
    }
    out
}

/// Counts internal vs visible events — used by the `experiments` binary's
/// overhead table.
#[must_use]
pub fn event_mix<A: psync_automata::Action>(exec: &Execution<A>) -> (usize, usize) {
    let visible = exec.events().iter().filter(|e| e.kind.is_visible()).count();
    (visible, exec.len() - visible)
}

/// Renders an application trace compactly (debug helper for the binary).
#[must_use]
pub fn brief_trace(trace: &TimedTrace<RegAction>, limit: usize) -> String {
    let mut out = String::new();
    for (i, (a, t)) in trace.iter().enumerate() {
        if i >= limit {
            out.push('…');
            break;
        }
        if let SysAction::App(op) = a {
            out.push_str(&format!("{t} {op:?}; "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_respect_formula_within_2eps() {
        let base = Scenario {
            ops_per_node: 4,
            ..Scenario::default_with(3)
        };
        let rows = e1_latency_sweep(&base, &[Duration::ZERO, ms(2)]);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.worst_deviation <= base.eps * 2);
        }
    }

    #[test]
    fn e2_ordering_matches_paper_at_small_c() {
        let base = Scenario {
            ops_per_node: 6,
            ..Scenario::default_with(9)
        };
        let rows = e2_baseline_comparison(&base, &[ms(1)]);
        assert!(rows[0].ours_read < rows[0].base_read);
        assert!(rows[0].ours_write < rows[0].base_write);
        assert!(rows[0].ours_combined() < rows[0].base_combined());
    }

    #[test]
    fn e3_distortion_bounded_by_eps() {
        let base = Scenario {
            ops_per_node: 4,
            ..Scenario::default_with(5)
        };
        for row in e3_sim1_distortion(&base, &[ms(1), ms(2)]) {
            assert!(row.max_distortion <= row.eps);
            assert!(row.matched > 0);
        }
    }

    #[test]
    fn e4_shift_bounded() {
        for row in e4_sim2_shift(2, us(500), &[us(100), us(300)]) {
            assert!(row.max_shift <= row.bound);
        }
    }

    #[test]
    fn e6_threshold_behaviour() {
        let rows = e6_buffering(2, ms(1), &[Duration::ZERO, ms(3)], 4);
        assert!(rows[0].held > 0, "d₁ = 0 with corner clocks must buffer");
        assert_eq!(rows[1].held, 0, "d₁ > 2ε must never buffer");
    }

    #[test]
    fn e8_s_is_clean_and_naive_l_breaks() {
        let base = Scenario {
            ops_per_node: 4,
            ..Scenario::default_with(1)
        };
        let r = e8_linearizability(&base, 3);
        assert_eq!(r.s_violations, 0);
        assert!(r.naive_l_violated, "the crafted L scenario must violate");
    }

    #[test]
    fn e9_produces_throughput() {
        let rows = e9_throughput(&[2], 3, 1);
        assert!(rows[0].events_per_sec > 0.0);
    }
}
