//! Lemma 2.1 across the checkpoint seam: a run pasted together from a
//! recorded prefix and a checkpoint-resumed suffix is an execution of
//! the composition, so its projection onto every component must replay
//! on a fresh copy of that component — exactly as the uninterrupted
//! run's projection does.
//!
//! This is the verify-side complement of the executor's bit-identity
//! tests: those compare the pasted run against the straight run; this
//! one feeds the pasted run to the [`replay_timed`] / [`replay_clock`]
//! oracles, which know nothing about checkpoints and accept only
//! genuine component executions.

use psync_automata::toys::{BeepAction, Beeper, ClockBeeper};
use psync_executor::{
    ClockNode, DriftClock, Engine, OffsetClock, PerfectClock, RandomScheduler, RandomWalkClock,
    Run, ScriptedClock,
};
use psync_time::{Duration, Time};
use psync_verify::replay::{replay_clock, replay_timed};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

/// Two real-time beepers plus one clock node per shipped strategy; the
/// scripted node attempts a clamped backward jump at 60 ms so the
/// pasted execution crosses a guard intervention too.
fn fleet(seed: u64) -> Engine<BeepAction> {
    Engine::builder()
        .timed(Beeper::with_src(ms(5), 0))
        .timed(Beeper::with_src(ms(7), 1))
        .clock_node(
            ClockNode::new("perfect", ms(2), PerfectClock).with(ClockBeeper::with_src(ms(9), 10)),
        )
        .clock_node(
            ClockNode::new("offset", ms(2), OffsetClock::new(ms(2), ms(2)))
                .with(ClockBeeper::with_src(ms(11), 11)),
        )
        .clock_node(
            ClockNode::new("drift", ms(2), DriftClock::new(400))
                .with(ClockBeeper::with_src(ms(13), 12)),
        )
        .clock_node(
            ClockNode::new("walk", ms(2), RandomWalkClock::new(seed ^ 0xA5, ms(1)))
                .with(ClockBeeper::with_src(ms(10), 13)),
        )
        .clock_node(
            ClockNode::new(
                "scripted",
                ms(2),
                ScriptedClock::new([(at(30), ms(2)), (at(60), ms(-2))]),
            )
            .with(ClockBeeper::with_src(ms(12), 14)),
        )
        .scheduler(RandomScheduler::new(seed))
        .horizon(at(150))
        .build()
}

/// Runs the fleet paused at `pause` events, checkpoints, restores into a
/// freshly built engine and completes the run there.
fn pasted_run(seed: u64, pause: usize) -> Run<BeepAction> {
    let mut recorder = fleet(seed);
    recorder.run_until_events(pause).unwrap();
    let cp = recorder.checkpoint();
    let mut resumed = fleet(seed);
    resumed.restore(&cp);
    resumed.run().unwrap()
}

/// Projects the run onto every component — timed beepers via wall-clock
/// replay, clock beepers via clock-reading replay — and returns the
/// per-component projected event counts. Panics (with the replay
/// error) if any projection is refused.
fn replay_all(label: &str, run: &Run<BeepAction>) -> Vec<usize> {
    let mut counts = Vec::new();
    for (period, src) in [(5, 0), (7, 1)] {
        let n = replay_timed(Beeper::with_src(ms(period), src), &run.execution)
            .unwrap_or_else(|e| panic!("{label}: timed src {src}: {e}"));
        counts.push(n);
    }
    for (period, src) in [(9, 10), (11, 11), (13, 12), (10, 13), (12, 14)] {
        let n = replay_clock(ClockBeeper::with_src(ms(period), src), &run.execution)
            .unwrap_or_else(|e| panic!("{label}: clock src {src}: {e}"));
        counts.push(n);
    }
    counts
}

#[test]
fn pasted_executions_replay_onto_every_component() {
    for seed in [1u64, 7, 42, 99, 1234, 987_654_321] {
        let straight = fleet(seed).run().unwrap();
        let straight_counts = replay_all(&format!("seed {seed}, straight"), &straight);
        assert!(
            straight_counts.iter().all(|&n| n > 0),
            "seed {seed}: some component never acted — vacuous replay"
        );

        let n = straight.execution.len();
        for pause in [0, 1, n / 3, n / 2, n - 1, n] {
            let pasted = pasted_run(seed, pause);
            let label = format!("seed {seed}, pause {pause}");
            let pasted_counts = replay_all(&label, &pasted);
            assert_eq!(
                pasted_counts, straight_counts,
                "{label}: projections differ from the uninterrupted run"
            );
            assert_eq!(
                pasted.execution, straight.execution,
                "{label}: pasted execution diverged"
            );
        }
    }
}
