//! Online (streaming) oracles: checks that consume events *while the run
//! executes* instead of sweeping the finished execution.
//!
//! A [`StreamOracle`] is the incremental counterpart of [`Oracle`]: it is
//! fed each [`TimedEvent`] (and clock reading) in order, may declare a
//! violation *certain* at any point — meaning no continuation of the run
//! can make the check pass, so the driver may stop early — and delivers
//! its final verdict in [`finish`](StreamOracle::finish), which also
//! covers properties only decidable at the horizon (e.g. failure-detector
//! completeness). `psync-obs`'s `OnlineJudge` adapts a set of stream
//! oracles into an engine `Observer`.
//!
//! The parity contract explorer scenarios rely on: for a run driven to
//! its horizon without short-circuiting, the stream oracle's violations
//! (name and message) must equal the post-hoc oracle's on the recorded
//! execution.

use psync_automata::{Action, TimedEvent, Verdict};
use psync_time::{Duration, Time};

/// A named incremental check over a live run.
pub trait StreamOracle<A: Action> {
    /// A short stable name; for parity it should match the name of the
    /// post-hoc [`Oracle`](crate::oracle::Oracle) checking the same
    /// property.
    fn name(&self) -> String;

    /// Consumes the next recorded event (`index` is its position in the
    /// execution). Implementations should be sticky: once a violation is
    /// certain, further events must not change it.
    fn observe_event(&mut self, index: usize, event: &TimedEvent<A>);

    /// Consumes a node-clock reading (`eps` is the node's skew bound).
    /// Default: ignored.
    fn observe_clock(&mut self, node: usize, now: Time, clock: Time, eps: Duration) {
        let _ = (node, now, clock, eps);
    }

    /// The violation, if one is already *certain* — i.e. would hold in
    /// every continuation of the run. `None` means "no verdict yet".
    fn violation(&self) -> Option<String>;

    /// Closes the stream at time `end` (the horizon actually reached) and
    /// delivers the final verdict.
    fn finish(&mut self, end: Time) -> Verdict;
}
