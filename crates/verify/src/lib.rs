//! Checkers for the psync workspace.
//!
//! * [`check_linearizable`] — decides whether a register history is
//!   linearizable (Section 6.1 of the paper): every operation takes effect
//!   atomically at some point between invocation and response, and every
//!   read returns the most recently written value.
//! * [`check_superlinearizable`] — the stronger *ε-superlinearizability*
//!   of Section 6.2: the linearization point must additionally be at least
//!   `2ε` after the invocation. This is the property Algorithm S satisfies
//!   in the timed model, chosen precisely so that the `ε` perturbation of
//!   Simulation 1 cannot break plain linearizability (`Q_ε ⊆ P`,
//!   Lemma 6.4).
//! * [`LinearizableRegister`] / [`SuperlinearizableRegister`] — the
//!   problems `P` and `Q` of Section 6 as
//!   [`Problem`](psync_automata::Problem) implementations over recorded
//!   traces, including the alternation-condition escape clause ("traces in
//!   which the environment is the first to violate the alternation
//!   condition" are vacuously accepted).
//! * [`check_sequentially_consistent`] — the weaker condition of
//!   Attiya–Welch \[2\] (whose algorithm the paper's Algorithm L
//!   generalizes): a total order respecting program order only, no
//!   real-time constraint. Used to show that clock skew breaks exactly
//!   the real-time half of linearizability.
//! * [`axioms`] — randomized probes that exercise user-written components
//!   against the timed/clock automaton discipline (axioms S1–S5 / C1–C4
//!   as operationalized by the component traits).
//! * [`Conformance`] — the `solve` relation (Definition 2.10) as an
//!   adversary-grid sweep: run a seeded system family and check the
//!   problem on every recorded trace, reporting counterexample seeds.
//! * [`Oracle`] — a named check over a recorded *execution* (rather than
//!   a trace), the checker currency shared by `Conformance::sweep_oracles`
//!   and the `psync-explorer` fault-injection campaigns; [`ProblemOracle`]
//!   adapts any [`Problem`](psync_automata::Problem) into one.
//! * [`replay`] — Lemma 2.1 operationalized: re-runs the projection of a
//!   recorded execution against a fresh copy of one component, catching
//!   engine/component disagreements.
//!
//! The search behind the history checkers is the classic
//! linearizability-checking recursion (Wing–Gong), made practical the same
//! way Lowe's and porcupine-style checkers do: per-node operation
//! sequences (alternation makes each node sequential), frontier-only
//! candidate selection, and memoization on the frontier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
mod conformance;
mod linearizable;
mod object_linearizable;
mod oracle;
mod problems;
pub mod replay;
mod sequential;
mod stream;

pub use conformance::{Conformance, ConformanceReport, Counterexample};
pub use linearizable::{check_linearizable, check_superlinearizable};
pub use object_linearizable::{
    check_object_linearizable, extract_object_history, ObjOpKind, ObjOperation,
    ObjectLinearizableOracle,
};
pub use oracle::{check_all, check_fifo_per_edge, FnOracle, Oracle, ProblemOracle};
pub use problems::{LinearizableRegister, SuperlinearizableRegister};
pub use sequential::check_sequentially_consistent;
pub use stream::StreamOracle;
