//! Randomized probes of the timed/clock automaton discipline.
//!
//! Library components satisfy axioms S1–S5 / C1–C4 by construction (the
//! component traits make `now`/`clock` engine-owned and time passage a
//! deadline-bounded operation). For *user-written* components these probes
//! drive random walks through the state space and check the
//! operationalized axioms:
//!
//! * enabled locally controlled actions can actually be performed
//!   (`enabled`/`step` consistency);
//! * `ν` succeeds up to the reported deadline and fails beyond it;
//! * time passage composes: advancing to `t₁` then `t₂` reaches the same
//!   state as advancing straight to `t₂` (axioms S4/S5 and C4 — this is
//!   what licenses the engine to merge and split `ν` steps freely);
//! * deadlines never move backwards while time passes.

use psync_automata::{ClockComponent, TimedComponent};
use psync_time::{Duration, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a probe run.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of random walks.
    pub walks: usize,
    /// Steps per walk.
    pub steps: usize,
    /// Largest single time advance attempted.
    pub max_advance: Duration,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            seed: 0xC10C_CA11,
            walks: 32,
            steps: 64,
            max_advance: Duration::from_millis(10),
        }
    }
}

/// Probes a timed component. Returns `Err` with a description of the
/// first violated obligation.
///
/// # Errors
///
/// A human-readable description of the violated axiom, including the walk
/// seed for reproduction.
pub fn probe_timed<C>(component: &C, config: &ProbeConfig) -> Result<(), String>
where
    C: TimedComponent,
    C::State: PartialEq,
{
    let mut rng = StdRng::seed_from_u64(config.seed);
    for walk in 0..config.walks {
        let mut state = component.initial();
        let mut now = Time::ZERO;
        for step in 0..config.steps {
            let ctx = |what: &str| format!("walk {walk}, step {step}: {what}");
            let enabled = component.enabled(&state, now);
            let deadline = component.deadline(&state, now);
            if let Some(d) = deadline {
                if d < now && enabled.is_empty() {
                    return Err(ctx(&format!(
                        "deadline {d} is in the past at {now} with nothing enabled (stopped time)"
                    )));
                }
            }
            // Choose: fire an enabled action, or advance time.
            if !enabled.is_empty() && rng.gen_bool(0.5) {
                let a = &enabled[rng.gen_range(0..enabled.len())];
                match component.step(&state, a, now) {
                    Some(next) => state = next,
                    None => {
                        return Err(ctx(&format!("{a:?} reported enabled but step refused it")))
                    }
                }
            } else {
                let dt =
                    Duration::from_nanos(rng.gen_range(1..=config.max_advance.as_nanos().max(1)));
                let target = match deadline {
                    Some(d) if d > now => (now + dt).min(d),
                    Some(_) => continue, // pinned at a due deadline: must fire
                    None => now + dt,
                };
                if target <= now {
                    continue;
                }
                // S4/S5: split advance must agree with direct advance.
                let direct = component.advance(&state, now, target);
                let Some(direct) = direct else {
                    return Err(ctx(&format!(
                        "advance to {target} refused although within deadline {deadline:?}"
                    )));
                };
                if target - now >= Duration::from_nanos(2) {
                    let mid = now + (target - now) / 2;
                    let via_mid = component
                        .advance(&state, now, mid)
                        .and_then(|s1| component.advance(&s1, mid, target));
                    match via_mid {
                        Some(s2) if s2 == direct => {}
                        Some(_) => {
                            return Err(ctx(&format!(
                                "advancing via {mid} differs from advancing straight to {target} (axiom S4/S5)"
                            )))
                        }
                        None => {
                            return Err(ctx(&format!(
                                "advance via midpoint {mid} refused but direct advance allowed (axiom S5)"
                            )))
                        }
                    }
                }
                // Beyond the deadline, ν must be refused.
                if let Some(d) = component.deadline(&state, now) {
                    if component
                        .advance(&state, now, d + Duration::NANOSECOND)
                        .is_some()
                    {
                        return Err(ctx(&format!("advance past the deadline {d} was accepted")));
                    }
                }
                state = direct;
                now = target;
            }
        }
    }
    Ok(())
}

/// Probes a clock component — identical obligations, in clock time
/// (axioms C3/C4 and the clock-deadline discipline).
///
/// # Errors
///
/// A human-readable description of the violated axiom.
pub fn probe_clock<C>(component: &C, config: &ProbeConfig) -> Result<(), String>
where
    C: ClockComponent,
    C::State: PartialEq,
{
    let mut rng = StdRng::seed_from_u64(config.seed);
    for walk in 0..config.walks {
        let mut state = component.initial();
        let mut clock = Time::ZERO;
        for step in 0..config.steps {
            let ctx = |what: &str| format!("walk {walk}, step {step}: {what}");
            let enabled = component.enabled(&state, clock);
            let deadline = component.clock_deadline(&state, clock);
            if !enabled.is_empty() && rng.gen_bool(0.5) {
                let a = &enabled[rng.gen_range(0..enabled.len())];
                match component.step(&state, a, clock) {
                    Some(next) => state = next,
                    None => {
                        return Err(ctx(&format!("{a:?} reported enabled but step refused it")))
                    }
                }
            } else {
                let dt =
                    Duration::from_nanos(rng.gen_range(1..=config.max_advance.as_nanos().max(1)));
                let target = match deadline {
                    Some(d) if d > clock => (clock + dt).min(d),
                    Some(_) => continue,
                    None => clock + dt,
                };
                if target <= clock {
                    continue;
                }
                let direct = component.advance(&state, clock, target);
                let Some(direct) = direct else {
                    return Err(ctx(&format!(
                        "advance to {target} refused although within deadline {deadline:?}"
                    )));
                };
                if target - clock >= Duration::from_nanos(2) {
                    let mid = clock + (target - clock) / 2;
                    let via_mid = component
                        .advance(&state, clock, mid)
                        .and_then(|s1| component.advance(&s1, mid, target));
                    match via_mid {
                        Some(s2) if s2 == direct => {}
                        _ => {
                            return Err(ctx(&format!(
                                "advance via {mid} disagrees with direct advance (axiom C4)"
                            )))
                        }
                    }
                }
                if let Some(d) = component.clock_deadline(&state, clock) {
                    if component
                        .advance(&state, clock, d + Duration::NANOSECOND)
                        .is_some()
                    {
                        return Err(ctx(&format!(
                            "advance past the clock deadline {d} was accepted"
                        )));
                    }
                }
                state = direct;
                clock = target;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::{Beeper, ClockBeeper, Echo};
    use psync_automata::ActionKind;

    #[test]
    fn library_toys_pass_the_probes() {
        let cfg = ProbeConfig::default();
        probe_timed(&Beeper::new(Duration::from_millis(3)), &cfg).unwrap();
        probe_timed(&Echo::new(Duration::from_millis(2)), &cfg).unwrap();
        probe_clock(&ClockBeeper::new(Duration::from_millis(3)), &cfg).unwrap();
    }

    /// A deliberately broken component: claims an action enabled but
    /// refuses to perform it.
    #[derive(Debug, Clone)]
    struct Liar;

    impl TimedComponent for Liar {
        type Action = &'static str;
        type State = u8;

        fn name(&self) -> String {
            "liar".into()
        }
        fn initial(&self) -> u8 {
            0
        }
        fn classify(&self, _: &&'static str) -> Option<ActionKind> {
            Some(ActionKind::Output)
        }
        fn step(&self, _: &u8, _: &&'static str, _: Time) -> Option<u8> {
            None // refuses everything…
        }
        fn enabled(&self, _: &u8, _: Time) -> Vec<&'static str> {
            vec!["go"] // …yet claims this is enabled
        }
        fn deadline(&self, _: &u8, _: Time) -> Option<Time> {
            None
        }
    }

    #[test]
    fn enabled_step_inconsistency_caught() {
        let err = probe_timed(&Liar, &ProbeConfig::default()).unwrap_err();
        assert!(err.contains("refused"), "unexpected report: {err}");
    }

    /// A component whose state mutates differently under split advances —
    /// an S4/S5 violation.
    #[derive(Debug, Clone)]
    struct SplitSensitive;

    impl TimedComponent for SplitSensitive {
        type Action = &'static str;
        type State = u32; // counts ν applications — illegal state usage

        fn name(&self) -> String {
            "split-sensitive".into()
        }
        fn initial(&self) -> u32 {
            0
        }
        fn classify(&self, _: &&'static str) -> Option<ActionKind> {
            Some(ActionKind::Output)
        }
        fn step(&self, s: &u32, _: &&'static str, _: Time) -> Option<u32> {
            Some(*s)
        }
        fn enabled(&self, _: &u32, _: Time) -> Vec<&'static str> {
            Vec::new()
        }
        fn deadline(&self, _: &u32, _: Time) -> Option<Time> {
            None
        }
        fn advance(&self, s: &u32, _now: Time, _target: Time) -> Option<u32> {
            Some(s + 1)
        }
    }

    #[test]
    fn split_advance_divergence_caught() {
        let err = probe_timed(&SplitSensitive, &ProbeConfig::default()).unwrap_err();
        assert!(err.contains("S4/S5"), "unexpected report: {err}");
    }
}
