//! Linearizability for generalized objects ([`ObjectSpec`]) — checker and
//! history extraction for the "other shared memory objects" extension.

use std::collections::HashSet;

use psync_automata::{Action, Execution, TimedTrace, Verdict};
use psync_net::{NodeId, SysAction};
use psync_register::history::ExtractError;
use psync_register::object::ObjectSpec;
use psync_register::{ObjAction, ObjOp};
use psync_time::Time;

use crate::Oracle;

/// What a generalized operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjOpKind<O: ObjectSpec> {
    /// A blind update.
    Update(O::Update),
    /// A query that returned the given output.
    Query(O::Output),
}

/// One generalized operation interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjOperation<O: ObjectSpec> {
    /// The invoking node.
    pub node: NodeId,
    /// Update or query.
    pub kind: ObjOpKind<O>,
    /// Invocation time.
    pub invoked: Time,
    /// Response time (`None` = cut off by the horizon).
    pub responded: Option<Time>,
}

/// Parses a generalized-object application trace into a history, enforcing
/// the alternation condition (same rules as the register extractor).
///
/// # Errors
///
/// See [`ExtractError`].
pub fn extract_object_history<O: ObjectSpec>(
    trace: &TimedTrace<ObjAction<O>>,
    n: usize,
) -> Result<Vec<ObjOperation<O>>, ExtractError> {
    let mut outstanding: Vec<Option<(ObjOp<O>, Time)>> = vec![None; n];
    let mut ops = Vec::new();
    for (a, t) in trace.iter() {
        let SysAction::App(op) = a else { continue };
        let node = op.node();
        assert!(node.0 < n, "trace mentions node {node} outside 0..{n}");
        match op {
            ObjOp::Do { .. } | ObjOp::Query { .. } => {
                if outstanding[node.0].is_some() {
                    return Err(ExtractError::EnvironmentViolation { node, at: t });
                }
                outstanding[node.0] = Some((op.clone(), t));
            }
            ObjOp::Done { .. } => match outstanding[node.0].take() {
                Some((ObjOp::Do { update, .. }, inv)) => ops.push(ObjOperation {
                    node,
                    kind: ObjOpKind::Update(update),
                    invoked: inv,
                    responded: Some(t),
                }),
                other => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: format!("DONE answering {other:?}"),
                    })
                }
            },
            ObjOp::Answer { output, .. } => match outstanding[node.0].take() {
                Some((ObjOp::Query { .. }, inv)) => ops.push(ObjOperation {
                    node,
                    kind: ObjOpKind::Query(output.clone()),
                    invoked: inv,
                    responded: Some(t),
                }),
                other => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: format!("ANSWER answering {other:?}"),
                    })
                }
            },
            ObjOp::Apply { .. } => {}
        }
    }
    for slot in outstanding.into_iter().flatten() {
        if let (ObjOp::Do { node, update }, inv) = slot {
            ops.push(ObjOperation {
                node,
                kind: ObjOpKind::Update(update),
                invoked: inv,
                responded: None,
            });
        }
    }
    ops.sort_by_key(|o| o.invoked);
    Ok(ops)
}

/// Decides linearizability of a generalized-object history against its
/// sequential specification — the same memoized frontier search as the
/// register checker, with the register's value semantics replaced by
/// `spec.apply` / `spec.query`.
#[must_use]
pub fn check_object_linearizable<O: ObjectSpec>(spec: &O, ops: &[ObjOperation<O>]) -> Verdict {
    let max_node = ops.iter().map(|o| o.node.0).max().map_or(0, |m| m + 1);
    let mut seqs: Vec<Vec<&ObjOperation<O>>> = vec![Vec::new(); max_node];
    for o in ops {
        seqs[o.node.0].push(o);
    }
    for (i, seq) in seqs.iter().enumerate() {
        for w in seq.windows(2) {
            let prev_end = w[0].responded.unwrap_or(Time::MAX);
            assert!(
                prev_end <= w[1].invoked,
                "history is not sequential at node {i}"
            );
        }
    }
    let mut seen: HashSet<(Vec<usize>, O::State)> = HashSet::new();
    let idx = vec![0usize; max_node];
    if dfs(spec, &seqs, &mut seen, &idx, &spec.initial()) {
        Verdict::Holds
    } else {
        Verdict::violated(format!(
            "no valid linearization of {} object operations",
            ops.len()
        ))
    }
}

/// An [`Oracle`] judging linearizability of a generalized-object run
/// ([`AlgorithmSObj`](psync_register::AlgorithmSObj) + any
/// [`ObjectSpec`]) directly from the recorded execution: extracts the
/// visible application history and feeds it to
/// [`check_object_linearizable`]. Traces in which the *environment* is the
/// first to violate the alternation condition are vacuously accepted, like
/// the register problems.
pub struct ObjectLinearizableOracle<O: ObjectSpec> {
    spec: O,
    n: usize,
}

impl<O: ObjectSpec> ObjectLinearizableOracle<O> {
    /// Wraps `spec` for an `n`-node system.
    pub fn new(spec: O, n: usize) -> Self {
        ObjectLinearizableOracle { spec, n }
    }
}

impl<O: ObjectSpec + Send + Sync> Oracle<ObjAction<O>> for ObjectLinearizableOracle<O>
where
    ObjAction<O>: Action,
{
    fn name(&self) -> String {
        "linearizable object".to_string()
    }

    fn check(&self, exec: &Execution<ObjAction<O>>) -> Verdict {
        let trace: TimedTrace<ObjAction<O>> = exec
            .events()
            .iter()
            .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
            .map(|e| (e.action.clone(), e.now))
            .collect();
        match extract_object_history(&trace, self.n) {
            Err(ExtractError::EnvironmentViolation { .. }) => Verdict::Holds,
            Err(e @ ExtractError::SystemViolation { .. }) => Verdict::violated(e),
            Ok(ops) => check_object_linearizable(&self.spec, &ops),
        }
    }
}

fn dfs<O: ObjectSpec>(
    spec: &O,
    seqs: &[Vec<&ObjOperation<O>>],
    seen: &mut HashSet<(Vec<usize>, O::State)>,
    idx: &[usize],
    state: &O::State,
) -> bool {
    if seqs
        .iter()
        .zip(idx)
        .all(|(seq, &i)| seq[i..].iter().all(|o| o.responded.is_none()))
    {
        return true;
    }
    if !seen.insert((idx.to_vec(), state.clone())) {
        return false;
    }
    let next_res: Vec<Time> = seqs
        .iter()
        .zip(idx)
        .map(|(seq, &i)| {
            seq.get(i)
                .map_or(Time::MAX, |o| o.responded.unwrap_or(Time::MAX))
        })
        .collect();
    let min_res = |skip: usize| {
        next_res
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != skip)
            .map(|(_, &t)| t)
            .min()
            .unwrap_or(Time::MAX)
    };
    for i in 0..seqs.len() {
        let Some(op) = seqs[i].get(idx[i]) else {
            continue;
        };
        if op.invoked > min_res(i) {
            continue;
        }
        let next_state = match &op.kind {
            ObjOpKind::Update(u) => spec.apply(state, u),
            ObjOpKind::Query(out) => {
                if spec.query(state) != *out {
                    continue;
                }
                state.clone()
            }
        };
        let mut next_idx = idx.to_vec();
        next_idx[i] += 1;
        if dfs(spec, seqs, seen, &next_idx, &next_state) {
            return true;
        }
        if op.responded.is_none() && dfs(spec, seqs, seen, &next_idx, state) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_register::object::{Counter, GrowSet};
    use psync_time::Duration;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn upd<O: ObjectSpec>(node: usize, u: O::Update, inv: i64, res: i64) -> ObjOperation<O> {
        ObjOperation {
            node: NodeId(node),
            kind: ObjOpKind::Update(u),
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    fn qry<O: ObjectSpec>(node: usize, out: O::Output, inv: i64, res: i64) -> ObjOperation<O> {
        ObjOperation {
            node: NodeId(node),
            kind: ObjOpKind::Query(out),
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    #[test]
    fn counter_history_sums_increments() {
        let ops = vec![
            upd::<Counter>(0, 5, 0, 2),
            upd::<Counter>(1, 3, 0, 2),
            qry::<Counter>(2, 8, 5, 6),
        ];
        assert!(check_object_linearizable(&Counter, &ops).holds());
    }

    #[test]
    fn counter_partial_sums_allowed_only_under_concurrency() {
        // Query overlapping one increment may see 5 or 8…
        for seen in [5i64, 8] {
            let ops = vec![
                upd::<Counter>(0, 5, 0, 2),
                upd::<Counter>(1, 3, 4, 10),
                qry::<Counter>(2, seen, 5, 6),
            ];
            assert!(
                check_object_linearizable(&Counter, &ops).holds(),
                "query of {seen} must be allowed"
            );
        }
        // …but never 3 (would need the first, completed increment dropped)
        // and never 0.
        for seen in [3i64, 0] {
            let ops = vec![
                upd::<Counter>(0, 5, 0, 2),
                upd::<Counter>(1, 3, 4, 10),
                qry::<Counter>(2, seen, 5, 6),
            ];
            assert!(
                !check_object_linearizable(&Counter, &ops).holds(),
                "query of {seen} must be rejected"
            );
        }
    }

    #[test]
    fn lost_increment_is_rejected() {
        // Two sequential increments, then a query that saw only one.
        let ops = vec![
            upd::<Counter>(0, 1, 0, 1),
            upd::<Counter>(0, 1, 2, 3),
            qry::<Counter>(1, 1, 5, 6),
        ];
        assert!(!check_object_linearizable(&Counter, &ops).holds());
    }

    #[test]
    fn grow_set_membership_monotone() {
        let ops = vec![
            upd::<GrowSet>(0, 3, 0, 1),
            qry::<GrowSet>(1, 1 << 3, 2, 3),
            upd::<GrowSet>(0, 7, 4, 5),
            qry::<GrowSet>(1, (1 << 3) | (1 << 7), 6, 7),
        ];
        assert!(check_object_linearizable(&GrowSet, &ops).holds());
        // A query that forgets an element seen earlier is impossible.
        let bad = vec![
            upd::<GrowSet>(0, 3, 0, 1),
            qry::<GrowSet>(1, 1 << 3, 2, 3),
            qry::<GrowSet>(1, 0, 4, 5),
        ];
        assert!(!check_object_linearizable(&GrowSet, &bad).holds());
    }

    #[test]
    fn open_update_is_optional() {
        let open = ObjOperation::<Counter> {
            node: NodeId(0),
            kind: ObjOpKind::Update(5),
            invoked: t(0),
            responded: None,
        };
        for seen in [0i64, 5] {
            let ops = vec![open.clone(), qry::<Counter>(1, seen, 3, 4)];
            assert!(check_object_linearizable(&Counter, &ops).holds());
        }
    }
}
