//! Conformance checking: the `solve` relation (Definition 2.10) over an
//! adversary grid.
//!
//! Definition 2.10 quantifies over *every* admissible execution: `D`
//! solves `P` iff every admissible timed trace of `D` is in `tseq(P)`. A
//! simulator cannot enumerate all executions, but it can sweep a grid of
//! adversaries — schedulers, clock behaviors, delay policies, workload
//! seeds — and check the problem on each recorded trace. [`Conformance`]
//! packages that sweep: give it a system factory (seed → engine) and a
//! trace extractor, and it reports every seed that produced a violating
//! trace, with the violation message.
//!
//! This is how the integration suites and experiment E8 test Theorem 6.5;
//! the harness makes the pattern reusable for user systems.

use psync_automata::{Action, Execution, Problem, TimedTrace, Verdict};
use psync_executor::{Engine, EngineError};

/// One failed run of a conformance sweep.
#[derive(Debug)]
pub struct Counterexample<A: Action> {
    /// The seed that produced it.
    pub seed: u64,
    /// Why it failed: an engine error (ill-formed composition) or a
    /// problem violation.
    pub reason: String,
    /// The recorded execution, when the run completed.
    pub execution: Option<Execution<A>>,
}

/// The report of a sweep.
#[derive(Debug)]
pub struct ConformanceReport<A: Action> {
    /// How many runs were executed.
    pub runs: usize,
    /// The failing runs (empty = conforms on the grid).
    pub counterexamples: Vec<Counterexample<A>>,
}

impl<A: Action> ConformanceReport<A> {
    /// `true` when every run's trace satisfied the problem.
    #[must_use]
    pub fn conforms(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

type Extractor<A> = Box<dyn Fn(&Execution<A>) -> TimedTrace<A>>;

/// A reusable conformance sweep for one system family and one problem.
///
/// # Examples
///
/// ```
/// use psync_automata::problem::{FnProblem, Verdict};
/// use psync_automata::toys::{BeepAction, Beeper};
/// use psync_automata::TimedTrace;
/// use psync_executor::Engine;
/// use psync_time::{Duration, Time};
/// use psync_verify::Conformance;
///
/// fn ms(n: i64) -> Duration {
///     Duration::from_millis(n)
/// }
///
/// // Family: a beeper whose period depends on the seed; all ≥ 5 ms.
/// let harness = Conformance::new(
///     |seed| {
///         Engine::builder()
///             .timed(Beeper::new(ms(5 + (seed as i64 % 3))))
///             .horizon(Time::ZERO + ms(40))
///             .build()
///     },
///     |e| e.t_trace(),
/// );
/// let spaced = FnProblem::new("beeps ≥ 5 ms apart", |tr: &TimedTrace<BeepAction>| {
///     for w in tr.as_slice().windows(2) {
///         if w[1].1 - w[0].1 < ms(5) {
///             return Verdict::violated("too close");
///         }
///     }
///     Verdict::Holds
/// });
/// let report = harness.sweep(&spaced, 0..16);
/// assert!(report.conforms());
/// ```
pub struct Conformance<A: Action> {
    build: Box<dyn Fn(u64) -> Engine<A>>,
    extract: Extractor<A>,
}

impl<A: Action> Conformance<A> {
    /// Creates a sweep from a seeded system factory and a trace extractor
    /// (typically `psync_core::app_trace` for application-level
    /// problems, or `Execution::t_trace` for raw visible traces).
    #[must_use]
    pub fn new(
        build: impl Fn(u64) -> Engine<A> + 'static,
        extract: impl Fn(&Execution<A>) -> TimedTrace<A> + 'static,
    ) -> Self {
        Conformance {
            build: Box::new(build),
            extract: Box::new(extract),
        }
    }

    /// Runs the system once per seed and checks `problem` on each trace.
    pub fn sweep(
        &self,
        problem: &dyn Problem<A>,
        seeds: impl IntoIterator<Item = u64>,
    ) -> ConformanceReport<A> {
        self.sweep_with(seeds, &|exec| {
            let trace = (self.extract)(exec);
            match problem.contains(&trace) {
                Verdict::Holds => None,
                Verdict::Violated(why) => Some(why),
            }
        })
    }

    /// The shared sweep loop: runs once per seed, hands the recorded
    /// execution to `check`, and turns `Some(reason)` into a
    /// counterexample. Both [`Conformance::sweep`] and the oracle-based
    /// sweep in [`crate::oracle`] go through here.
    pub(crate) fn sweep_with(
        &self,
        seeds: impl IntoIterator<Item = u64>,
        check: &dyn Fn(&Execution<A>) -> Option<String>,
    ) -> ConformanceReport<A> {
        let mut runs = 0;
        let mut counterexamples = Vec::new();
        for seed in seeds {
            runs += 1;
            let mut engine = (self.build)(seed);
            match engine.run() {
                Err(e @ EngineError::EventLimitExceeded { .. })
                | Err(e @ EngineError::TimeStopped { .. })
                | Err(e) => {
                    counterexamples.push(Counterexample {
                        seed,
                        reason: format!("engine error: {e}"),
                        execution: None,
                    });
                }
                Ok(run) => {
                    if let Some(reason) = check(&run.execution) {
                        counterexamples.push(Counterexample {
                            seed,
                            reason,
                            execution: Some(run.execution),
                        });
                    }
                }
            }
        }
        ConformanceReport {
            runs,
            counterexamples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::problem::FnProblem;
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_time::{Duration, Time};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn beeper_engine(period_ms: i64) -> Engine<BeepAction> {
        Engine::builder()
            .timed(Beeper::new(ms(period_ms)))
            .horizon(Time::ZERO + ms(50))
            .build()
    }

    #[test]
    fn conforming_family_passes() {
        // Problem: beeps are at least 5 ms apart. Build with period 5+seed.
        let harness =
            Conformance::new(|seed| beeper_engine(5 + (seed as i64 % 5)), |e| e.t_trace());
        let p = FnProblem::new("spaced beeps", |tr: &TimedTrace<BeepAction>| {
            for w in tr.as_slice().windows(2) {
                if w[1].1 - w[0].1 < ms(5) {
                    return Verdict::violated("beeps too close");
                }
            }
            Verdict::Holds
        });
        let report = harness.sweep(&p, 0..10);
        assert_eq!(report.runs, 10);
        assert!(
            report.conforms(),
            "{:?}",
            report.counterexamples.first().map(|c| &c.reason)
        );
    }

    #[test]
    fn violating_seeds_are_reported() {
        // Periods 3..8: seeds giving period < 5 violate.
        let harness =
            Conformance::new(|seed| beeper_engine(3 + (seed as i64 % 5)), |e| e.t_trace());
        let p = FnProblem::new("spaced beeps", |tr: &TimedTrace<BeepAction>| {
            for w in tr.as_slice().windows(2) {
                if w[1].1 - w[0].1 < ms(5) {
                    return Verdict::violated("beeps too close");
                }
            }
            Verdict::Holds
        });
        let report = harness.sweep(&p, 0..5);
        assert!(!report.conforms());
        // Seeds 0 (period 3) and 1 (period 4) violate; 2,3,4 conform.
        let bad: Vec<u64> = report.counterexamples.iter().map(|c| c.seed).collect();
        assert_eq!(bad, vec![0, 1]);
        assert!(report.counterexamples[0].execution.is_some());
    }

    #[test]
    fn engine_errors_become_counterexamples() {
        // Two identical beepers: incompatible composition → engine error.
        let harness = Conformance::new(
            |_| {
                Engine::builder()
                    .timed(Beeper::new(ms(5)))
                    .timed(Beeper::new(ms(5)))
                    .horizon(Time::ZERO + ms(20))
                    .build()
            },
            |e| e.t_trace(),
        );
        let p = FnProblem::new("anything", |_: &TimedTrace<BeepAction>| Verdict::Holds);
        let report = harness.sweep(&p, [1u64]);
        assert!(!report.conforms());
        assert!(report.counterexamples[0].reason.contains("engine error"));
    }
}
