//! Execution oracles: checkers shared between [`Conformance`] sweeps and
//! the fault-injection explorer (`psync-explorer`).
//!
//! A [`Problem`](psync_automata::Problem) judges a *timed trace* — the
//! right granularity for Definition 2.10's `solve` relation. Exploration
//! harnesses, however, also want to judge properties only visible in the
//! full recorded [`Execution`]: per-event clock readings against `C_ε`,
//! delivery latencies against `[d₁, d₂]`, Lemma 2.1 replays. An
//! [`Oracle`] is that common denominator: a named check over a recorded
//! execution. [`ProblemOracle`] adapts any `Problem` (plus a trace
//! extractor) into an oracle, so conformance sweeps and explorer
//! campaigns literally share checkers, and [`FnOracle`] wraps a closure
//! for ad-hoc properties.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;

use psync_automata::{Action, Execution, Problem, TimedTrace, Verdict};
use psync_net::SysAction;

use crate::conformance::Conformance;

/// A named pass/fail check over one recorded execution.
///
/// Oracles are `Send + Sync` so a slice of boxed oracles can be checked
/// from several shards of a scoped thread pool at once (see
/// `psync-obs`'s `check_all_sharded`); an oracle only reads the shared
/// execution, so thread-safety costs nothing beyond the bound.
pub trait Oracle<A: Action>: Send + Sync {
    /// A short stable name, used in reports and replay artifacts.
    fn name(&self) -> String;

    /// Judges the execution.
    fn check(&self, exec: &Execution<A>) -> Verdict;
}

/// A boxed execution-judging closure (the payload of [`FnOracle`]).
type CheckFn<A> = Box<dyn Fn(&Execution<A>) -> Verdict + Send + Sync>;

/// A boxed trace extractor (the adapter half of [`ProblemOracle`]).
type ExtractFn<A> = Box<dyn Fn(&Execution<A>) -> TimedTrace<A> + Send + Sync>;

/// An [`Oracle`] built from a closure.
pub struct FnOracle<A: Action> {
    name: String,
    f: CheckFn<A>,
}

impl<A: Action> FnOracle<A> {
    /// Creates a named oracle from a check function.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Execution<A>) -> Verdict + Send + Sync + 'static,
    ) -> Self {
        FnOracle {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl<A: Action> Oracle<A> for FnOracle<A> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn check(&self, exec: &Execution<A>) -> Verdict {
        (self.f)(exec)
    }
}

/// Adapts a [`Problem`] and a trace extractor into an [`Oracle`], so the
/// same problem instance drives both a [`Conformance`] sweep and an
/// explorer campaign.
pub struct ProblemOracle<A: Action> {
    problem: Box<dyn Problem<A> + Send + Sync>,
    extract: ExtractFn<A>,
}

impl<A: Action> ProblemOracle<A> {
    /// Wraps `problem`, judging the trace produced by `extract` (typically
    /// `psync_core::app_trace` or `Execution::t_trace`).
    pub fn new(
        problem: impl Problem<A> + Send + Sync + 'static,
        extract: impl Fn(&Execution<A>) -> TimedTrace<A> + Send + Sync + 'static,
    ) -> Self {
        ProblemOracle {
            problem: Box::new(problem),
            extract: Box::new(extract),
        }
    }
}

impl<A: Action> Oracle<A> for ProblemOracle<A> {
    fn name(&self) -> String {
        self.problem.name().to_string()
    }

    fn check(&self, exec: &Execution<A>) -> Verdict {
        self.problem.contains(&(self.extract)(exec))
    }
}

/// Checks per-edge FIFO delivery order: on each `(src, dst)` channel, a
/// *never-before-seen* sequence number (the low 32 bits of the message id,
/// the `MsgId::from_parts` counter) must not surface after a higher one
/// already has. Re-deliveries of an already-seen sequence number —
/// duplicates — are allowed at any point, matching the paper's
/// at-least-once channel model where FIFO constrains first deliveries
/// only.
pub fn check_fifo_per_edge<M, O>(exec: &Execution<SysAction<M, O>>) -> Verdict
where
    M: Clone + Eq + Hash + Debug + 'static,
    O: Action,
{
    let mut edges: BTreeMap<(usize, usize), (u32, BTreeSet<u32>)> = BTreeMap::new();
    for e in exec.events() {
        let SysAction::Recv(env) = &e.action else {
            continue;
        };
        let seq = (env.id.0 & 0xffff_ffff) as u32;
        let (max_seen, seen) = edges
            .entry((env.src.0, env.dst.0))
            .or_insert_with(|| (0, BTreeSet::new()));
        if seen.contains(&seq) {
            continue; // re-delivery of a duplicate, always admissible
        }
        if !seen.is_empty() && seq < *max_seen {
            return Verdict::violated(format!(
                "FIFO violation on {}->{}: first delivery of seq {} at {} \
                 after seq {} was already delivered",
                env.src, env.dst, seq, e.now, max_seen
            ));
        }
        *max_seen = seq.max(*max_seen);
        seen.insert(seq);
    }
    Verdict::Holds
}

/// Checks every oracle against one execution, returning
/// `(oracle name, violation)` pairs — empty means all held.
pub fn check_all<A: Action>(
    oracles: &[Box<dyn Oracle<A>>],
    exec: &Execution<A>,
) -> Vec<(String, String)> {
    oracles
        .iter()
        .filter_map(|o| match o.check(exec) {
            Verdict::Holds => None,
            Verdict::Violated(why) => Some((o.name(), why)),
        })
        .collect()
}

impl<A: Action> Conformance<A> {
    /// Runs the system once per seed and checks every oracle on each
    /// recorded execution — the oracle-level analogue of
    /// [`Conformance::sweep`]. All violations of one run are joined into
    /// that run's counterexample reason.
    pub fn sweep_oracles(
        &self,
        oracles: &[Box<dyn Oracle<A>>],
        seeds: impl IntoIterator<Item = u64>,
    ) -> crate::ConformanceReport<A> {
        self.sweep_with(seeds, &|exec| {
            let violations = check_all(oracles, exec);
            if violations.is_empty() {
                None
            } else {
                Some(
                    violations
                        .into_iter()
                        .map(|(name, why)| format!("{name}: {why}"))
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::problem::FnProblem;
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_executor::Engine;
    use psync_time::{Duration, Time};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn beeper_exec(period_ms: i64) -> Execution<BeepAction> {
        Engine::builder()
            .timed(Beeper::new(ms(period_ms)))
            .horizon(Time::ZERO + ms(30))
            .build()
            .run()
            .unwrap()
            .execution
    }

    fn spacing_problem(min_ms: i64) -> FnProblem<BeepAction> {
        FnProblem::new("spaced beeps", move |tr: &TimedTrace<BeepAction>| {
            for w in tr.as_slice().windows(2) {
                if w[1].1 - w[0].1 < ms(min_ms) {
                    return Verdict::violated("beeps too close");
                }
            }
            Verdict::Holds
        })
    }

    #[test]
    fn fifo_per_edge_flags_inverted_first_deliveries_only() {
        use psync_automata::ActionKind;
        use psync_net::{Envelope, MsgId, NodeId};
        use psync_time::Time;

        type A = psync_net::SysAction<u8, BeepAction>;
        let recv = |src: usize, dst: usize, seq: u32, at_ms: i64| psync_automata::TimedEvent {
            action: A::Recv(Envelope {
                src: NodeId(src),
                dst: NodeId(dst),
                id: MsgId::from_parts(NodeId(src), seq),
                payload: 0,
            }),
            kind: ActionKind::Output,
            now: Time::ZERO + ms(at_ms),
            clock: None,
            node: None,
        };
        // In-order, a duplicate re-delivery of seq 0, another edge: holds.
        let ok = Execution::new(
            vec![
                recv(0, 1, 0, 1),
                recv(0, 1, 1, 2),
                recv(0, 1, 0, 3),
                recv(1, 0, 5, 4),
            ],
            Time::ZERO + ms(5),
        );
        assert!(check_fifo_per_edge(&ok).holds());
        // A *new* lower seq after a higher one on the same edge: violated.
        let bad = Execution::new(vec![recv(0, 1, 1, 1), recv(0, 1, 0, 2)], Time::ZERO + ms(3));
        assert!(!check_fifo_per_edge(&bad).holds());
    }

    #[test]
    fn problem_oracle_shares_the_problem_verdict() {
        let oracle =
            ProblemOracle::new(spacing_problem(5), |e: &Execution<BeepAction>| e.t_trace());
        assert!(oracle.check(&beeper_exec(5)).holds());
        assert!(!oracle.check(&beeper_exec(3)).holds());
        assert_eq!(oracle.name(), "spaced beeps");
    }

    #[test]
    fn check_all_collects_named_violations() {
        let oracles: Vec<Box<dyn Oracle<BeepAction>>> = vec![
            Box::new(FnOracle::new("nonempty", |e: &Execution<BeepAction>| {
                if e.is_empty() {
                    Verdict::violated("no events")
                } else {
                    Verdict::Holds
                }
            })),
            Box::new(ProblemOracle::new(
                spacing_problem(5),
                |e: &Execution<BeepAction>| e.t_trace(),
            )),
        ];
        assert!(check_all(&oracles, &beeper_exec(5)).is_empty());
        let violations = check_all(&oracles, &beeper_exec(3));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].0, "spaced beeps");
    }

    #[test]
    fn sweep_oracles_matches_sweep() {
        let build = |seed: u64| {
            Engine::builder()
                .timed(Beeper::new(ms(3 + (seed as i64 % 5))))
                .horizon(Time::ZERO + ms(30))
                .build()
        };
        let harness = Conformance::new(build, |e| e.t_trace());
        let by_problem = harness.sweep(&spacing_problem(5), 0..5);
        let oracles: Vec<Box<dyn Oracle<BeepAction>>> = vec![Box::new(ProblemOracle::new(
            spacing_problem(5),
            |e: &Execution<BeepAction>| e.t_trace(),
        ))];
        let by_oracle = harness.sweep_oracles(&oracles, 0..5);
        assert_eq!(by_problem.runs, by_oracle.runs);
        assert_eq!(
            by_problem
                .counterexamples
                .iter()
                .map(|c| c.seed)
                .collect::<Vec<_>>(),
            by_oracle
                .counterexamples
                .iter()
                .map(|c| c.seed)
                .collect::<Vec<_>>()
        );
    }
}
