//! Sequential consistency — the weaker correctness condition of
//! Attiya–Welch \[2\], whose algorithm the paper's Algorithm L generalizes.
//!
//! A history is *sequentially consistent* when some total order of its
//! operations (i) respects each node's program order and (ii) makes every
//! read return the most recently written value — with **no** real-time
//! constraint between operations of different nodes. Linearizability is
//! sequential consistency plus real-time order, so every linearizable
//! history is sequentially consistent but not vice versa. The psync test
//! suite uses this to show that the clock adversary's damage to a naively
//! transferred algorithm is precisely the *real-time* half: stale reads
//! that break linearizability can still be sequentially consistent.

use std::collections::HashSet;

use psync_automata::Verdict;
use psync_register::history::{OpKind, Operation};
use psync_register::Value;

/// Decides sequential consistency of a register history.
///
/// Like [`check_linearizable`](crate::check_linearizable), operations with
/// `responded = None` are optional. Per-node operations must be sequential
/// (the extractor guarantees this).
///
/// # Examples
///
/// ```
/// use psync_net::NodeId;
/// use psync_register::history::{OpKind, Operation};
/// use psync_register::Value;
/// use psync_time::{Duration, Time};
/// use psync_verify::{check_linearizable, check_sequentially_consistent};
///
/// let t = |n| Time::ZERO + Duration::from_millis(n);
/// // A stale read *after* the write completed: not linearizable, but
/// // sequentially consistent (order the read before the write).
/// let ops = vec![
///     Operation { node: NodeId(0), kind: OpKind::Write { value: Value(1) },
///                 invoked: t(0), responded: Some(t(2)) },
///     Operation { node: NodeId(1), kind: OpKind::Read { returned: Value(0) },
///                 invoked: t(5), responded: Some(t(6)) },
/// ];
/// assert!(!check_linearizable(&ops, Value::INITIAL).holds());
/// assert!(check_sequentially_consistent(&ops, Value::INITIAL).holds());
/// ```
#[must_use]
pub fn check_sequentially_consistent(ops: &[Operation], initial: Value) -> Verdict {
    let max_node = ops.iter().map(|o| o.node.0).max().map_or(0, |m| m + 1);
    let mut seqs: Vec<Vec<&Operation>> = vec![Vec::new(); max_node];
    for o in ops {
        seqs[o.node.0].push(o);
    }
    // Program order: per node, by invocation time (the extractor already
    // produces non-overlapping per-node operations).
    for seq in &mut seqs {
        seq.sort_by_key(|o| o.invoked);
    }
    let mut seen: HashSet<(Vec<usize>, Value)> = HashSet::new();
    let idx = vec![0usize; max_node];
    if dfs(&seqs, &mut seen, &idx, initial) {
        Verdict::Holds
    } else {
        Verdict::violated(format!(
            "no sequentially consistent order of {} operations",
            ops.len()
        ))
    }
}

fn dfs(
    seqs: &[Vec<&Operation>],
    seen: &mut HashSet<(Vec<usize>, Value)>,
    idx: &[usize],
    value: Value,
) -> bool {
    if seqs
        .iter()
        .zip(idx)
        .all(|(seq, &i)| seq[i..].iter().all(|o| o.responded.is_none()))
    {
        return true;
    }
    if !seen.insert((idx.to_vec(), value)) {
        return false;
    }
    for i in 0..seqs.len() {
        let Some(op) = seqs[i].get(idx[i]) else {
            continue;
        };
        // No real-time candidate constraint: any node's next op may come
        // next, as long as the semantics work out.
        let next_value = match op.kind {
            OpKind::Write { value: v } => v,
            OpKind::Read { returned } => {
                if returned != value {
                    continue;
                }
                value
            }
        };
        let mut next_idx = idx.to_vec();
        next_idx[i] += 1;
        if dfs(seqs, seen, &next_idx, next_value) {
            return true;
        }
        if op.responded.is_none() && dfs(seqs, seen, &next_idx, value) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_linearizable;
    use psync_net::NodeId;
    use psync_time::{Duration, Time};

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn write(node: usize, v: u64, inv: i64, res: i64) -> Operation {
        Operation {
            node: NodeId(node),
            kind: OpKind::Write { value: Value(v) },
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    fn read(node: usize, v: u64, inv: i64, res: i64) -> Operation {
        Operation {
            node: NodeId(node),
            kind: OpKind::Read { returned: Value(v) },
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    #[test]
    fn linearizable_implies_sequentially_consistent() {
        let histories = [
            vec![write(0, 1, 0, 2), read(1, 1, 3, 4)],
            vec![write(0, 1, 0, 10), read(1, 0, 2, 5)],
            vec![],
        ];
        for h in histories {
            if check_linearizable(&h, Value::INITIAL).holds() {
                assert!(check_sequentially_consistent(&h, Value::INITIAL).holds());
            }
        }
    }

    #[test]
    fn stale_read_is_sc_but_not_linearizable() {
        let ops = vec![write(0, 1, 0, 2), read(1, 0, 5, 6)];
        assert!(!check_linearizable(&ops, Value::INITIAL).holds());
        assert!(check_sequentially_consistent(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn program_order_still_binds() {
        // Node 1 reads new then old: program order forbids re-ordering its
        // own reads, so even SC rejects the new-old inversion.
        let ops = vec![write(0, 1, 0, 2), read(1, 1, 5, 6), read(1, 0, 7, 8)];
        assert!(!check_sequentially_consistent(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn cross_node_disagreement_rejected() {
        // Two writes; node 2 sees 1→2, node 3 sees 2→1: no single total
        // order serves both, regardless of timing.
        let ops = vec![
            write(0, 1, 0, 1),
            write(1, 2, 2, 3),
            read(2, 1, 10, 11),
            read(2, 2, 12, 13),
            read(3, 2, 10, 11),
            read(3, 1, 12, 13),
        ];
        assert!(!check_sequentially_consistent(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn unwritten_value_rejected() {
        let ops = vec![read(0, 42, 0, 1)];
        assert!(!check_sequentially_consistent(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn open_write_optional() {
        let open = Operation {
            node: NodeId(0),
            kind: OpKind::Write { value: Value(1) },
            invoked: t(0),
            responded: None,
        };
        assert!(check_sequentially_consistent(&[open, read(1, 1, 5, 6)], Value::INITIAL).holds());
        assert!(check_sequentially_consistent(&[open, read(1, 0, 5, 6)], Value::INITIAL).holds());
    }
}
