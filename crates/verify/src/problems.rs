//! The problems `P` and `Q` of Section 6 as trace predicates.

use psync_automata::{Problem, TimedTrace, Verdict};
use psync_register::history::{extract, ExtractError};
use psync_register::{RegAction, Value};
use psync_time::Duration;

/// The problem `P` of a linearizable read-write object (Section 6.1): a
/// trace is accepted iff the environment is the first to violate the
/// alternation condition, or the trace respects alternation and is
/// linearizable.
#[derive(Debug, Clone)]
pub struct LinearizableRegister {
    n: usize,
    initial: Value,
}

impl LinearizableRegister {
    /// The problem for an `n`-node register initialized to `initial`.
    #[must_use]
    pub fn new(n: usize, initial: Value) -> Self {
        LinearizableRegister { n, initial }
    }
}

impl Problem<RegAction> for LinearizableRegister {
    fn name(&self) -> &str {
        "linearizable read-write register (P)"
    }

    fn contains(&self, trace: &TimedTrace<RegAction>) -> Verdict {
        match extract(trace, self.n) {
            // The environment broke alternation first: vacuously in P.
            Err(ExtractError::EnvironmentViolation { .. }) => Verdict::Holds,
            Err(e @ ExtractError::SystemViolation { .. }) => Verdict::violated(e),
            Ok(ops) => crate::check_linearizable(&ops, self.initial),
        }
    }
}

/// The problem `Q` of an ε-superlinearizable read-write object
/// (Section 6.2): as `P`, but every operation's linearization point must
/// be at least `2ε` after its invocation. `Q_ε ⊆ P` (Lemma 6.4) is what
/// lets Algorithm S survive the clock transformation.
#[derive(Debug, Clone)]
pub struct SuperlinearizableRegister {
    n: usize,
    initial: Value,
    slack: Duration,
}

impl SuperlinearizableRegister {
    /// The problem for an `n`-node register with linearization slack
    /// `slack` (the paper's `2ε`).
    #[must_use]
    pub fn new(n: usize, initial: Value, slack: Duration) -> Self {
        SuperlinearizableRegister { n, initial, slack }
    }
}

impl Problem<RegAction> for SuperlinearizableRegister {
    fn name(&self) -> &str {
        "ε-superlinearizable read-write register (Q)"
    }

    fn contains(&self, trace: &TimedTrace<RegAction>) -> Verdict {
        match extract(trace, self.n) {
            Err(ExtractError::EnvironmentViolation { .. }) => Verdict::Holds,
            Err(e @ ExtractError::SystemViolation { .. }) => Verdict::violated(e),
            Ok(ops) => crate::check_superlinearizable(&ops, self.initial, self.slack),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::{NodeId, SysAction};
    use psync_register::RegisterOp;
    use psync_time::Time;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn app(op: RegisterOp, at: Time) -> (RegAction, Time) {
        (SysAction::App(op), at)
    }

    fn good_trace() -> TimedTrace<RegAction> {
        TimedTrace::from_pairs(vec![
            app(
                RegisterOp::Write {
                    node: NodeId(0),
                    value: Value(1),
                },
                t(0),
            ),
            app(RegisterOp::Ack { node: NodeId(0) }, t(5)),
            app(RegisterOp::Read { node: NodeId(1) }, t(6)),
            app(
                RegisterOp::Return {
                    node: NodeId(1),
                    value: Value(1),
                },
                t(9),
            ),
        ])
    }

    #[test]
    fn p_accepts_linearizable_trace() {
        let p = LinearizableRegister::new(2, Value::INITIAL);
        assert!(p.contains(&good_trace()).holds());
        assert!(p.name().contains("linearizable"));
    }

    #[test]
    fn p_rejects_stale_read() {
        let p = LinearizableRegister::new(2, Value::INITIAL);
        let bad = TimedTrace::from_pairs(vec![
            app(
                RegisterOp::Write {
                    node: NodeId(0),
                    value: Value(1),
                },
                t(0),
            ),
            app(RegisterOp::Ack { node: NodeId(0) }, t(5)),
            app(RegisterOp::Read { node: NodeId(1) }, t(6)),
            app(
                RegisterOp::Return {
                    node: NodeId(1),
                    value: Value(0),
                },
                t(9),
            ),
        ]);
        assert!(!p.contains(&bad).holds());
    }

    #[test]
    fn p_vacuously_accepts_environment_violation() {
        let p = LinearizableRegister::new(1, Value::INITIAL);
        let double = TimedTrace::from_pairs(vec![
            app(RegisterOp::Read { node: NodeId(0) }, t(0)),
            app(RegisterOp::Read { node: NodeId(0) }, t(1)),
        ]);
        assert!(p.contains(&double).holds());
    }

    #[test]
    fn p_rejects_system_violation() {
        let p = LinearizableRegister::new(1, Value::INITIAL);
        let bogus = TimedTrace::from_pairs(vec![app(RegisterOp::Ack { node: NodeId(0) }, t(0))]);
        assert!(!p.contains(&bogus).holds());
    }

    #[test]
    fn q_is_stricter_than_p() {
        // Read interval [6, 9] with slack 4: earliest point 10 > 9.
        let q = SuperlinearizableRegister::new(2, Value::INITIAL, Duration::from_millis(4));
        assert!(!q.contains(&good_trace()).holds());
        let q_loose = SuperlinearizableRegister::new(2, Value::INITIAL, Duration::from_millis(1));
        assert!(q_loose.contains(&good_trace()).holds());
    }
}
