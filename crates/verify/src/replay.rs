//! Execution replay: Lemma 2.1, operationalized.
//!
//! Lemma 2.1 of the paper states that the projection of an (admissible)
//! execution of a composition onto any component is an execution of that
//! component. The engine *should* guarantee this by construction; these
//! replayers check it mechanically: given a recorded execution and a fresh
//! copy of one component, they re-apply the component's projected actions
//! (with `ν` advances in between) and report the first step the component
//! refuses. A refusal means either an engine bug or a component whose
//! `step`/`advance` are not functions of the state the engine maintained —
//! both worth catching.

use psync_automata::{
    Action, ClockComponent, ClockComponentBox, ComponentBox, Execution, TimedComponent,
};
use psync_time::Time;

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The component refused an action the engine recorded it performing.
    StepRefused {
        /// Index of the offending event within the *projected* sequence.
        index: usize,
        /// Debug rendering of the action.
        action: String,
        /// The time passed to the step.
        at: Time,
    },
    /// The component refused a time advance the engine must have made.
    AdvanceRefused {
        /// Index of the next projected event.
        index: usize,
        /// Advance source time.
        from: Time,
        /// Advance target time.
        to: Time,
    },
    /// A clocked replay found an event without a clock reading.
    MissingClock {
        /// Index of the offending event.
        index: usize,
    },
}

impl core::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplayError::StepRefused { index, action, at } => {
                write!(f, "event #{index}: component refused {action} at {at}")
            }
            ReplayError::AdvanceRefused { index, from, to } => {
                write!(f, "before event #{index}: ν from {from} to {to} refused")
            }
            ReplayError::MissingClock { index } => {
                write!(f, "event #{index} carries no clock reading")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays the projection of `exec` onto a fresh copy of a timed
/// component. Returns the number of projected events on success.
///
/// # Errors
///
/// See [`ReplayError`].
pub fn replay_timed<A: Action, C: TimedComponent<Action = A>>(
    component: C,
    exec: &Execution<A>,
) -> Result<usize, ReplayError> {
    let boxed = ComponentBox::new(component);
    let mut state = boxed.initial();
    let mut now = Time::ZERO;
    let mut count = 0usize;
    for e in exec.events() {
        if boxed.classify(&e.action).is_none() {
            continue;
        }
        if e.now > now {
            state = boxed
                .advance(&state, now, e.now)
                .ok_or(ReplayError::AdvanceRefused {
                    index: count,
                    from: now,
                    to: e.now,
                })?;
            now = e.now;
        }
        state = boxed
            .step(&state, &e.action, now)
            .ok_or_else(|| ReplayError::StepRefused {
                index: count,
                action: format!("{:?}", e.action),
                at: now,
            })?;
        count += 1;
    }
    Ok(count)
}

/// Replays the projection of `exec` onto a fresh copy of a clock
/// component, driving it by the recorded per-node *clock* readings.
/// Returns the number of projected events on success.
///
/// # Errors
///
/// See [`ReplayError`]; in particular every projected event must carry a
/// clock reading (it does when the execution came from an engine run where
/// this component lived inside a clock node).
pub fn replay_clock<A: Action, C: ClockComponent<Action = A>>(
    component: C,
    exec: &Execution<A>,
) -> Result<usize, ReplayError> {
    let boxed = ClockComponentBox::new(component);
    let mut state = boxed.initial();
    let mut clock = Time::ZERO;
    let mut count = 0usize;
    for e in exec.events() {
        if boxed.classify(&e.action).is_none() {
            continue;
        }
        let c = e.clock.ok_or(ReplayError::MissingClock { index: count })?;
        if c > clock {
            state = boxed
                .advance(&state, clock, c)
                .ok_or(ReplayError::AdvanceRefused {
                    index: count,
                    from: clock,
                    to: c,
                })?;
            clock = c;
        }
        state = boxed
            .step(&state, &e.action, clock)
            .ok_or_else(|| ReplayError::StepRefused {
                index: count,
                action: format!("{:?}", e.action),
                at: clock,
            })?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::{BeepAction, Beeper, ClockBeeper};
    use psync_automata::{ActionKind, TimedEvent};
    use psync_time::Duration;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn beep(seq: u64, now: Time, clock: Option<Time>) -> TimedEvent<BeepAction> {
        TimedEvent {
            action: BeepAction::Beep { src: 0, seq },
            kind: ActionKind::Output,
            now,
            clock,
            node: None,
        }
    }

    #[test]
    fn valid_projection_replays() {
        let exec = Execution::new(vec![beep(0, at(5), None), beep(1, at(10), None)], at(12));
        assert_eq!(replay_timed(Beeper::new(ms(5)), &exec), Ok(2));
    }

    #[test]
    fn premature_action_is_refused() {
        let exec = Execution::new(vec![beep(0, at(4), None)], at(12));
        let err = replay_timed(Beeper::new(ms(5)), &exec).unwrap_err();
        assert!(matches!(err, ReplayError::StepRefused { index: 0, .. }));
    }

    #[test]
    fn missed_deadline_is_refused_at_advance() {
        // The beeper's deadline at 5 ms blocks advancing straight to 7 ms.
        let exec = Execution::new(vec![beep(0, at(7), None)], at(12));
        let err = replay_timed(Beeper::new(ms(5)), &exec).unwrap_err();
        assert!(matches!(err, ReplayError::AdvanceRefused { .. }));
    }

    #[test]
    fn clock_replay_uses_clock_times() {
        // Real times are skewed; clock readings are what matter.
        let exec = Execution::new(
            vec![beep(0, at(7), Some(at(5))), beep(1, at(12), Some(at(10)))],
            at(20),
        );
        assert_eq!(replay_clock(ClockBeeper::new(ms(5)), &exec), Ok(2));
    }

    #[test]
    fn clock_replay_demands_clock_readings() {
        let exec = Execution::new(vec![beep(0, at(7), None)], at(20));
        let err = replay_clock(ClockBeeper::new(ms(5)), &exec).unwrap_err();
        assert_eq!(err, ReplayError::MissingClock { index: 0 });
    }

    #[test]
    fn unrelated_actions_are_skipped() {
        let exec = Execution::new(
            vec![TimedEvent {
                action: BeepAction::Beep { src: 9, seq: 0 },
                kind: ActionKind::Output,
                now: at(1),
                clock: None,
                node: None,
            }],
            at(2),
        );
        // src 9 is outside the beeper's signature: projected count is 0.
        assert_eq!(replay_timed(Beeper::new(ms(5)), &exec), Ok(0));
    }
}
