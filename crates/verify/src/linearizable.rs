//! The linearizability / ε-superlinearizability decision procedure.

use std::collections::HashSet;

use psync_automata::Verdict;
use psync_register::history::{OpKind, Operation};
use psync_register::Value;
use psync_time::{Duration, Time};

/// Decides linearizability of a register history (Section 6.1).
///
/// `ops` must be a well-formed history (as produced by
/// [`psync_register::history::extract`]): per node, operations do not
/// overlap. Operations with `responded = None` (cut off by the run's
/// horizon) are *optional*: they may be linearized or not.
///
/// # Examples
///
/// ```
/// use psync_net::NodeId;
/// use psync_register::history::{OpKind, Operation};
/// use psync_register::Value;
/// use psync_time::{Duration, Time};
/// use psync_verify::check_linearizable;
///
/// let t = |n| Time::ZERO + Duration::from_millis(n);
/// // w(1) on node 0 overlaps a read on node 1 returning 1: fine.
/// let ops = vec![
///     Operation { node: NodeId(0), kind: OpKind::Write { value: Value(1) },
///                 invoked: t(0), responded: Some(t(10)) },
///     Operation { node: NodeId(1), kind: OpKind::Read { returned: Value(1) },
///                 invoked: t(5), responded: Some(t(7)) },
/// ];
/// assert!(check_linearizable(&ops, Value::INITIAL).holds());
/// ```
#[must_use]
pub fn check_linearizable(ops: &[Operation], initial: Value) -> Verdict {
    search(ops, initial, Duration::ZERO)
}

/// Decides ε-superlinearizability (Section 6.2): linearizable, with every
/// linearization point at least `slack` (the paper's `2ε`) after its
/// operation's invocation.
#[must_use]
pub fn check_superlinearizable(ops: &[Operation], initial: Value, slack: Duration) -> Verdict {
    assert!(!slack.is_negative(), "slack must be non-negative");
    search(ops, initial, slack)
}

/// Per-node sequences plus the shared search machinery.
struct Searcher<'a> {
    /// ops, grouped per node, each group in invocation order.
    seqs: Vec<Vec<&'a Operation>>,
    slack: Duration,
    /// Visited (frontier, value, floor) states that did not lead to
    /// success.
    seen: HashSet<(Vec<usize>, Value, Time)>,
}

fn search(ops: &[Operation], initial: Value, slack: Duration) -> Verdict {
    let max_node = ops.iter().map(|o| o.node.0).max().map_or(0, |m| m + 1);
    let mut seqs: Vec<Vec<&Operation>> = vec![Vec::new(); max_node];
    for o in ops {
        seqs[o.node.0].push(o);
    }
    for (i, seq) in seqs.iter().enumerate() {
        for w in seq.windows(2) {
            let prev_end = w[0].responded.unwrap_or(Time::MAX);
            assert!(
                prev_end <= w[1].invoked,
                "history is not sequential at node {i}: \
                 op responding at {prev_end} overlaps one invoked at {}",
                w[1].invoked
            );
        }
    }
    let mut s = Searcher {
        seqs,
        slack,
        seen: HashSet::new(),
    };
    let idx = vec![0usize; max_node];
    if s.dfs(&idx, initial, Time::ZERO) {
        Verdict::Holds
    } else {
        Verdict::violated(describe_failure(ops))
    }
}

impl<'a> Searcher<'a> {
    /// `idx[i]` = how many of node `i`'s ops are linearized; `value` = the
    /// register after them; `floor` = the earliest time the next
    /// linearization point may take.
    fn dfs(&mut self, idx: &[usize], value: Value, floor: Time) -> bool {
        // Success: everything left is optional (open operations).
        if self
            .seqs
            .iter()
            .zip(idx)
            .all(|(seq, &i)| seq[i..].iter().all(|o| o.responded.is_none()))
        {
            return true;
        }
        if !self.seen.insert((idx.to_vec(), value, floor)) {
            return false;
        }
        // An op may be linearized next iff no other unlinearized op
        // responded strictly before its invocation. Per-node sequences are
        // time-ordered, so only each node's next op matters for the bound.
        let next_res: Vec<Time> = self
            .seqs
            .iter()
            .zip(idx)
            .map(|(seq, &i)| {
                seq.get(i)
                    .map_or(Time::MAX, |o| o.responded.unwrap_or(Time::MAX))
            })
            .collect();
        let min_res = |skip: usize| {
            next_res
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != skip)
                .map(|(_, &t)| t)
                .min()
                .unwrap_or(Time::MAX)
        };
        for i in 0..self.seqs.len() {
            let Some(op) = self.seqs[i].get(idx[i]) else {
                continue;
            };
            let op = *op;
            if op.invoked > min_res(i) {
                continue; // someone else must be linearized first
            }
            // The linearization point: as early as legality allows.
            let point = floor.max(op.invoked + self.slack);
            if let Some(res) = op.responded {
                if point > res {
                    continue; // cannot fit the point inside the interval
                }
            }
            let next_value = match op.kind {
                OpKind::Write { value: v } => v,
                OpKind::Read { returned } => {
                    if returned != value {
                        continue; // would read the wrong value
                    }
                    value
                }
            };
            let mut next_idx = idx.to_vec();
            next_idx[i] += 1;
            if self.dfs(&next_idx, next_value, point) {
                return true;
            }
            // An *open* op may also be skipped entirely (it never took
            // effect). Only last-of-node ops can be open.
            if op.responded.is_none() {
                let mut skip_idx = idx.to_vec();
                skip_idx[i] += 1;
                if self.dfs(&skip_idx, value, floor) {
                    return true;
                }
            }
        }
        false
    }
}

fn describe_failure(ops: &[Operation]) -> String {
    let reads = ops.iter().filter(|o| o.is_read()).count();
    format!(
        "no valid linearization of {} operations ({} reads, {} writes)",
        ops.len(),
        reads,
        ops.len() - reads
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::NodeId;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn write(node: usize, v: u64, inv: i64, res: i64) -> Operation {
        Operation {
            node: NodeId(node),
            kind: OpKind::Write { value: Value(v) },
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    fn read(node: usize, v: u64, inv: i64, res: i64) -> Operation {
        Operation {
            node: NodeId(node),
            kind: OpKind::Read { returned: Value(v) },
            invoked: t(inv),
            responded: Some(t(res)),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&[], Value::INITIAL).holds());
    }

    #[test]
    fn sequential_read_your_write() {
        let ops = vec![write(0, 1, 0, 2), read(0, 1, 3, 4)];
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        // Write fully done by 2 ms; read starting at 3 ms returns v0.
        let ops = vec![write(0, 1, 0, 2), read(1, 0, 3, 4)];
        assert!(!check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn concurrent_read_may_return_old_or_new() {
        for returned in [0u64, 1u64] {
            let ops = vec![write(0, 1, 0, 10), read(1, returned, 2, 5)];
            assert!(
                check_linearizable(&ops, Value::INITIAL).holds(),
                "concurrent read of {returned} must be allowed"
            );
        }
    }

    #[test]
    fn read_of_never_written_value_rejected() {
        let ops = vec![read(0, 42, 0, 1)];
        assert!(!check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn new_old_inversion_rejected() {
        // Classic violation: two sequential reads observe new then old.
        let ops = vec![
            write(0, 1, 0, 10),
            read(1, 1, 2, 4), // sees the new value…
            read(1, 0, 5, 7), // …then the old one again
        ];
        assert!(!check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn interleaved_writers_with_consistent_readers() {
        let ops = vec![
            write(0, 1, 0, 10),
            write(1, 2, 2, 12),
            read(2, 1, 11, 13), // w1 then read(1): w2 must come after
            read(2, 2, 14, 16),
        ];
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn readers_disagreeing_on_order_rejected() {
        // Two concurrent writes; node 2 sees 1 then 2, node 3 sees 2 then 1
        // — after all writes completed, impossible.
        let ops = vec![
            write(0, 1, 0, 10),
            write(1, 2, 0, 10),
            read(2, 1, 11, 12),
            read(2, 2, 13, 14),
            read(3, 2, 11, 12),
            read(3, 1, 13, 14),
        ];
        assert!(!check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn open_write_may_or_may_not_take_effect() {
        let open_write = Operation {
            node: NodeId(0),
            kind: OpKind::Write { value: Value(1) },
            invoked: t(0),
            responded: None,
        };
        // Read of the open write's value: allowed (it took effect).
        let ops = vec![open_write, read(1, 1, 5, 6)];
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
        // Read of v0 after the open write started: also allowed (it did
        // not take effect yet).
        let ops = vec![open_write, read(1, 0, 5, 6)];
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn superlinearizability_requires_late_points() {
        // Read wholly inside [0, 3] with slack 2: point in [2, 3] — fine.
        let ops = vec![read(0, 0, 0, 3)];
        assert!(check_superlinearizable(&ops, Value::INITIAL, ms(2)).holds());
        // Slack 4 makes the earliest legal point 4 > res 3 — impossible.
        assert!(!check_superlinearizable(&ops, Value::INITIAL, ms(4)).holds());
    }

    #[test]
    fn superlinearizability_is_stronger_than_linearizability() {
        // Linearizable but not 2ms-superlinearizable: the read must
        // observe the write, so point(w) < point(r); with slack 2 the
        // write's earliest point is 2, the read must be ≥ its own inv+2 =
        // 7... here r = [5,6]: inv+2 = 7 > 6.
        let ops = vec![write(0, 1, 0, 4), read(1, 1, 5, 6)];
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
        assert!(!check_superlinearizable(&ops, Value::INITIAL, ms(2)).holds());
    }

    #[test]
    fn superlinearizable_ordering_through_floor() {
        // The floor propagates: op A's point at 12 forces op B's point
        // ≥ 12 even though B's interval allows earlier.
        let a = Operation {
            node: NodeId(0),
            kind: OpKind::Write { value: Value(1) },
            invoked: t(10),
            responded: Some(t(20)),
        };
        let b = Operation {
            node: NodeId(1),
            kind: OpKind::Read { returned: Value(1) },
            invoked: t(11),
            responded: Some(t(12)),
        };
        // b must come after a (it reads 1); a's earliest point is 10+2=12;
        // b's point must be ≥ 12 and ≥ 11+2 = 13 → but b ends at 12.
        assert!(!check_superlinearizable(&[a, b], Value::INITIAL, ms(2)).holds());
    }

    #[test]
    #[should_panic(expected = "not sequential")]
    fn overlapping_ops_at_one_node_rejected() {
        let ops = vec![read(0, 0, 0, 5), read(0, 0, 3, 8)];
        let _ = check_linearizable(&ops, Value::INITIAL);
    }

    #[test]
    fn long_sequential_history_is_fast() {
        // 600 strictly sequential ops across 3 nodes: exercises the
        // memoized frontier search.
        let mut ops = Vec::new();
        let mut time = 0i64;
        for k in 0..200u64 {
            let node = (k % 3) as usize;
            ops.push(write(node, k + 1, time, time + 1));
            let last = k + 1;
            time += 2;
            ops.push(read(((k + 1) % 3) as usize, last, time, time + 1));
            time += 2;
        }
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
    }

    #[test]
    fn violation_message_names_counts() {
        let ops = vec![read(0, 42, 0, 1)];
        let v = check_linearizable(&ops, Value::INITIAL);
        let Verdict::Violated(msg) = v else {
            panic!("expected violation")
        };
        assert!(msg.contains("1 operations"));
        assert!(msg.contains("1 reads"));
    }
}
