//! Property tests for the exact time arithmetic: the algebraic laws the
//! algorithms silently rely on (preconditions like `now = t + d'₂ + δ`
//! demand that arithmetic is exact, associative and order-compatible).

use proptest::prelude::*;
use psync_time::{DelayBounds, Duration, Time};

/// Durations small enough that triple sums cannot overflow.
fn dur() -> impl Strategy<Value = Duration> {
    (-1_000_000_000_000i64..1_000_000_000_000).prop_map(Duration::from_nanos)
}

fn pos_dur() -> impl Strategy<Value = Duration> {
    (0i64..1_000_000_000_000).prop_map(Duration::from_nanos)
}

fn time() -> impl Strategy<Value = Time> {
    (0i64..1_000_000_000_000).prop_map(|ns| Time::from_nanos(ns).unwrap())
}

proptest! {
    #[test]
    fn duration_addition_is_commutative_and_associative(a in dur(), b in dur(), c in dur()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn duration_sub_is_inverse_of_add(a in dur(), b in dur()) {
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a - b + b, a);
    }

    #[test]
    fn negation_and_abs(a in dur()) {
        prop_assert_eq!(-(-a), a);
        prop_assert!(!a.abs().is_negative());
        prop_assert_eq!(a.abs(), (-a).abs());
    }

    #[test]
    fn scalar_multiplication_distributes(a in dur(), k in -1000i64..1000) {
        prop_assert_eq!(a * k, k * a);
        if k != 0 {
            prop_assert_eq!((a * k).as_nanos(), a.as_nanos() * k);
        }
    }

    #[test]
    fn max_zero_is_idempotent_clamp(a in dur()) {
        let m = a.max_zero();
        prop_assert!(!m.is_negative());
        prop_assert_eq!(m.max_zero(), m);
        if !a.is_negative() {
            prop_assert_eq!(m, a);
        }
    }

    #[test]
    fn time_duration_roundtrip(t in time(), d in pos_dur()) {
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
    }

    #[test]
    fn skew_is_a_metric_ish(a in time(), b in time(), c in time()) {
        prop_assert_eq!(a.skew(b), b.skew(a));
        prop_assert_eq!(a.skew(a), Duration::ZERO);
        // Triangle inequality.
        prop_assert!(a.skew(c) <= a.skew(b) + b.skew(c));
    }

    #[test]
    fn ordering_is_translation_invariant(a in time(), b in time(), d in pos_dur()) {
        prop_assert_eq!(a <= b, a + d <= b + d);
    }

    #[test]
    fn widening_monotone_in_eps(d1 in pos_dur(), width in pos_dur(), e1 in pos_dur(), e2 in pos_dur()) {
        let bounds = DelayBounds::new(d1, d1 + width).unwrap();
        let (small, large) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let ws = bounds.widen_for_skew(small);
        let wl = bounds.widen_for_skew(large);
        prop_assert!(wl.min() <= ws.min());
        prop_assert!(wl.max() >= ws.max());
        // Widening always contains the original interval.
        prop_assert!(ws.min() <= bounds.min() && ws.max() >= bounds.max());
    }

    #[test]
    fn widening_composes(d1 in pos_dur(), width in pos_dur(), e in pos_dur(), k in 0i64..10, l in pos_dur()) {
        let bounds = DelayBounds::new(d1, d1 + width).unwrap();
        let direct = bounds.widen_composed(e, k, l);
        let staged = bounds.widen_for_skew(e).widen_for_steps(k, l);
        prop_assert_eq!(direct, staged);
    }

    #[test]
    fn contains_respects_bounds(d1 in pos_dur(), width in pos_dur(), probe in pos_dur()) {
        let bounds = DelayBounds::new(d1, d1 + width).unwrap();
        prop_assert_eq!(
            bounds.contains(probe),
            probe >= bounds.min() && probe <= bounds.max()
        );
    }

    #[test]
    fn saturating_add_never_panics_and_clamps(t in time(), d in dur()) {
        let r = t.saturating_add_duration(d);
        prop_assert!(r >= Time::ZERO);
        if let Some(exact) = t.checked_add_duration(d) {
            prop_assert_eq!(r, exact);
        }
    }
}
