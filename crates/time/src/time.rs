//! Points on the (real or clock) time axis.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use crate::{Duration, TimeError};

/// A point on the real-time or clock-time axis, in exact nanoseconds since
/// the start of the execution.
///
/// `Time` models the paper's `now` and `clock` state components. Its domain
/// is the non-negative reals `ℜ⁺` (Definition 2.1), so `Time` is always
/// `≥ Time::ZERO`; arithmetic that would produce a negative time panics (or
/// returns `None`/`Err` in the checked variants).
///
/// # Examples
///
/// ```
/// use psync_time::{Duration, Time};
///
/// let send = Time::ZERO + Duration::from_millis(10);
/// let recv = send + Duration::from_millis(3);
/// assert_eq!(recv - send, Duration::from_millis(3));
/// assert!(recv.checked_sub_duration(Duration::from_secs(1)).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The start of every execution (`now = 0` in every start state, axiom S1).
    pub const ZERO: Time = Time(0);
    /// The largest representable time.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates a time from a non-negative nanosecond count.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::NegativeTime`] if `ns < 0`.
    pub const fn from_nanos(ns: i64) -> Result<Self, TimeError> {
        if ns < 0 {
            Err(TimeError::NegativeTime(ns))
        } else {
            Ok(Time(ns))
        }
    }

    /// Returns the nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Returns the time as fractional seconds, for reporting only.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration since the start of the execution.
    #[must_use]
    pub const fn elapsed(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Checked addition of a (possibly negative) duration.
    ///
    /// Returns `None` if the result would be negative or overflow.
    #[must_use]
    pub const fn checked_add_duration(self, d: Duration) -> Option<Time> {
        match self.0.checked_add(d.as_nanos()) {
            Some(ns) if ns >= 0 => Some(Time(ns)),
            _ => None,
        }
    }

    /// Checked subtraction of a duration.
    ///
    /// Returns `None` if the result would be negative or overflow.
    #[must_use]
    pub const fn checked_sub_duration(self, d: Duration) -> Option<Time> {
        match self.0.checked_sub(d.as_nanos()) {
            Some(ns) if ns >= 0 => Some(Time(ns)),
            _ => None,
        }
    }

    /// Saturating addition: clamps at [`Time::ZERO`] and [`Time::MAX`].
    #[must_use]
    pub const fn saturating_add_duration(self, d: Duration) -> Time {
        match self.0.checked_add(d.as_nanos()) {
            Some(ns) if ns >= 0 => Time(ns),
            Some(_) => Time::ZERO,
            None => {
                if d.as_nanos() > 0 {
                    Time::MAX
                } else {
                    Time::ZERO
                }
            }
        }
    }

    /// The absolute skew `|self − other|`, as used by the clock predicate
    /// `C_ε`: `|now − clock| ≤ ε` (Definition 2.5).
    #[must_use]
    pub fn skew(self, other: Time) -> Duration {
        (self - other).abs()
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics if the result would be negative or overflow.
    fn add(self, d: Duration) -> Time {
        self.checked_add_duration(d)
            .expect("Time + Duration out of range")
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics if the result would be negative or overflow.
    fn sub(self, d: Duration) -> Time {
        self.checked_sub_duration(d)
            .expect("Time - Duration out of range")
    }
}

impl SubAssign<Duration> for Time {
    fn sub_assign(&mut self, d: Duration) {
        *self = *self - d;
    }
}

impl Sub for Time {
    type Output = Duration;

    fn sub(self, rhs: Time) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Time difference overflowed"),
        )
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_execution_start() {
        assert_eq!(Time::ZERO.as_nanos(), 0);
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn from_nanos_rejects_negative() {
        assert_eq!(Time::from_nanos(-1), Err(TimeError::NegativeTime(-1)));
        assert_eq!(Time::from_nanos(5).unwrap().as_nanos(), 5);
    }

    #[test]
    fn add_sub_duration_roundtrip() {
        let t = Time::ZERO + Duration::from_millis(10);
        assert_eq!((t - Duration::from_millis(4)).as_nanos(), 6_000_000);
        assert_eq!(t - Time::ZERO, Duration::from_millis(10));
    }

    #[test]
    fn negative_duration_addition_moves_backwards() {
        let t = Time::ZERO + Duration::from_millis(10);
        assert_eq!(
            t + Duration::from_millis(-3),
            Time::ZERO + Duration::from_millis(7)
        );
    }

    #[test]
    fn checked_ops_guard_domain() {
        assert_eq!(Time::ZERO.checked_sub_duration(Duration::NANOSECOND), None);
        assert_eq!(
            Time::ZERO.checked_add_duration(Duration::from_nanos(-1)),
            None
        );
        assert_eq!(Time::MAX.checked_add_duration(Duration::NANOSECOND), None);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            Time::ZERO.saturating_add_duration(Duration::from_nanos(-5)),
            Time::ZERO
        );
        assert_eq!(
            Time::MAX.saturating_add_duration(Duration::NANOSECOND),
            Time::MAX
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_below_zero_panics() {
        let _ = Time::ZERO - Duration::NANOSECOND;
    }

    #[test]
    fn skew_is_symmetric_abs() {
        let a = Time::ZERO + Duration::from_millis(5);
        let b = Time::ZERO + Duration::from_millis(8);
        assert_eq!(a.skew(b), Duration::from_millis(3));
        assert_eq!(b.skew(a), Duration::from_millis(3));
        assert_eq!(a.skew(a), Duration::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Time::ZERO + Duration::from_millis(5);
        let b = Time::ZERO + Duration::from_millis(8);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_format() {
        assert_eq!((Time::ZERO + Duration::from_millis(3)).to_string(), "t=3ms");
    }
}
