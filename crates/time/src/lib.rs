//! Exact discrete time arithmetic for the `psync` workspace.
//!
//! The algorithms of Chaudhuri, Gawlick and Lynch (PODC 1993) contain
//! transition preconditions that compare times for *exact equality* — for
//! example, Algorithm S applies a pending update when `now = t + d'₂ + δ`
//! (Figure 3 of the paper) and the send buffer `S_{ij,ε}` forwards a message
//! only when `c = clock` (Figure 2). Floating point time would silently break
//! those preconditions, so every quantity of time in this workspace is an
//! exact signed 64-bit count of **nanoseconds**:
//!
//! * [`Time`] — a point on the real-time or clock-time axis (the paper's
//!   `now` and `clock` components). Always non-negative, mirroring the
//!   paper's domain `ℜ⁺`.
//! * [`Duration`] — a signed difference of two [`Time`]s (the paper's `Δt`,
//!   `Δc`, `ε`, `d₁`, `d₂`, `c`, `δ`, `ℓ`, …).
//! * [`DelayBounds`] — a closed interval `[d₁, d₂]` of message delays, with
//!   the widening arithmetic of Theorem 4.7 (`d'₁ = max(d₁ − 2ε, 0)`,
//!   `d'₂ = d₂ + 2ε`) and Theorem 5.2 (`d'₂ = d₂ + 2ε + kℓ`).
//!
//! All arithmetic is checked: overflow panics rather than wrapping, because a
//! wrapped time would corrupt a simulation silently.
//!
//! # Examples
//!
//! ```
//! use psync_time::{Duration, Time, DelayBounds};
//!
//! let eps = Duration::from_micros(500);
//! let net = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(5)).unwrap();
//! let widened = net.widen_for_skew(eps);
//! assert_eq!(widened.min(), Duration::ZERO); // max(1ms − 2·0.5ms, 0)
//! assert_eq!(widened.max(), Duration::from_millis(6));
//!
//! let t = Time::ZERO + Duration::from_millis(3);
//! assert_eq!(t - Time::ZERO, Duration::from_millis(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod duration;
mod interval;
mod time;

pub use duration::Duration;
pub use interval::DelayBounds;
pub use time::Time;

/// Error returned when constructing an invalid interval or negative time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The interval's lower bound exceeded its upper bound.
    EmptyInterval {
        /// Offending lower bound.
        min: Duration,
        /// Offending upper bound.
        max: Duration,
    },
    /// A delay bound was negative.
    NegativeDelay(Duration),
    /// A [`Time`] would have been negative.
    NegativeTime(i64),
}

impl core::fmt::Display for TimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TimeError::EmptyInterval { min, max } => {
                write!(f, "empty delay interval: min {min} exceeds max {max}")
            }
            TimeError::NegativeDelay(d) => write!(f, "negative delay bound: {d}"),
            TimeError::NegativeTime(ns) => write!(f, "negative time: {ns} ns"),
        }
    }
}

impl std::error::Error for TimeError {}
