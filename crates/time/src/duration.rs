//! Signed spans of time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed span of time, counted in exact nanoseconds.
///
/// `Duration` models every "amount of time" in the paper: clock skews `ε`,
/// message delay bounds `d₁`/`d₂`, the tuning knob `c`, the settling slack
/// `δ`, MMT step bounds `ℓ`, and differences of [`Time`](crate::Time)s.
/// Unlike [`std::time::Duration`] it is signed, because the difference
/// `clock − now` that the clock predicate `C_ε` constrains
/// (`|now − clock| ≤ ε`, Definition 2.5) can be negative.
///
/// # Examples
///
/// ```
/// use psync_time::Duration;
///
/// let eps = Duration::from_millis(2);
/// let skew = Duration::from_micros(-1500);
/// assert!(skew.abs() <= eps, "within the C_eps envelope");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(i64::MAX);
    /// The most negative representable duration.
    pub const MIN: Duration = Duration(i64::MIN);
    /// One nanosecond.
    pub const NANOSECOND: Duration = Duration(1);

    /// Creates a duration from a signed count of nanoseconds.
    ///
    /// ```
    /// use psync_time::Duration;
    /// assert_eq!(Duration::from_nanos(1_000).as_nanos(), 1_000);
    /// ```
    #[must_use]
    pub const fn from_nanos(ns: i64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from a signed count of microseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub const fn from_micros(us: i64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => Duration(ns),
            None => panic!("Duration::from_micros overflowed"),
        }
    }

    /// Creates a duration from a signed count of milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub const fn from_millis(ms: i64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => Duration(ns),
            None => panic!("Duration::from_millis overflowed"),
        }
    }

    /// Creates a duration from a signed count of whole seconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub const fn from_secs(s: i64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => Duration(ns),
            None => panic!("Duration::from_secs overflowed"),
        }
    }

    /// Returns the exact nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Returns the duration as (possibly fractional) seconds, for reporting.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the absolute value.
    ///
    /// # Panics
    ///
    /// Panics if the value is [`Duration::MIN`].
    #[must_use]
    pub fn abs(self) -> Duration {
        Duration(self.0.checked_abs().expect("Duration::abs overflowed"))
    }

    /// `true` when the duration is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` when the duration is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// `true` when the duration is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(ns) => Some(Duration(ns)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on overflow.
    #[must_use]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(ns) => Some(Duration(ns)),
            None => None,
        }
    }

    /// Checked scalar multiplication; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, k: i64) -> Option<Duration> {
        match self.0.checked_mul(k) {
            Some(ns) => Some(Duration(ns)),
            None => None,
        }
    }

    /// Scales by `ppm` parts per million, rounding away from zero — the
    /// drift-margin idiom `ρ · Δt` of rate-bounded clocks: the margin a
    /// sound bound must add for a clock that may have drifted at up to
    /// `ppm` over an elapsed span of `self`. Rounding away from zero
    /// keeps the margin an over-approximation in both directions.
    ///
    /// ```
    /// use psync_time::Duration;
    /// // 100 ppm over one second is 100 µs.
    /// assert_eq!(
    ///     Duration::from_secs(1).scale_ppm(100),
    ///     Duration::from_micros(100)
    /// );
    /// // Sub-ppm remainders round up, never down.
    /// assert_eq!(Duration::from_nanos(1).scale_ppm(1), Duration::NANOSECOND);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the scaled value overflows an `i64`.
    #[must_use]
    pub fn scale_ppm(self, ppm: i64) -> Duration {
        let prod = i128::from(self.0) * i128::from(ppm);
        let q = prod / 1_000_000;
        let r = prod % 1_000_000;
        let rounded = if r > 0 {
            q + 1
        } else if r < 0 {
            q - 1
        } else {
            q
        };
        Duration(i64::try_from(rounded).expect("Duration::scale_ppm overflowed"))
    }

    /// Clamps to be at least [`Duration::ZERO`] — the paper's
    /// `max(d₁ − 2ε, 0)` idiom from Theorem 4.7.
    #[must_use]
    pub fn max_zero(self) -> Duration {
        if self.0 < 0 {
            Duration::ZERO
        } else {
            self
        }
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        self.checked_add(rhs).expect("Duration addition overflowed")
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        self.checked_sub(rhs)
            .expect("Duration subtraction overflowed")
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Neg for Duration {
    type Output = Duration;

    fn neg(self) -> Duration {
        Duration(self.0.checked_neg().expect("Duration negation overflowed"))
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;

    fn mul(self, k: i64) -> Duration {
        self.checked_mul(k)
            .expect("Duration multiplication overflowed")
    }
}

impl Mul<Duration> for i64 {
    type Output = Duration;

    fn mul(self, d: Duration) -> Duration {
        d * self
    }
}

impl Div<i64> for Duration {
    type Output = Duration;

    fn div(self, k: i64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        let (sign, mag) = if ns < 0 {
            ("-", ns.unsigned_abs())
        } else {
            ("", ns.unsigned_abs())
        };
        if mag == 0 {
            write!(f, "0s")
        } else if mag % 1_000_000_000 == 0 {
            write!(f, "{sign}{}s", mag / 1_000_000_000)
        } else if mag % 1_000_000 == 0 {
            write!(f, "{sign}{}ms", mag / 1_000_000)
        } else if mag % 1_000 == 0 {
            write!(f, "{sign}{}us", mag / 1_000)
        } else {
            write!(f, "{sign}{mag}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Duration::from_secs(1), Duration::from_nanos(1_000_000_000));
        assert_eq!(Duration::from_millis(1), Duration::from_nanos(1_000_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_millis(-3), Duration::from_nanos(-3_000_000));
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Duration::from_nanos(7);
        let b = Duration::from_nanos(5);
        assert_eq!(a + b, Duration::from_nanos(12));
        assert_eq!(a - b, Duration::from_nanos(2));
        assert_eq!(b - a, Duration::from_nanos(-2));
        assert_eq!(a * 3, Duration::from_nanos(21));
        assert_eq!(-a, Duration::from_nanos(-7));
        assert_eq!(a / 2, Duration::from_nanos(3));
    }

    #[test]
    fn max_zero_clamps_negative() {
        assert_eq!(Duration::from_nanos(-5).max_zero(), Duration::ZERO);
        assert_eq!(Duration::from_nanos(5).max_zero(), Duration::from_nanos(5));
        assert_eq!(Duration::ZERO.max_zero(), Duration::ZERO);
    }

    #[test]
    fn predicates() {
        assert!(Duration::ZERO.is_zero());
        assert!(Duration::from_nanos(1).is_positive());
        assert!(Duration::from_nanos(-1).is_negative());
        assert!(!Duration::from_nanos(-1).is_positive());
    }

    #[test]
    fn abs_and_ordering() {
        assert_eq!(Duration::from_nanos(-9).abs(), Duration::from_nanos(9));
        assert!(Duration::from_nanos(-9) < Duration::ZERO);
        assert!(Duration::from_millis(1) < Duration::from_millis(2));
        assert_eq!(
            Duration::from_millis(1).max(Duration::from_millis(2)),
            Duration::from_millis(2)
        );
        assert_eq!(
            Duration::from_millis(1).min(Duration::from_millis(2)),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert_eq!(Duration::MAX.checked_add(Duration::NANOSECOND), None);
        assert_eq!(Duration::MIN.checked_sub(Duration::NANOSECOND), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(
            Duration::from_nanos(2).checked_mul(3),
            Some(Duration::from_nanos(6))
        );
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn unchecked_add_panics_on_overflow() {
        let _ = Duration::MAX + Duration::NANOSECOND;
    }

    #[test]
    fn scale_ppm_rounds_away_from_zero() {
        assert_eq!(
            Duration::from_secs(1).scale_ppm(250),
            Duration::from_micros(250)
        );
        assert_eq!(Duration::ZERO.scale_ppm(1_000), Duration::ZERO);
        assert_eq!(Duration::from_secs(1).scale_ppm(0), Duration::ZERO);
        // 1 ns · 1 ppm = 10⁻⁶ ns rounds up to a full nanosecond.
        assert_eq!(Duration::from_nanos(1).scale_ppm(1), Duration::NANOSECOND);
        // Negative spans round toward more-negative (away from zero).
        assert_eq!(
            Duration::from_nanos(-1).scale_ppm(1),
            Duration::from_nanos(-1)
        );
        assert_eq!(
            Duration::from_millis(10).scale_ppm(-100),
            Duration::from_nanos(-1_000)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1, 2, 3].iter().map(|&n| Duration::from_nanos(n)).sum();
        assert_eq!(total, Duration::from_nanos(6));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(2).to_string(), "2ms");
        assert_eq!(Duration::from_micros(2).to_string(), "2us");
        assert_eq!(Duration::from_nanos(2).to_string(), "2ns");
        assert_eq!(Duration::from_millis(-2).to_string(), "-2ms");
        assert_eq!(Duration::from_nanos(1_500).to_string(), "1500ns");
    }

    #[test]
    fn as_secs_f64_for_reporting() {
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
