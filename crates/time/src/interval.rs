//! Message-delay intervals `[d₁, d₂]`.

use core::fmt;

use crate::{Duration, TimeError};

/// A closed interval `[d₁, d₂]` of message delays.
///
/// The paper characterizes every communication link by such an interval
/// (`E_{ij,[d₁,d₂]}`, Section 3.2): a message sent at real time `t` is
/// delivered at some real time in `[t + d₁, t + d₂]`. `DelayBounds` also
/// carries the interval arithmetic of the two simulation theorems:
///
/// * [`DelayBounds::widen_for_skew`] — Theorem 4.7's
///   `d'₁ = max(d₁ − 2ε, 0)`, `d'₂ = d₂ + 2ε`: the *virtual* delay an
///   algorithm designed in the timed-automaton model must tolerate so that
///   its clock-model transform runs over a physical `[d₁, d₂]` link.
/// * [`DelayBounds::widen_for_steps`] — Theorem 5.1's `d'₂ = d₂ + kℓ`
///   widening for the MMT simulation's output buffering.
///
/// # Examples
///
/// ```
/// use psync_time::{DelayBounds, Duration};
///
/// let physical = DelayBounds::new(Duration::from_millis(2), Duration::from_millis(9))?;
/// let eps = Duration::from_millis(3);
/// let virtual_link = physical.widen_for_skew(eps);
/// assert_eq!(virtual_link.min(), Duration::ZERO);
/// assert_eq!(virtual_link.max(), Duration::from_millis(15));
/// # Ok::<(), psync_time::TimeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayBounds {
    min: Duration,
    max: Duration,
}

impl DelayBounds {
    /// Creates the interval `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::NegativeDelay`] if either bound is negative and
    /// [`TimeError::EmptyInterval`] if `min > max`.
    pub fn new(min: Duration, max: Duration) -> Result<Self, TimeError> {
        if min.is_negative() {
            return Err(TimeError::NegativeDelay(min));
        }
        if max.is_negative() {
            return Err(TimeError::NegativeDelay(max));
        }
        if min > max {
            return Err(TimeError::EmptyInterval { min, max });
        }
        Ok(DelayBounds { min, max })
    }

    /// The interval `[d, d]`: a link with a fixed, known delay.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative.
    #[must_use]
    pub fn exact(d: Duration) -> Self {
        DelayBounds::new(d, d).expect("exact delay must be non-negative")
    }

    /// The lower delay bound `d₁`.
    #[must_use]
    pub const fn min(&self) -> Duration {
        self.min
    }

    /// The upper delay bound `d₂`.
    #[must_use]
    pub const fn max(&self) -> Duration {
        self.max
    }

    /// The interval width `d₂ − d₁` (the link's delay *uncertainty*).
    #[must_use]
    pub fn width(&self) -> Duration {
        self.max - self.min
    }

    /// `true` when `d` lies in `[d₁, d₂]`.
    #[must_use]
    pub fn contains(&self, d: Duration) -> bool {
        self.min <= d && d <= self.max
    }

    /// Theorem 4.7 widening: the virtual interval
    /// `[max(d₁ − 2ε, 0), d₂ + 2ε]` that the timed-automaton algorithm must
    /// be designed against so that the transformed algorithm is correct over
    /// this physical interval with clock skew `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative.
    #[must_use]
    pub fn widen_for_skew(&self, eps: Duration) -> DelayBounds {
        assert!(!eps.is_negative(), "clock skew must be non-negative");
        let two_eps = eps * 2;
        DelayBounds {
            min: (self.min - two_eps).max_zero(),
            max: self.max + two_eps,
        }
    }

    /// Theorem 5.1 widening: `[d₁, d₂ + kℓ]`, accounting for the MMT
    /// transformation's pending-output buffer holding an output for at most
    /// `kℓ` time.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative or `k < 0`.
    #[must_use]
    pub fn widen_for_steps(&self, k: i64, step: Duration) -> DelayBounds {
        assert!(!step.is_negative(), "step bound must be non-negative");
        assert!(k >= 0, "output rate k must be non-negative");
        DelayBounds {
            min: self.min,
            max: self.max + step * k,
        }
    }

    /// The composed widening of Theorem 5.2:
    /// `[max(d₁ − 2ε, 0), d₂ + 2ε + kℓ]`.
    #[must_use]
    pub fn widen_composed(&self, eps: Duration, k: i64, step: Duration) -> DelayBounds {
        self.widen_for_skew(eps).widen_for_steps(k, step)
    }
}

impl fmt::Display for DelayBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn construction_validates() {
        assert!(DelayBounds::new(ms(1), ms(2)).is_ok());
        assert!(DelayBounds::new(ms(2), ms(2)).is_ok());
        assert_eq!(
            DelayBounds::new(ms(3), ms(2)),
            Err(TimeError::EmptyInterval {
                min: ms(3),
                max: ms(2)
            })
        );
        assert_eq!(
            DelayBounds::new(ms(-1), ms(2)),
            Err(TimeError::NegativeDelay(ms(-1)))
        );
        assert_eq!(
            DelayBounds::new(ms(0), ms(-2)),
            Err(TimeError::NegativeDelay(ms(-2)))
        );
    }

    #[test]
    fn exact_interval() {
        let b = DelayBounds::exact(ms(4));
        assert_eq!(b.min(), ms(4));
        assert_eq!(b.max(), ms(4));
        assert_eq!(b.width(), Duration::ZERO);
    }

    #[test]
    fn contains_is_closed() {
        let b = DelayBounds::new(ms(1), ms(3)).unwrap();
        assert!(b.contains(ms(1)));
        assert!(b.contains(ms(2)));
        assert!(b.contains(ms(3)));
        assert!(!b.contains(ms(0)));
        assert!(!b.contains(ms(4)));
    }

    #[test]
    fn widen_for_skew_matches_theorem_4_7() {
        let b = DelayBounds::new(ms(2), ms(9)).unwrap();
        let w = b.widen_for_skew(ms(3));
        // d1' = max(2 - 6, 0) = 0; d2' = 9 + 6 = 15.
        assert_eq!(w.min(), Duration::ZERO);
        assert_eq!(w.max(), ms(15));

        let w2 = b.widen_for_skew(Duration::from_micros(500));
        assert_eq!(w2.min(), ms(1));
        assert_eq!(w2.max(), ms(10));
    }

    #[test]
    fn widen_for_steps_matches_theorem_5_1() {
        let b = DelayBounds::new(ms(1), ms(5)).unwrap();
        let w = b.widen_for_steps(3, Duration::from_micros(100));
        assert_eq!(w.min(), ms(1));
        assert_eq!(w.max(), ms(5) + Duration::from_micros(300));
    }

    #[test]
    fn widen_composed_matches_theorem_5_2() {
        let b = DelayBounds::new(ms(2), ms(9)).unwrap();
        let w = b.widen_composed(ms(3), 2, Duration::from_micros(100));
        assert_eq!(w.min(), Duration::ZERO);
        assert_eq!(w.max(), ms(15) + Duration::from_micros(200));
    }

    #[test]
    fn zero_skew_is_identity() {
        let b = DelayBounds::new(ms(2), ms(9)).unwrap();
        assert_eq!(b.widen_for_skew(Duration::ZERO), b);
        assert_eq!(b.widen_for_steps(0, ms(1)), b);
        assert_eq!(b.widen_for_steps(5, Duration::ZERO), b);
    }

    #[test]
    fn display_format() {
        let b = DelayBounds::new(ms(1), ms(2)).unwrap();
        assert_eq!(b.to_string(), "[1ms, 2ms]");
    }
}
