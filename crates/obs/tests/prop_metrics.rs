//! Property tests for the metrics merge algebra.
//!
//! Campaign aggregation folds per-case [`MetricsSnapshot`]s in whatever
//! order the worker pool finishes them, and the sharded judge folds
//! per-shard snapshots in shard order — both lean on `absorb` being a
//! commutative monoid so the bracketing never shows in the report. The
//! unit tests in `metrics.rs` pin hand-picked cases; these properties pin
//! the laws on generated snapshots with partially overlapping names,
//! covering all three metric families at once:
//!
//! - counters add,
//! - gauges max-merge (the PR 8 addition: a merged gauge reads as "no
//!   constituent certified worse than this"),
//! - histograms merge bucket-wise.
//!
//! Note: the vendored proptest stub replays deterministically from the
//! test name and performs no shrinking, so it persists no
//! `*.proptest-regressions` files.

use proptest::prelude::*;
use psync_obs::{MetricsSnapshot, Registry};

/// One random registry mutation: `(family, name index, value)`. Name
/// indices are drawn from a small pool so generated snapshots overlap on
/// some names and diverge on others — the interesting merge cases.
type Op = (usize, usize, i64);

fn apply(r: &mut Registry, (family, name, value): Op) {
    match family % 3 {
        0 => r.add(&format!("counter.{}", name % 4), value.unsigned_abs()),
        // Gauges are levels and may be negative (e.g. a clock offset).
        1 => r.set_gauge(&format!("gauge.{}", name % 4), value - 500),
        _ => r.observe(&format!("histogram.{}", name % 3), &[10, 100, 1_000], value),
    }
}

fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    prop::collection::vec((0usize..3, 0usize..8, 0i64..1_000), 0..16).prop_map(|ops| {
        let mut r = Registry::new();
        for op in ops {
            apply(&mut r, op);
        }
        r.snapshot()
    })
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.absorb(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `absorb` is commutative: shard finish order cannot matter.
    #[test]
    fn absorb_is_commutative(a in snapshot_strategy(), b in snapshot_strategy()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// `absorb` is associative: any bracketing of the same snapshots —
    /// per-worker partial merges folded at the end, or one running
    /// accumulator — yields the same aggregate.
    #[test]
    fn absorb_is_associative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// The empty snapshot is a two-sided identity.
    #[test]
    fn empty_snapshot_is_identity(a in snapshot_strategy()) {
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(merged(&empty, &a), a.clone());
        prop_assert_eq!(merged(&a, &empty), a);
    }

    /// Gauge max-merge is idempotent: folding a snapshot into itself
    /// doubles every counter and histogram count but leaves every gauge
    /// level untouched — gauges are measurements, not totals.
    #[test]
    fn gauge_merge_is_idempotent(a in snapshot_strategy()) {
        let twice = merged(&a, &a);
        prop_assert_eq!(&twice.gauges, &a.gauges);
        for (name, v) in &a.counters {
            prop_assert_eq!(twice.counter(name), 2 * v);
        }
        for (name, h) in &a.histograms {
            prop_assert_eq!(
                twice.histogram(name).expect("name survives merge").count(),
                2 * h.count()
            );
        }
    }

    /// A merged gauge is the pointwise max over every constituent that
    /// set it (and only those), regardless of merge order.
    #[test]
    fn merged_gauge_is_pointwise_max(snaps in prop::collection::vec(snapshot_strategy(), 1..5)) {
        let mut total = MetricsSnapshot::default();
        for s in &snaps {
            total.absorb(s);
        }
        let mut names: Vec<&String> =
            snaps.iter().flat_map(|s| s.gauges.iter().map(|(k, _)| k)).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(total.gauges.len(), names.len());
        for name in names {
            let max = snaps.iter().filter_map(|s| s.gauge(name)).max();
            prop_assert_eq!(total.gauge(name), max);
        }
    }

    /// `Registry::absorb` (fold a snapshot into a live registry) agrees
    /// with `MetricsSnapshot::absorb` — the judge path that folds judging
    /// metrics into a case hub uses the same algebra as campaign merging.
    #[test]
    fn registry_absorb_agrees_with_snapshot_absorb(
        ops in prop::collection::vec((0usize..3, 0usize..8, 0i64..1_000), 0..16),
        b in snapshot_strategy(),
    ) {
        let mut r = Registry::new();
        for op in ops {
            apply(&mut r, op);
        }
        let via_snapshot = merged(&r.snapshot(), &b);
        r.absorb(&b);
        prop_assert_eq!(r.snapshot(), via_snapshot);
    }
}
