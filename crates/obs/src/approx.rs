//! Bounded-memory *approximate* monitors for `=_{ε,κ}` and `≤_{δ,K}`.
//!
//! The exact streaming monitors in [`crate::monitor`] keep the whole
//! reference trace resident — O(|reference|) memory — and chase a cursor
//! into it per observed event. Following the approximate-monitoring line
//! of Bonakdarpour et al. (*Approximate Distributed Monitoring under
//! Partial Synchrony*), the monitors here trade a quantified amount of
//! accuracy for a working set that is independent of the reference
//! length: times are coarsened to a `grain`-sized lattice and each
//! forced-matching lane is run-length compressed into *buckets* of
//! consecutive reference events sharing a quantized time. Because
//! reference times are monotone, a lane spanning `T` nanoseconds holds at
//! most `T/grain + 1` buckets no matter how many events it contains.
//!
//! Within a bucket the (at most `grain`-apart) reference times are
//! indistinguishable, so the per-bucket record is just the quantized time
//! `q`, the event count, and a *commutative fingerprint* — the wrapping
//! sum of a stable 64-bit hash of each action. An observed event checks
//! its quantized time against the current bucket and folds its own hash
//! into a running sum; when the bucket's count is exhausted the two sums
//! must agree. Cardinalities stay exact, so every
//! [`RelationError::CardinalityMismatch`] verdict is exact too.
//!
//! **The error contract.** Every verdict carries `err = grain`, and the
//! guarantee is: *the approximate verdict is the exact verdict of some
//! trace obtained by perturbing each observed time by less than `err`,
//! judged against a bound within `err` of the requested one.* Concretely:
//!
//! - accept ⇒ the exact monitor's max deviation is `≤ ε + err`, and when
//!   both sides accept the two witnesses' `max_deviation` differ by less
//!   than `err`;
//! - reject with [`RelationError::TimeBound`] ⇒ the exact deviation of
//!   that pair exceeds `ε − err`;
//! - action-order violations *within* one bucket (times closer than
//!   `err`) may be missed — they are exactly the reorderings a
//!   sub-`err` perturbation can repair.
//!
//! `tests/prop_monitors.rs` pins this contract differentially against the
//! exact monitors on generated traces.

use std::hash::{Hash, Hasher};

use psync_automata::relations::{ClassMap, RelationError, Witness};
use psync_automata::{Action, TimedTrace};
use psync_time::{Duration, Time};

/// A self-stable FNV-1a hasher: unlike `DefaultHasher`, its output is
/// specified and will not change across toolchain releases, so bucket
/// fingerprints can be compared in regression artifacts.
#[derive(Debug, Clone)]
pub struct StableFnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableFnv {
    fn default() -> Self {
        StableFnv(FNV_OFFSET)
    }
}

impl Hasher for StableFnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The stable 64-bit fingerprint of one action.
fn fingerprint<A: Hash>(a: &A) -> u64 {
    let mut h = StableFnv::default();
    a.hash(&mut h);
    // Finalize with one extra round so structurally-prefixed values do
    // not alias under the commutative (wrapping-sum) bucket fold.
    h.finish().wrapping_mul(FNV_PRIME) | 1
}

/// A run of consecutive reference events in one lane sharing the
/// quantized time `q`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    q: i64,
    count: u32,
    fp: u64,
}

/// One coarsened forced-matching lane: the run-length compressed bucket
/// list plus consumption state.
#[derive(Debug, Clone, Default)]
struct CoarseLane {
    buckets: Vec<Bucket>,
    /// Index of the bucket currently being consumed.
    bucket: usize,
    /// Events consumed from the current bucket.
    consumed: u32,
    /// Wrapping sum of observed-action fingerprints in the current bucket.
    fp_acc: u64,
    /// Total reference events in this lane (exact cardinality).
    total: usize,
    /// Total observed events consumed by this lane.
    used: usize,
}

impl CoarseLane {
    fn push(&mut self, q: i64, fp: u64) {
        match self.buckets.last_mut() {
            Some(b) if b.q == q => {
                b.count += 1;
                b.fp = b.fp.wrapping_add(fp);
            }
            _ => self.buckets.push(Bucket { q, count: 1, fp }),
        }
        self.total += 1;
    }

    fn bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Bucket>() + std::mem::size_of::<CoarseLane>()
    }
}

/// An accept verdict with its quantified error interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxWitness {
    /// The coarsened witness; `max_deviation` is within `err` of the
    /// exact monitor's on a joint accept.
    pub witness: Witness,
    /// Half-width of the error interval (the quantization grain).
    pub err: Duration,
}

/// A reject verdict with its quantified error interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxViolation<A> {
    /// The violation, with times coarsened to the grain lattice.
    pub error: RelationError<A>,
    /// Half-width of the error interval (the quantization grain).
    pub err: Duration,
}

fn quantize(t: Time, grain: Duration) -> i64 {
    (t - Time::ZERO).as_nanos().div_euclid(grain.as_nanos())
}

/// The representative [`Time`] of a quantized bucket (its lattice point).
fn dequantize(q: i64, grain: Duration) -> Time {
    Time::ZERO + Duration::from_nanos(q.saturating_mul(grain.as_nanos()))
}

/// Streaming *approximate* `reference =_{ε,κ} observed` monitor.
///
/// Construction makes one pass over the reference and keeps only the
/// coarsened lanes — the reference itself is **not** borrowed, so the
/// working set is O(time span / grain + lanes) instead of O(|reference|).
/// Every verdict carries `err = grain`; see the module docs for the
/// contract relating it to [`crate::monitor::StreamingEps`].
#[derive(Debug)]
pub struct ApproxEps<'a, A: Action> {
    classes: &'a ClassMap<A>,
    eps: Duration,
    grain: Duration,
    class_lanes: Vec<(usize, CoarseLane)>,
    rest_lanes: Vec<(A, CoarseLane)>,
    observed: usize,
    max_dev: Duration,
    matched: usize,
    error: Option<RelationError<A>>,
}

impl<'a, A: Action> ApproxEps<'a, A> {
    /// Creates a monitor for `reference =_{ε,κ} ⟨observed stream⟩` with
    /// times coarsened to multiples of `grain`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or `grain` is not positive.
    #[must_use]
    pub fn new(
        reference: &TimedTrace<A>,
        eps: Duration,
        grain: Duration,
        classes: &'a ClassMap<A>,
    ) -> Self {
        assert!(!eps.is_negative(), "ε must be non-negative");
        assert!(grain.is_positive(), "grain must be positive");
        let mut class_lanes: Vec<(usize, CoarseLane)> = Vec::new();
        let mut rest_lanes: Vec<(A, CoarseLane)> = Vec::new();
        for (a, t) in reference.iter() {
            let q = quantize(t, grain);
            let fp = fingerprint(a);
            match classes.class_of(a) {
                Some(c) => {
                    let lane = match class_lanes.iter_mut().find(|(k, _)| *k == c) {
                        Some((_, lane)) => lane,
                        None => {
                            class_lanes.push((c, CoarseLane::default()));
                            &mut class_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.push(q, fp);
                }
                None => {
                    let lane = match rest_lanes.iter_mut().find(|(v, _)| v == a) {
                        Some((_, lane)) => lane,
                        None => {
                            rest_lanes.push((a.clone(), CoarseLane::default()));
                            &mut rest_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.push(q, fp);
                }
            }
        }
        class_lanes.sort_by_key(|(c, _)| *c);
        ApproxEps {
            classes,
            eps,
            grain,
            class_lanes,
            rest_lanes,
            observed: 0,
            max_dev: Duration::ZERO,
            matched: 0,
            error: None,
        }
    }

    /// Half-width of the error interval attached to every verdict.
    #[must_use]
    pub fn err(&self) -> Duration {
        self.grain
    }

    /// Bytes of monitor state resident right now (the bounded-memory
    /// claim the bench pins; the reference is not part of it).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let lanes: usize = self
            .class_lanes
            .iter()
            .map(|(_, l)| l.bytes())
            .chain(self.rest_lanes.iter().map(|(_, l)| l.bytes()))
            .sum();
        lanes + std::mem::size_of::<Self>()
    }

    /// Feeds the next observed `(action, time)` pair; sticky on violation.
    pub fn observe(&mut self, action: &A, time: Time) {
        if self.error.is_some() {
            return;
        }
        let position = self.observed;
        self.observed += 1;
        let class = self.classes.class_of(action);
        let lane = match class {
            Some(c) => self
                .class_lanes
                .iter_mut()
                .find(|(k, _)| *k == c)
                .map(|(_, l)| l),
            None => self
                .rest_lanes
                .iter_mut()
                .find(|(v, _)| v == action)
                .map(|(_, l)| l),
        };
        let Some(lane) = lane else {
            self.error = Some(match class {
                Some(c) => RelationError::CardinalityMismatch {
                    class: Some(c),
                    left: 0,
                    right: 1,
                },
                None => RelationError::ActionMismatch {
                    class: None,
                    position,
                    left: action.clone(),
                    right: action.clone(),
                },
            });
            return;
        };
        let Some(&bucket) = lane.buckets.get(lane.bucket) else {
            self.error = Some(RelationError::CardinalityMismatch {
                class,
                left: lane.total,
                right: lane.total + 1,
            });
            return;
        };
        let pos = lane.used;
        lane.used += 1;
        let q = quantize(time, self.grain);
        let dev_buckets = (q - bucket.q).unsigned_abs();
        let dev = self
            .grain
            .checked_mul(i64::try_from(dev_buckets).unwrap_or(i64::MAX))
            .unwrap_or(Duration::MAX);
        if dev > self.eps {
            self.error = Some(RelationError::TimeBound {
                action: action.clone(),
                left_time: dequantize(bucket.q, self.grain),
                right_time: time,
                bound: self.eps,
            });
            return;
        }
        lane.fp_acc = lane.fp_acc.wrapping_add(fingerprint(action));
        lane.consumed += 1;
        if lane.consumed == bucket.count {
            if lane.fp_acc != bucket.fp {
                self.error = Some(RelationError::ActionMismatch {
                    class,
                    position: pos,
                    left: action.clone(),
                    right: action.clone(),
                });
                return;
            }
            lane.bucket += 1;
            lane.consumed = 0;
            lane.fp_acc = 0;
        }
        self.max_dev = self.max_dev.max(dev);
        self.matched += 1;
    }

    /// Closes the observed stream and delivers the verdict with its
    /// error interval.
    ///
    /// # Errors
    ///
    /// The first (sticky) violation, or a
    /// [`RelationError::CardinalityMismatch`] when reference events were
    /// left unmatched; cardinality verdicts are exact.
    pub fn finish(&self) -> Result<ApproxWitness, ApproxViolation<A>> {
        if let Some(e) = &self.error {
            return Err(ApproxViolation {
                error: e.clone(),
                err: self.grain,
            });
        }
        for (c, lane) in &self.class_lanes {
            if lane.used < lane.total {
                return Err(ApproxViolation {
                    error: RelationError::CardinalityMismatch {
                        class: Some(*c),
                        left: lane.total,
                        right: lane.used,
                    },
                    err: self.grain,
                });
            }
        }
        for (_, lane) in &self.rest_lanes {
            if lane.used < lane.total {
                return Err(ApproxViolation {
                    error: RelationError::CardinalityMismatch {
                        class: None,
                        left: lane.total,
                        right: lane.used,
                    },
                    err: self.grain,
                });
            }
        }
        Ok(ApproxWitness {
            witness: Witness {
                max_deviation: self.max_dev,
                matched: self.matched,
            },
            err: self.grain,
        })
    }
}

/// Streaming *approximate* `reference ≤_{δ,K} observed` monitor: class
/// actions may slide up to `δ` into the future (checked on the grain
/// lattice, so a backward slide smaller than `err` may pass), the
/// unclassified remainder is one order-forced lane whose times must match
/// on the lattice.
#[derive(Debug)]
pub struct ApproxDelta<'a, A: Action> {
    classes: &'a ClassMap<A>,
    delta: Duration,
    grain: Duration,
    class_lanes: Vec<(usize, CoarseLane)>,
    rest: CoarseLane,
    max_dev: Duration,
    matched: usize,
    error: Option<RelationError<A>>,
}

impl<'a, A: Action> ApproxDelta<'a, A> {
    /// Creates a monitor for `reference ≤_{δ,K} ⟨observed stream⟩` with
    /// times coarsened to multiples of `grain`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or `grain` is not positive.
    #[must_use]
    pub fn new(
        reference: &TimedTrace<A>,
        delta: Duration,
        grain: Duration,
        classes: &'a ClassMap<A>,
    ) -> Self {
        assert!(!delta.is_negative(), "δ must be non-negative");
        assert!(grain.is_positive(), "grain must be positive");
        let mut class_lanes: Vec<(usize, CoarseLane)> = Vec::new();
        let mut rest = CoarseLane::default();
        for (a, t) in reference.iter() {
            let q = quantize(t, grain);
            let fp = fingerprint(a);
            match classes.class_of(a) {
                Some(c) => {
                    let lane = match class_lanes.iter_mut().find(|(k, _)| *k == c) {
                        Some((_, lane)) => lane,
                        None => {
                            class_lanes.push((c, CoarseLane::default()));
                            &mut class_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.push(q, fp);
                }
                None => rest.push(q, fp),
            }
        }
        class_lanes.sort_by_key(|(c, _)| *c);
        ApproxDelta {
            classes,
            delta,
            grain,
            class_lanes,
            rest,
            max_dev: Duration::ZERO,
            matched: 0,
            error: None,
        }
    }

    /// Half-width of the error interval attached to every verdict.
    #[must_use]
    pub fn err(&self) -> Duration {
        self.grain
    }

    /// Bytes of monitor state resident right now.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let lanes: usize = self
            .class_lanes
            .iter()
            .map(|(_, l)| l.bytes())
            .sum::<usize>()
            + self.rest.bytes();
        lanes + std::mem::size_of::<Self>()
    }

    /// Feeds the next observed `(action, time)` pair; sticky on violation.
    pub fn observe(&mut self, action: &A, time: Time) {
        if self.error.is_some() {
            return;
        }
        let class = self.classes.class_of(action);
        let lane = match class {
            Some(c) => match self.class_lanes.iter_mut().find(|(k, _)| *k == c) {
                Some((_, l)) => l,
                None => {
                    self.error = Some(RelationError::CardinalityMismatch {
                        class: Some(c),
                        left: 0,
                        right: 1,
                    });
                    return;
                }
            },
            None => &mut self.rest,
        };
        let Some(&bucket) = lane.buckets.get(lane.bucket) else {
            self.error = Some(RelationError::CardinalityMismatch {
                class,
                left: lane.total,
                right: lane.total + 1,
            });
            return;
        };
        let pos = lane.used;
        lane.used += 1;
        let q = quantize(time, self.grain);
        match class {
            Some(_) => {
                if q < bucket.q {
                    self.error = Some(RelationError::IllegalShift {
                        action: action.clone(),
                        left_time: dequantize(bucket.q, self.grain),
                        right_time: time,
                    });
                    return;
                }
                let dev = self
                    .grain
                    .checked_mul(q - bucket.q)
                    .unwrap_or(Duration::MAX);
                if dev > self.delta {
                    self.error = Some(RelationError::TimeBound {
                        action: action.clone(),
                        left_time: dequantize(bucket.q, self.grain),
                        right_time: time,
                        bound: self.delta,
                    });
                    return;
                }
                self.max_dev = self.max_dev.max(dev);
            }
            None => {
                if q != bucket.q {
                    self.error = Some(RelationError::IllegalShift {
                        action: action.clone(),
                        left_time: dequantize(bucket.q, self.grain),
                        right_time: time,
                    });
                    return;
                }
            }
        }
        lane.fp_acc = lane.fp_acc.wrapping_add(fingerprint(action));
        lane.consumed += 1;
        if lane.consumed == bucket.count {
            if lane.fp_acc != bucket.fp {
                self.error = Some(RelationError::ActionMismatch {
                    class,
                    position: pos,
                    left: action.clone(),
                    right: action.clone(),
                });
                return;
            }
            lane.bucket += 1;
            lane.consumed = 0;
            lane.fp_acc = 0;
        }
        self.matched += 1;
    }

    /// Closes the observed stream and delivers the verdict with its
    /// error interval.
    ///
    /// # Errors
    ///
    /// The first (sticky) violation, or a
    /// [`RelationError::CardinalityMismatch`] when reference events were
    /// left unmatched; cardinality verdicts are exact.
    pub fn finish(&self) -> Result<ApproxWitness, ApproxViolation<A>> {
        if let Some(e) = &self.error {
            return Err(ApproxViolation {
                error: e.clone(),
                err: self.grain,
            });
        }
        for (c, lane) in &self.class_lanes {
            if lane.used < lane.total {
                return Err(ApproxViolation {
                    error: RelationError::CardinalityMismatch {
                        class: Some(*c),
                        left: lane.total,
                        right: lane.used,
                    },
                    err: self.grain,
                });
            }
        }
        if self.rest.used < self.rest.total {
            return Err(ApproxViolation {
                error: RelationError::CardinalityMismatch {
                    class: None,
                    left: self.rest.total,
                    right: self.rest.used,
                },
                err: self.grain,
            });
        }
        Ok(ApproxWitness {
            witness: Witness {
                max_deviation: self.max_dev,
                matched: self.matched,
            },
            err: self.grain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn per_letter() -> ClassMap<&'static str> {
        ClassMap::by(|a: &&str| match a.as_bytes().first() {
            Some(b'a') => Some(0),
            Some(b'b') => Some(1),
            _ => None,
        })
    }

    fn reference() -> TimedTrace<&'static str> {
        TimedTrace::from_pairs(vec![
            ("a1", t(0)),
            ("b1", t(1)),
            ("x", t(2)),
            ("a2", t(10)),
            ("b2", t(11)),
        ])
    }

    #[test]
    fn accepts_within_eps_and_reports_err() {
        let reference = reference();
        let classes = per_letter();
        let mut m = ApproxEps::new(&reference, ms(3), ms(1), &classes);
        for (a, time) in [
            ("a1", t(1)),
            ("b1", t(2)),
            ("x", t(2)),
            ("a2", t(12)),
            ("b2", t(11)),
        ] {
            m.observe(&a, time);
        }
        let w = m.finish().unwrap();
        assert_eq!(w.err, ms(1));
        assert_eq!(w.witness.matched, 5);
        assert!(w.witness.max_deviation <= ms(3));
    }

    #[test]
    fn rejects_beyond_eps_plus_err() {
        let reference = reference();
        let classes = per_letter();
        let mut m = ApproxEps::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a1", t(8));
        let v = m.finish().unwrap_err();
        assert_eq!(v.err, ms(1));
        assert!(matches!(v.error, RelationError::TimeBound { .. }));
    }

    #[test]
    fn cardinality_verdicts_are_exact() {
        let reference = reference();
        let classes = per_letter();
        let mut m = ApproxEps::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a1", t(0));
        let v = m.finish().unwrap_err();
        match v.error {
            RelationError::CardinalityMismatch { class, left, right } => {
                assert_eq!(class, Some(0));
                assert_eq!((left, right), (2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fingerprint_catches_wrong_action_multiset() {
        let reference = TimedTrace::from_pairs(vec![("a1", t(0)), ("a2", t(0))]);
        let classes = per_letter();
        let mut m = ApproxEps::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a1", t(0));
        m.observe(&"a1", t(0));
        let v = m.finish().unwrap_err();
        assert!(matches!(v.error, RelationError::ActionMismatch { .. }));
    }

    #[test]
    fn within_bucket_swap_is_tolerated() {
        // Both class-0 events land in one bucket; swapping them is a
        // sub-grain perturbation the approximation is allowed to accept.
        let reference = TimedTrace::from_pairs(vec![("a1", t(0)), ("a2", t(0))]);
        let classes = per_letter();
        let mut m = ApproxEps::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a2", t(0));
        m.observe(&"a1", t(0));
        assert!(m.finish().is_ok());
    }

    #[test]
    fn memory_is_span_bound_not_length_bound() {
        // 10_000 events in a 10-bucket span: far fewer buckets than events.
        let entries: Vec<(&'static str, Time)> = (0..10_000)
            .map(|i| ("x", Time::ZERO + Duration::from_nanos(i)))
            .collect();
        let reference = TimedTrace::from_pairs(entries);
        let classes: ClassMap<&'static str> = ClassMap::by(|_| None);
        let m = ApproxEps::new(&reference, ms(1), Duration::from_nanos(1_000), &classes);
        assert!(m.memory_bytes() < 1_500);
    }

    #[test]
    fn delta_quantized_backward_slide_within_err_passes() {
        // Reference and observation share a lattice cell: the sub-grain
        // backward slide (5.5ms -> 5.1ms) is invisible.
        let reference =
            TimedTrace::from_pairs(vec![("a1", Time::ZERO + Duration::from_micros(5_500))]);
        let classes = per_letter();
        let mut m = ApproxDelta::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a1", Time::ZERO + Duration::from_micros(5_100));
        assert!(m.finish().is_ok());
        // A backward slide that crosses a cell boundary is caught.
        let mut m = ApproxDelta::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"a1", t(3));
        assert!(matches!(
            m.finish().unwrap_err().error,
            RelationError::IllegalShift { .. }
        ));
    }

    #[test]
    fn delta_rest_requires_lattice_equality() {
        let reference = TimedTrace::from_pairs(vec![("x", t(2))]);
        let classes = per_letter();
        let mut m = ApproxDelta::new(&reference, ms(3), ms(1), &classes);
        m.observe(&"x", t(4));
        assert!(matches!(
            m.finish().unwrap_err().error,
            RelationError::IllegalShift { .. }
        ));
    }
}
