//! Metric-collecting [`Observer`]s and the streaming `C_ε` monitor.
//!
//! [`MetricsHub`] owns a shared [`Registry`] behind `Rc<RefCell<…>>` (the
//! same interior-mutability handle pattern as
//! [`ScriptedClock::rejections`](psync_executor::ScriptedClock::rejections):
//! engines are single-threaded and components step through `&self`).
//! [`MetricsHub::engine_observer`] hands out taps that feed the hub from
//! inside an engine run; the hub stays outside and takes
//! [`snapshot`](MetricsHub::snapshot)s whenever it likes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use psync_automata::{Action, ActionKind, Execution, TimedEvent, Verdict};
use psync_executor::{ClockRead, Observer};
use psync_net::{MsgId, SysAction};
use psync_time::{Duration, Time};
use psync_verify::Oracle;

use crate::metrics::{MetricsSnapshot, Registry};

/// Bucket bounds for the scheduler queue-depth histogram.
pub const QUEUE_DEPTH_BOUNDS: &[i64] = &[1, 2, 4, 8, 16, 32, 64];

/// Bucket bounds (ns) for the observed `|now − clock|` drift histogram.
pub const DRIFT_NS_BOUNDS: &[i64] = &[
    1_000, 10_000, 100_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Bucket bounds (ns) for time-passage step sizes.
pub const ADVANCE_NS_BOUNDS: &[i64] = &[
    10_000,
    100_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
];

/// Bucket bounds (ns) for per-channel message delays.
pub const DELAY_NS_BOUNDS: &[i64] = &[
    100_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000,
];

/// Owns a shared metrics [`Registry`] and hands out engine taps feeding it.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    registry: Rc<RefCell<Registry>>,
}

impl MetricsHub {
    /// Creates a hub with an empty registry.
    #[must_use]
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// An observer recording engine-level metrics into this hub: steps by
    /// kind and action name, deliveries, queue depth, clock drift and
    /// time-passage sizes. Attach via `EngineBuilder::observer`.
    #[must_use]
    pub fn engine_observer(&self) -> EngineMetrics {
        EngineMetrics {
            registry: Rc::clone(&self.registry),
            count_checkpoint_ops: true,
        }
    }

    /// An observer recording per-channel delivery delays (for
    /// `SysAction`-typed systems). Attach via `EngineBuilder::observer`.
    #[must_use]
    pub fn channel_delay_observer(&self) -> ChannelDelayObserver {
        ChannelDelayObserver {
            registry: Rc::clone(&self.registry),
            in_flight: HashMap::new(),
        }
    }

    /// Adds `delta` to counter `name` — for merging externally collected
    /// counts (e.g. [`FaultChannel`](psync_net::FaultChannel) fault
    /// counters) into the same snapshot.
    pub fn add(&self, name: &str, delta: u64) {
        self.registry.borrow_mut().add(name, delta);
    }

    /// Sets gauge `name` to `value` — for measured levels (e.g. a node's
    /// certified `ε̂` in nanoseconds) recorded after a run completes.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.registry.borrow_mut().set_gauge(name, value);
    }

    /// A deterministic snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.borrow().snapshot()
    }

    /// Folds `snapshot` into the hub with the [`MetricsSnapshot::absorb`]
    /// algebra (counters add, gauges max, histograms merge) — how the
    /// explorer folds a sharded judging pass's deterministic snapshot
    /// into a case's metrics.
    ///
    /// # Panics
    ///
    /// Panics if a histogram shared by name has different bucket bounds.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        self.registry.borrow_mut().absorb(snapshot);
    }

    /// Rewinds the hub to a previously taken [`snapshot`](MetricsHub::snapshot),
    /// discarding everything recorded since. Pairs with
    /// [`Engine::restore`](psync_executor::Engine::restore): snapshot the
    /// hub when the engine checkpoints, restore both together, and the
    /// resumed run's metrics are bit-identical to an uninterrupted run's.
    pub fn restore(&self, snapshot: &MetricsSnapshot) {
        self.registry.borrow_mut().restore(snapshot);
    }

    /// The shared registry handle, for observers not predefined here.
    #[must_use]
    pub fn registry(&self) -> Rc<RefCell<Registry>> {
        Rc::clone(&self.registry)
    }
}

/// The engine-level metrics tap (see [`MetricsHub::engine_observer`]).
///
/// Implements [`Observer`] for *every* action type; action-specific
/// detail is limited to [`Action::name`].
#[derive(Debug)]
pub struct EngineMetrics {
    registry: Rc<RefCell<Registry>>,
    count_checkpoint_ops: bool,
}

impl EngineMetrics {
    /// Suppresses the `engine.checkpoints` / `engine.restores` counters.
    ///
    /// Checkpoint and restore are run *machinery*, not run *behaviour*: a
    /// consumer comparing a checkpointed-resume run against a straight-line
    /// run (the explorer's prefix-sharing shrink probes) wants the two
    /// metric snapshots bit-identical, which only holds if the machinery
    /// leaves no trace. All behavioural metrics are still recorded.
    #[must_use]
    pub fn without_checkpoint_counters(mut self) -> EngineMetrics {
        self.count_checkpoint_ops = false;
        self
    }
}

impl<A: Action> Observer<A> for EngineMetrics {
    fn on_candidates(&mut self, _now: Time, depth: usize) {
        let mut reg = self.registry.borrow_mut();
        reg.add("engine.scheduling_points", 1);
        reg.observe("engine.queue_depth", QUEUE_DEPTH_BOUNDS, depth as i64);
    }

    fn on_clock_read(&mut self, read: ClockRead) {
        let mut reg = self.registry.borrow_mut();
        reg.add("engine.clock_reads", 1);
        reg.observe(
            "engine.clock_drift_ns",
            DRIFT_NS_BOUNDS,
            read.now.skew(read.clock).as_nanos(),
        );
    }

    fn on_event(&mut self, _index: usize, event: &TimedEvent<A>) {
        let mut reg = self.registry.borrow_mut();
        reg.add("engine.steps", 1);
        reg.add(
            match event.kind {
                ActionKind::Input => "engine.steps.input",
                ActionKind::Output => "engine.steps.output",
                ActionKind::Internal => "engine.steps.internal",
            },
            1,
        );
        let name = event.action.name();
        let mut key = String::with_capacity(14 + name.len());
        key.push_str("engine.action.");
        key.push_str(name);
        reg.add(&key, 1);
        if name == "RECVMSG" || name == "ERECVMSG" {
            reg.add("engine.deliveries", 1);
        }
    }

    fn on_advance(&mut self, from: Time, to: Time) {
        let mut reg = self.registry.borrow_mut();
        reg.add("engine.advances", 1);
        reg.observe(
            "engine.advance_ns",
            ADVANCE_NS_BOUNDS,
            (to - from).as_nanos(),
        );
    }

    fn on_checkpoint(&mut self, _events: usize) {
        if self.count_checkpoint_ops {
            self.registry.borrow_mut().add("engine.checkpoints", 1);
        }
    }

    fn on_restore(&mut self, _events: &[TimedEvent<A>]) {
        if self.count_checkpoint_ops {
            self.registry.borrow_mut().add("engine.restores", 1);
        }
    }
}

/// Records the real-time delay of every delivered message into a
/// per-channel histogram `channel.delay_ns.nI->nJ`.
///
/// Send times are remembered by [`MsgId`]; because the paper assumes every
/// message id is unique per execution (Section 3), entries are never
/// evicted — a duplicate delivery finds the original send time and records
/// a second sample. Memory is O(messages sent), not O(events).
#[derive(Debug)]
pub struct ChannelDelayObserver {
    registry: Rc<RefCell<Registry>>,
    in_flight: HashMap<MsgId, Time>,
}

impl<M, AP> Observer<SysAction<M, AP>> for ChannelDelayObserver
where
    M: Clone + Eq + std::hash::Hash + std::fmt::Debug + 'static,
    AP: Action,
{
    fn on_event(&mut self, _index: usize, event: &TimedEvent<SysAction<M, AP>>) {
        match &event.action {
            SysAction::Send(env) | SysAction::ESend(env, _) => {
                self.in_flight.insert(env.id, event.now);
            }
            SysAction::Recv(env) | SysAction::ERecv(env, _) => {
                if let Some(sent) = self.in_flight.get(&env.id) {
                    let mut key = String::new();
                    let _ = write!(key, "channel.delay_ns.{}->{}", env.src, env.dst);
                    self.registry.borrow_mut().observe(
                        &key,
                        DELAY_NS_BOUNDS,
                        (event.now - *sent).as_nanos(),
                    );
                }
            }
            _ => {}
        }
    }

    fn on_restore(&mut self, events: &[TimedEvent<SysAction<M, AP>>]) {
        // The send-time map is per-run context: rebuild it from the
        // restored prefix so post-restore deliveries of pre-restore sends
        // still find their send times. Entries are never evicted during a
        // live run, so scanning the sends reproduces the map exactly.
        self.in_flight.clear();
        for event in events {
            if let SysAction::Send(env) | SysAction::ESend(env, _) = &event.action {
                self.in_flight.insert(env.id, event.now);
            }
        }
    }
}

/// Streaming `C_ε` monitor (predicate `C_ε` of §2.2): checks
/// `|now − clock| ≤ ε` on every clock read, in O(1) memory.
///
/// As an [`Observer`] it takes `ε` from each [`ClockRead`] (every node's
/// own envelope); [`CEpsMonitor::with_eps`] pins one bound instead, for
/// monitoring against a tighter envelope than the engine enforces.
#[derive(Debug, Clone, Default)]
pub struct CEpsMonitor {
    pinned_eps: Option<Duration>,
    reads: u64,
    worst: Duration,
    violation: Option<String>,
}

impl CEpsMonitor {
    /// A monitor checking each read against the node's own `ε`.
    #[must_use]
    pub fn new() -> CEpsMonitor {
        CEpsMonitor::default()
    }

    /// A monitor checking every read against the fixed bound `eps`.
    #[must_use]
    pub fn with_eps(eps: Duration) -> CEpsMonitor {
        CEpsMonitor {
            pinned_eps: Some(eps),
            ..CEpsMonitor::default()
        }
    }

    /// Feeds one clock reading.
    pub fn observe(&mut self, read: ClockRead) {
        self.reads += 1;
        let skew = read.now.skew(read.clock);
        self.worst = self.worst.max(skew);
        let eps = self.pinned_eps.unwrap_or(read.eps);
        if skew > eps && self.violation.is_none() {
            self.violation = Some(format!(
                "node {} clock {} at real time {} violates C_ε (skew {} > ε {})",
                read.node, read.clock, read.now, skew, eps
            ));
        }
    }

    /// Number of readings observed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// The worst `|now − clock|` observed.
    #[must_use]
    pub fn worst_skew(&self) -> Duration {
        self.worst
    }

    /// `Holds` iff every reading so far satisfied the predicate.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        match &self.violation {
            None => Verdict::Holds,
            Some(why) => Verdict::Violated(why.clone()),
        }
    }
}

impl<A: Action> Observer<A> for CEpsMonitor {
    fn on_clock_read(&mut self, read: ClockRead) {
        self.observe(read);
    }
}

/// The offline face of [`CEpsMonitor`]: an [`Oracle`] replaying a recorded
/// execution's clock readings through the same O(1) check, so explorer
/// campaigns and conformance sweeps consume it unchanged.
pub struct CEpsOracle {
    eps: Duration,
}

impl CEpsOracle {
    /// Checks every event carrying a clock reading against `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative.
    #[must_use]
    pub fn new(eps: Duration) -> CEpsOracle {
        assert!(!eps.is_negative(), "ε must be non-negative");
        CEpsOracle { eps }
    }
}

impl<A: Action> Oracle<A> for CEpsOracle {
    fn name(&self) -> String {
        format!("C_eps(ε={})", self.eps)
    }

    fn check(&self, exec: &Execution<A>) -> Verdict {
        let mut monitor = CEpsMonitor::with_eps(self.eps);
        for ev in exec.events() {
            if let Some(clock) = ev.clock {
                monitor.observe(ClockRead {
                    node: 0,
                    now: ev.now,
                    clock,
                    eps: self.eps,
                });
            }
        }
        monitor.verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::{Beeper, ClockBeeper};
    use psync_executor::{ClockNode, Engine, OffsetClock};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn engine_metrics_count_steps_and_advances() {
        let hub = MetricsHub::new();
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(10)))
            .observer(hub.engine_observer())
            .horizon(at(35))
            .build();
        let run = engine.run().unwrap();
        let snap = hub.snapshot();
        assert_eq!(snap.counter("engine.steps"), run.execution.len() as u64);
        assert_eq!(snap.counter("engine.steps.output"), 3);
        assert_eq!(snap.counter("engine.action.BEEP"), 3);
        assert!(snap.counter("engine.advances") >= 3);
        assert!(snap.histogram("engine.queue_depth").is_some());
    }

    #[test]
    fn clock_drift_is_recorded_per_read() {
        let hub = MetricsHub::new();
        let node = ClockNode::new("n0", ms(2), OffsetClock::new(ms(-2), ms(2)))
            .with(ClockBeeper::new(ms(10)));
        let mut engine = Engine::builder()
            .clock_node(node)
            .observer(hub.engine_observer())
            .horizon(at(25))
            .build();
        engine.run().unwrap();
        let snap = hub.snapshot();
        assert!(snap.counter("engine.clock_reads") > 0);
        let drift = snap.histogram("engine.clock_drift_ns").unwrap();
        assert_eq!(drift.max(), ms(2).as_nanos());
    }

    #[test]
    fn hub_restore_rewinds_to_a_snapshot() {
        let hub = MetricsHub::new();
        hub.add("x", 3);
        let snap = hub.snapshot();
        hub.add("x", 5);
        hub.add("y", 1);
        hub.restore(&snap);
        assert_eq!(hub.snapshot(), snap);
        assert_eq!(hub.snapshot().counter("x"), 3);
        assert_eq!(hub.snapshot().counter("y"), 0);
    }

    #[test]
    fn checkpoint_counters_are_recorded_and_suppressible() {
        use psync_automata::toys::BeepAction;

        let hub = MetricsHub::new();
        let mut counting = hub.engine_observer();
        Observer::<BeepAction>::on_checkpoint(&mut counting, 4);
        Observer::<BeepAction>::on_restore(&mut counting, &[]);
        assert_eq!(hub.snapshot().counter("engine.checkpoints"), 1);
        assert_eq!(hub.snapshot().counter("engine.restores"), 1);

        let quiet_hub = MetricsHub::new();
        let mut quiet = quiet_hub.engine_observer().without_checkpoint_counters();
        Observer::<BeepAction>::on_checkpoint(&mut quiet, 4);
        Observer::<BeepAction>::on_restore(&mut quiet, &[]);
        assert_eq!(quiet_hub.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn c_eps_monitor_accepts_envelope_and_rejects_beyond() {
        let mut ok = CEpsMonitor::new();
        ok.observe(ClockRead {
            node: 0,
            now: at(10),
            clock: at(12),
            eps: ms(2),
        });
        assert!(ok.verdict().holds());
        assert_eq!(ok.worst_skew(), ms(2));

        let mut bad = CEpsMonitor::with_eps(ms(1));
        bad.observe(ClockRead {
            node: 3,
            now: at(10),
            clock: at(12),
            eps: ms(2),
        });
        assert!(!bad.verdict().holds());
        assert_eq!(bad.reads(), 1);
    }

    #[test]
    fn c_eps_oracle_judges_recorded_executions() {
        let node = ClockNode::new("n0", ms(2), OffsetClock::new(ms(2), ms(2)))
            .with(ClockBeeper::new(ms(10)));
        let mut engine = Engine::builder().clock_node(node).horizon(at(25)).build();
        let exec = engine.run().unwrap().execution;
        assert!(
            Oracle::<psync_automata::toys::BeepAction>::check(&CEpsOracle::new(ms(2)), &exec)
                .holds()
        );
        assert!(
            !Oracle::<psync_automata::toys::BeepAction>::check(&CEpsOracle::new(ms(1)), &exec)
                .holds()
        );
    }
}
