//! Deterministic sharded judging: parallelism that never shows in the
//! verdicts.
//!
//! Two granularities, both with a fixed merge order so output is
//! bit-identical for every shard count:
//!
//! - [`check_all_sharded`] — the oracle-level fan-out used by explorer
//!   campaigns: worker threads claim oracles from an atomic counter,
//!   verdicts land in per-oracle slots and are merged *in oracle order*;
//!   each shard counts its own work into a private [`Registry`] and the
//!   per-shard snapshots are absorbed in shard-index order. The counters
//!   (`monitor.checks`, `monitor.violations`) are totals over oracles, so
//!   they are invariant under the shard count too.
//! - [`ShardedEps`] — lane-level sharding of one `=_{ε,κ}` check: the
//!   forced matching decomposes into independent cursor lanes (one per
//!   class, one per distinct unclassified action value), so lanes can be
//!   consumed on separate threads. Errors are merged by the earliest
//!   observed index (observe-phase) or the smallest lane ordinal
//!   (finish-phase) — exactly the first error the sequential
//!   [`StreamingEps`] would report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use psync_automata::relations::{ClassMap, RelationError, Witness};
use psync_automata::{Action, Execution, TimedTrace, Verdict};
use psync_time::Duration;
use psync_verify::Oracle;

use crate::metrics::{MetricsSnapshot, Registry};
use crate::monitor::StreamingEps;

/// The deterministic judging snapshot every judging path reports:
/// `monitor.checks` oracles checked, `monitor.violations` of them
/// violated. Shared by [`check_all_sharded`] and the explorer's online
/// judge so offline and online cases account their monitoring work under
/// the same names.
#[must_use]
pub fn monitor_snapshot(checks: u64, violations: u64) -> MetricsSnapshot {
    let mut registry = Registry::new();
    registry.add("monitor.checks", checks);
    registry.add("monitor.violations", violations);
    registry.snapshot()
}

/// Checks every oracle against one execution on `shards` worker threads,
/// returning the violations *in oracle order* (identical to
/// [`psync_verify::check_all`]) plus a deterministic metrics snapshot of
/// the judging work (`monitor.checks`, `monitor.violations`).
///
/// `shards <= 1` is the plain sequential loop; any larger count yields
/// the same return value, merely faster.
#[must_use]
pub fn check_all_sharded<A: Action + Send + Sync>(
    oracles: &[Box<dyn Oracle<A>>],
    exec: &Execution<A>,
    shards: usize,
) -> (Vec<(String, String)>, MetricsSnapshot) {
    let shards = shards.max(1).min(oracles.len().max(1));
    if shards <= 1 {
        let violations: Vec<(String, String)> = oracles
            .iter()
            .filter_map(|o| match o.check(exec) {
                Verdict::Holds => None,
                Verdict::Violated(why) => Some((o.name(), why)),
            })
            .collect();
        let metrics = monitor_snapshot(oracles.len() as u64, violations.len() as u64);
        return (violations, metrics);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Option<(String, String)>>> =
        (0..oracles.len()).map(|_| OnceLock::new()).collect();
    let mut shard_snaps: Vec<Option<MetricsSnapshot>> = (0..shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let next = &next;
            let slots = &slots;
            handles.push(scope.spawn(move || {
                let mut registry = Registry::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(oracle) = oracles.get(i) else {
                        break;
                    };
                    let verdict = match oracle.check(exec) {
                        Verdict::Holds => None,
                        Verdict::Violated(why) => Some((oracle.name(), why)),
                    };
                    registry.add("monitor.checks", 1);
                    if verdict.is_some() {
                        registry.add("monitor.violations", 1);
                    }
                    slots[i].set(verdict).expect("oracle slot claimed twice");
                }
                registry.snapshot()
            }));
        }
        for (snap, handle) in shard_snaps.iter_mut().zip(handles) {
            *snap = Some(handle.join().expect("judge shard panicked"));
        }
    });
    let violations = slots
        .into_iter()
        .filter_map(|slot| slot.into_inner().flatten())
        .collect();
    // Seed both counters at zero before absorbing the shard snapshots: a
    // clean run's shards never touch `monitor.violations`, and the merged
    // snapshot must still carry the key (at 0) to stay bit-identical to
    // the sequential path's.
    let mut metrics = monitor_snapshot(0, 0);
    for snap in shard_snaps.into_iter().flatten() {
        metrics.absorb(&snap);
    }
    (violations, metrics)
}

/// Which lane an observed event belongs to, as a dense ordinal matching
/// the sequential monitor's finish order: class lanes ascending by class
/// index first, then unclassified-value lanes in reference insertion
/// order.
#[derive(Debug)]
struct LaneTable<A> {
    /// Ascending class indices present in the reference.
    classes: Vec<usize>,
    /// Distinct unclassified action values, reference insertion order.
    rest: Vec<A>,
    /// Reference indices per lane ordinal.
    indices: Vec<Vec<usize>>,
}

impl<A: Action> LaneTable<A> {
    fn build(reference: &TimedTrace<A>, classes: &ClassMap<A>) -> LaneTable<A> {
        let mut class_ids: Vec<usize> = Vec::new();
        let mut rest: Vec<A> = Vec::new();
        for (a, _) in reference.iter() {
            match classes.class_of(a) {
                Some(c) => {
                    if !class_ids.contains(&c) {
                        class_ids.push(c);
                    }
                }
                None => {
                    if !rest.contains(a) {
                        rest.push(a.clone());
                    }
                }
            }
        }
        class_ids.sort_unstable();
        let mut indices = vec![Vec::new(); class_ids.len() + rest.len()];
        let mut table = LaneTable {
            classes: class_ids,
            rest,
            indices: Vec::new(),
        };
        for (i, (a, _)) in reference.iter().enumerate() {
            let lane = table
                .lane_of(a, classes)
                .expect("reference action always has a lane");
            indices[lane].push(i);
        }
        table.indices = indices;
        table
    }

    /// The lane ordinal of `a`, or `None` when the reference has no lane
    /// for it (the sequential monitor's lane-miss error).
    fn lane_of(&self, a: &A, classes: &ClassMap<A>) -> Option<usize> {
        match classes.class_of(a) {
            Some(c) => self.classes.binary_search(&c).ok(),
            None => self
                .rest
                .iter()
                .position(|v| v == a)
                .map(|p| self.classes.len() + p),
        }
    }

    fn class_of_lane(&self, lane: usize) -> Option<usize> {
        self.classes.get(lane).copied()
    }
}

/// A lane-sharded `reference =_{ε,κ} observed` check, verdict-identical
/// to [`StreamingEps`] fed the same trace.
///
/// The forced matching never couples two lanes, so `check` classifies the
/// observed trace once (recording any lane-miss error with its index) and
/// then consumes the lanes on `shards` scoped threads, lane `l` on thread
/// `l % shards`. Each shard reports its first error with the *global*
/// observed index at which it struck; the merged verdict is the error at
/// the minimum index — precisely the sequential monitor's sticky first
/// error, because lane state at any index depends only on earlier events
/// of the same lane.
#[derive(Debug)]
pub struct ShardedEps<'a, A: Action> {
    reference: &'a TimedTrace<A>,
    classes: &'a ClassMap<A>,
    eps: Duration,
    shards: usize,
}

/// One shard's outcome: first error (by global observed index or, for
/// finish-phase leftovers, lane ordinal offset past the stream), plus the
/// shard's witness contribution.
struct ShardOutcome<A> {
    error: Option<(usize, RelationError<A>)>,
    max_dev: Duration,
    matched: usize,
}

impl<'a, A: Action + Send + Sync> ShardedEps<'a, A> {
    /// Creates a sharded checker for `reference =_{ε,κ} ⟨observed⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or `shards` is zero.
    #[must_use]
    pub fn new(
        reference: &'a TimedTrace<A>,
        eps: Duration,
        classes: &'a ClassMap<A>,
        shards: usize,
    ) -> Self {
        assert!(!eps.is_negative(), "ε must be non-negative");
        assert!(shards > 0, "at least one shard");
        ShardedEps {
            reference,
            classes,
            eps,
            shards,
        }
    }

    /// Judges the observed trace; the result equals feeding it event by
    /// event to [`StreamingEps`] and calling `finish`.
    ///
    /// # Errors
    ///
    /// The same first [`RelationError`] the sequential monitor reports.
    pub fn check(&self, observed: &TimedTrace<A>) -> Result<Witness, RelationError<A>> {
        if self.shards == 1 {
            let mut m = StreamingEps::new(self.reference, self.eps, self.classes);
            for (a, time) in observed.iter() {
                m.observe(a, time);
            }
            return m.finish();
        }
        let table = LaneTable::build(self.reference, self.classes);
        // Classify the observed stream once; a lane miss is an
        // observe-phase error candidate at its index.
        let mut lanes: Vec<usize> = Vec::with_capacity(observed.len());
        let mut miss: Option<(usize, RelationError<A>)> = None;
        for (position, (a, _)) in observed.iter().enumerate() {
            match table.lane_of(a, self.classes) {
                Some(lane) => lanes.push(lane),
                None => {
                    miss = Some((
                        position,
                        match self.classes.class_of(a) {
                            Some(c) => RelationError::CardinalityMismatch {
                                class: Some(c),
                                left: 0,
                                right: 1,
                            },
                            None => RelationError::ActionMismatch {
                                class: None,
                                position,
                                left: a.clone(),
                                right: a.clone(),
                            },
                        },
                    ));
                    break;
                }
            }
        }
        let fed = lanes.len(); // events before any lane miss
        let shards = self.shards.min(table.indices.len().max(1));
        let outcomes: Vec<ShardOutcome<A>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for s in 0..shards {
                let table = &table;
                let lanes = &lanes;
                handles.push(
                    scope.spawn(move || self.run_shard(s, shards, table, lanes, observed, fed)),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("eps shard panicked"))
                .collect()
        });
        let mut first: Option<(usize, RelationError<A>)> = miss;
        let mut max_dev = Duration::ZERO;
        let mut matched = 0usize;
        for outcome in outcomes {
            if let Some((at, e)) = outcome.error {
                if first.as_ref().is_none_or(|(best, _)| at < *best) {
                    first = Some((at, e));
                }
            }
            max_dev = max_dev.max(outcome.max_dev);
            matched += outcome.matched;
        }
        match first {
            Some((_, e)) => Err(e),
            None => Ok(Witness {
                max_deviation: max_dev,
                matched,
            }),
        }
    }

    fn run_shard(
        &self,
        shard: usize,
        shards: usize,
        table: &LaneTable<A>,
        lanes: &[usize],
        observed: &TimedTrace<A>,
        fed: usize,
    ) -> ShardOutcome<A> {
        let mut cursors = vec![0usize; table.indices.len()];
        let mut outcome = ShardOutcome {
            error: None,
            max_dev: Duration::ZERO,
            matched: 0,
        };
        for (position, &lane) in lanes.iter().enumerate().take(fed) {
            if lane % shards != shard {
                continue;
            }
            let (action, time) = observed.get(position).expect("classified in range");
            let class = table.class_of_lane(lane);
            let indices = &table.indices[lane];
            let cursor = &mut cursors[lane];
            let Some(&i) = indices.get(*cursor) else {
                outcome.error = Some((
                    position,
                    RelationError::CardinalityMismatch {
                        class,
                        left: indices.len(),
                        right: indices.len() + 1,
                    },
                ));
                break;
            };
            let pos = *cursor;
            *cursor += 1;
            let (ra, rt) = self.reference.get(i).expect("lane index in range");
            if ra != action {
                outcome.error = Some((
                    position,
                    RelationError::ActionMismatch {
                        class,
                        position: pos,
                        left: ra.clone(),
                        right: action.clone(),
                    },
                ));
                break;
            }
            let dev = rt.skew(time);
            if dev > self.eps {
                outcome.error = Some((
                    position,
                    RelationError::TimeBound {
                        action: ra.clone(),
                        left_time: rt,
                        right_time: time,
                        bound: self.eps,
                    },
                ));
                break;
            }
            outcome.max_dev = outcome.max_dev.max(dev);
            outcome.matched += 1;
        }
        if outcome.error.is_none() && fed == observed.len() {
            // Finish-phase leftovers, ordered after every observed index
            // by lane ordinal so the merge picks the smallest lane — the
            // sequential finish order.
            for (lane, indices) in table.indices.iter().enumerate() {
                if lane % shards != shard {
                    continue;
                }
                if cursors[lane] < indices.len() {
                    outcome.error = Some((
                        observed.len() + lane,
                        RelationError::CardinalityMismatch {
                            class: table.class_of_lane(lane),
                            left: indices.len(),
                            right: cursors[lane],
                        },
                    ));
                    break;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Time;
    use psync_verify::FnOracle;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn per_letter() -> ClassMap<&'static str> {
        ClassMap::by(|a: &&str| match a.as_bytes().first() {
            Some(b'a') => Some(0),
            Some(b'b') => Some(1),
            _ => None,
        })
    }

    fn sequential(
        reference: &TimedTrace<&'static str>,
        observed: &TimedTrace<&'static str>,
        eps: Duration,
        classes: &ClassMap<&'static str>,
    ) -> Result<Witness, RelationError<&'static str>> {
        let mut m = StreamingEps::new(reference, eps, classes);
        for (a, time) in observed.iter() {
            m.observe(a, time);
        }
        m.finish()
    }

    #[test]
    fn sharded_matches_sequential_on_accept_and_reject() {
        let classes = per_letter();
        let reference = TimedTrace::from_pairs(vec![
            ("a1", t(0)),
            ("b1", t(1)),
            ("x", t(2)),
            ("a2", t(3)),
            ("b2", t(4)),
            ("y", t(5)),
        ]);
        let cases = vec![
            // accept
            vec![
                ("a1", t(1)),
                ("b1", t(1)),
                ("x", t(2)),
                ("a2", t(4)),
                ("b2", t(4)),
                ("y", t(5)),
            ],
            // time bound in class 0 at index 3
            vec![
                ("a1", t(1)),
                ("b1", t(1)),
                ("x", t(2)),
                ("a2", t(9)),
                ("b2", t(9)),
                ("y", t(9)),
            ],
            // action mismatch in class 1
            vec![("a1", t(0)), ("b2", t(1))],
            // extra rest action (lane overrun)
            vec![("x", t(2)), ("x", t(2))],
            // unknown rest action (lane miss)
            vec![("z", t(0))],
            // leftovers at finish
            vec![("a1", t(0))],
            vec![],
        ];
        for observed in cases {
            let observed = TimedTrace::from_pairs(observed);
            let expected = sequential(&reference, &observed, ms(2), &classes);
            for shards in [1, 2, 3, 8] {
                let got = ShardedEps::new(&reference, ms(2), &classes, shards).check(&observed);
                assert_eq!(got, expected, "shards={shards}");
            }
        }
    }

    #[test]
    fn check_all_sharded_is_shard_count_invariant() {
        use psync_automata::toys::BeepAction;
        let exec: Execution<BeepAction> = Execution::new(Vec::new(), t(1));
        let oracles: Vec<Box<dyn Oracle<BeepAction>>> = (0..7)
            .map(|i| {
                Box::new(FnOracle::new(format!("o{i}"), move |_: &Execution<_>| {
                    if i % 3 == 0 {
                        Verdict::violated(format!("bad {i}"))
                    } else {
                        Verdict::Holds
                    }
                })) as Box<dyn Oracle<BeepAction>>
            })
            .collect();
        let (base_v, base_m) = check_all_sharded(&oracles, &exec, 1);
        assert_eq!(base_v.len(), 3);
        assert_eq!(base_m.counter("monitor.checks"), 7);
        assert_eq!(base_m.counter("monitor.violations"), 3);
        for shards in [2, 3, 4, 16] {
            let (v, m) = check_all_sharded(&oracles, &exec, shards);
            assert_eq!(v, base_v, "shards={shards}");
            assert_eq!(m, base_m, "shards={shards}");
        }
    }
}
