//! Online judging: run [`StreamOracle`]s against a live engine run
//! through the [`Observer`] hooks, instead of sweeping the finished
//! execution.
//!
//! [`OnlineJudge`] follows the [`MetricsHub`](crate::MetricsHub) handle
//! idiom: the judge itself is a cheap clonable handle
//! (`Rc<RefCell<..>>`), and [`OnlineJudge::observer`] hands out the
//! [`Observer`] half to attach at engine build time. While the engine
//! runs, every recorded event and clock reading is fed to each oracle in
//! registration order; the moment any oracle declares a violation
//! *certain*, [`OnlineJudge::certain`] reports it, and a chunked driver
//! (`run_until_events` … resume) can stop the case right there —
//! the short-circuit that makes judging scale with violations instead of
//! horizons. [`OnlineJudge::finish`] closes the stream and collects the
//! final verdicts in oracle order, deterministic for a fixed run.

use std::cell::RefCell;
use std::rc::Rc;

use psync_automata::{Action, TimedEvent, Verdict};
use psync_executor::{ClockRead, Observer};
use psync_time::Time;
use psync_verify::StreamOracle;

struct Inner<A: Action> {
    oracles: Vec<Box<dyn StreamOracle<A>>>,
    /// First certain violation, in (event, oracle-registration) order.
    certain: Option<(String, String)>,
}

impl<A: Action> Inner<A> {
    fn poll(&mut self) {
        if self.certain.is_some() {
            return;
        }
        for oracle in &self.oracles {
            if let Some(why) = oracle.violation() {
                self.certain = Some((oracle.name(), why));
                return;
            }
        }
    }
}

/// A handle over a set of [`StreamOracle`]s judging one live run.
pub struct OnlineJudge<A: Action> {
    inner: Rc<RefCell<Inner<A>>>,
}

impl<A: Action> OnlineJudge<A> {
    /// Wraps `oracles`; their registration order fixes the verdict order.
    #[must_use]
    pub fn new(oracles: Vec<Box<dyn StreamOracle<A>>>) -> Self {
        OnlineJudge {
            inner: Rc::new(RefCell::new(Inner {
                oracles,
                certain: None,
            })),
        }
    }

    /// The [`Observer`] half, to attach via
    /// `EngineBuilder::observer(judge.observer())`.
    #[must_use]
    pub fn observer(&self) -> OnlineJudgeObserver<A> {
        OnlineJudgeObserver {
            inner: Rc::clone(&self.inner),
        }
    }

    /// The first violation any oracle declared certain, if one exists —
    /// the driver's short-circuit signal.
    #[must_use]
    pub fn certain(&self) -> Option<(String, String)> {
        self.inner.borrow().certain.clone()
    }

    /// Closes the stream at `end` (the real time the run reached) and
    /// returns every violation as `(oracle name, reason)` in oracle
    /// order — the same shape [`psync_verify::check_all`] produces.
    #[must_use]
    pub fn finish(&self, end: Time) -> Vec<(String, String)> {
        let mut inner = self.inner.borrow_mut();
        let mut violations = Vec::new();
        for oracle in &mut inner.oracles {
            match oracle.finish(end) {
                Verdict::Holds => {}
                Verdict::Violated(why) => violations.push((oracle.name(), why)),
            }
        }
        violations
    }
}

impl<A: Action> std::fmt::Debug for OnlineJudge<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("OnlineJudge")
            .field("oracles", &inner.oracles.len())
            .field("certain", &inner.certain)
            .finish()
    }
}

/// The [`Observer`] half of an [`OnlineJudge`] (see
/// [`OnlineJudge::observer`]).
pub struct OnlineJudgeObserver<A: Action> {
    inner: Rc<RefCell<Inner<A>>>,
}

impl<A: Action> Observer<A> for OnlineJudgeObserver<A> {
    fn on_clock_read(&mut self, read: ClockRead) {
        let mut inner = self.inner.borrow_mut();
        for oracle in &mut inner.oracles {
            oracle.observe_clock(read.node, read.now, read.clock, read.eps);
        }
        inner.poll();
    }

    fn on_event(&mut self, index: usize, event: &TimedEvent<A>) {
        let mut inner = self.inner.borrow_mut();
        for oracle in &mut inner.oracles {
            oracle.observe_event(index, event);
        }
        inner.poll();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_executor::Engine;
    use psync_time::Duration;

    /// Flags the n-th beep as certain the moment it fires.
    struct AtMostBeeps {
        limit: usize,
        seen: usize,
    }

    impl StreamOracle<BeepAction> for AtMostBeeps {
        fn name(&self) -> String {
            "at most beeps".to_string()
        }

        fn observe_event(&mut self, _index: usize, event: &TimedEvent<BeepAction>) {
            if event.kind.is_visible() {
                self.seen += 1;
            }
        }

        fn violation(&self) -> Option<String> {
            (self.seen > self.limit).then(|| format!("{} beeps > {}", self.seen, self.limit))
        }

        fn finish(&mut self, _end: Time) -> Verdict {
            match self.violation() {
                Some(why) => Verdict::Violated(why),
                None => Verdict::Holds,
            }
        }
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn judge_turns_certain_mid_run_and_reports_in_order() {
        let judge = OnlineJudge::new(vec![Box::new(AtMostBeeps { limit: 2, seen: 0 })]);
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(5)))
            .observer(judge.observer())
            .horizon(Time::ZERO + ms(40))
            .build();
        let run = engine.run().unwrap();
        assert!(run.execution.len() >= 3);
        let (name, why) = judge.certain().expect("third beep is certain");
        assert_eq!(name, "at most beeps");
        assert!(why.contains("beeps > 2"));
        let verdicts = judge.finish(Time::ZERO + ms(40));
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].0, "at most beeps");
    }

    #[test]
    fn judge_holds_on_clean_run() {
        let judge = OnlineJudge::new(vec![Box::new(AtMostBeeps { limit: 10, seen: 0 })]);
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(5)))
            .observer(judge.observer())
            .horizon(Time::ZERO + ms(20))
            .build();
        engine.run().unwrap();
        assert!(judge.certain().is_none());
        assert!(judge.finish(Time::ZERO + ms(20)).is_empty());
    }
}
