//! The metrics registry: named counters and fixed-bucket histograms, with
//! deterministically ordered JSON snapshots.
//!
//! Determinism is load-bearing: the explorer's replay coverage asserts
//! that re-running a case from a JSON artifact reproduces the *same*
//! [`MetricsSnapshot`], so metric names are kept in sorted order
//! (`BTreeMap`) rather than insertion or hash order, and snapshots derive
//! `PartialEq`/`Eq`. The JSON writer is hand-rolled in the same style as
//! `psync-explorer`'s `json` module (objects keep key order, two-space
//! indent, integers only) so snapshots parse with that module's parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram of `i64` samples (typically nanoseconds).
///
/// `bounds` are inclusive upper bucket bounds in strictly increasing
/// order; a final implicit overflow bucket catches everything above the
/// last bound, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<i64>,
    counts: Vec<u64>,
    count: u64,
    sum: i128,
    max: i64,
}

impl Histogram {
    /// Creates an empty histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: &[i64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: i64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += i128::from(value);
        if self.count == 1 || value > self.max {
            self.max = value;
        }
    }

    /// The inclusive upper bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// Per-bucket sample counts (last entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging is only meaningful
    /// between histograms of the same shape.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 && (self.count == other.count || other.max > self.max) {
            self.max = other.max;
        }
    }
}

/// A registry of named counters and histograms.
///
/// Names are kept sorted (`BTreeMap`), so two registries fed the same
/// updates in *any* order produce equal [`MetricsSnapshot`]s — the
/// property the explorer's replay tests pin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` — a last-write-wins level, for
    /// quantities that are measured rather than accumulated (e.g. the
    /// certified `ε̂` per node in nanoseconds).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name`, creating it with
    /// `bounds` on first use.
    ///
    /// # Panics
    ///
    /// Panics (via [`Histogram::with_bounds`]) if a new histogram is given
    /// invalid bounds.
    pub fn observe(&mut self, name: &str, bounds: &[i64], value: i64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// The current value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of gauge `name`, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any sample was recorded under it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// An immutable, order-stable snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Folds the contents of `snapshot` into the live registry with the
    /// same algebra as [`MetricsSnapshot::absorb`]: counters add, gauges
    /// keep the worst (largest) level, histograms merge bucket-wise.
    /// Used to fold a judging pass's deterministic snapshot into a case's
    /// hub without disturbing what the run itself recorded.
    ///
    /// # Panics
    ///
    /// Panics if a histogram shared by name has different bucket bounds.
    pub fn absorb(&mut self, snapshot: &MetricsSnapshot) {
        for (name, v) in &snapshot.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &snapshot.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|g| *g = (*g).max(*v))
                .or_insert(*v);
        }
        for (name, h) in &snapshot.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
            }
        }
    }

    /// Discards everything recorded and replaces it with the contents of
    /// `snapshot` — the inverse of [`Registry::snapshot`], so
    /// `restore(snap)` followed by `self.snapshot()` yields `snap` exactly.
    /// Used to rewind metrics alongside an engine checkpoint restore.
    pub fn restore(&mut self, snapshot: &MetricsSnapshot) {
        self.counters = snapshot
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        self.gauges = snapshot
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        self.histograms = snapshot
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect();
    }
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
///
/// Snapshots compare with `==` (the replay tests do exactly that) and
/// serialize to JSON with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// The value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of gauge `name`, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, names union (staying sorted).
    ///
    /// # Panics
    ///
    /// Panics if a histogram shared by name has different bucket bounds.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(k, _)| k.cmp(name)) {
                // Gauges are levels, not totals: merging runs keeps the
                // worst (largest) level seen, so a campaign-wide ε̂ gauge
                // reads as "no case certified worse than this".
                Ok(i) => self.gauges[i].1 = self.gauges[i].1.max(*v),
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(k, _)| k.cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Serializes the snapshot as pretty-printed JSON (two-space indent,
    /// key order preserved, integers only) — the same hand-rolled dialect
    /// as `psync-explorer`'s `json` module, so its parser round-trips the
    /// output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        if self.counters.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        if self.gauges.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(": {\n");
            let _ = writeln!(out, "      \"bounds\": {},", write_int_array(&h.bounds));
            let _ = writeln!(out, "      \"counts\": {},", write_int_array(&h.counts));
            let _ = writeln!(out, "      \"count\": {},", h.count);
            let _ = writeln!(out, "      \"sum\": {},", h.sum);
            let _ = writeln!(out, "      \"max\": {}", h.max);
            out.push_str("    }");
        }
        if self.histograms.is_empty() {
            out.push_str("}\n}");
        } else {
            out.push_str("\n  }\n}");
        }
        out
    }
}

/// Writes a JSON string literal with the minimal escapes the explorer's
/// parser understands.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_int_array<T: std::fmt::Display>(values: &[T]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.observe(10);
        h.observe(11);
        h.observe(1_000);
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_021);
        assert_eq!(h.max(), 1_000);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::with_bounds(&[10]);
        a.observe(5);
        let mut b = Histogram::with_bounds(&[10]);
        b.observe(50);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn snapshots_are_order_insensitive() {
        let mut r1 = Registry::new();
        r1.add("b", 1);
        r1.add("a", 2);
        let mut r2 = Registry::new();
        r2.add("a", 2);
        r2.add("b", 1);
        assert_eq!(r1.snapshot(), r2.snapshot());
        let snap = r1.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn absorb_unions_and_adds() {
        let mut a = MetricsSnapshot::default();
        let mut r = Registry::new();
        r.add("x", 1);
        r.observe("h", &[10], 3);
        a.absorb(&r.snapshot());
        a.absorb(&r.snapshot());
        assert_eq!(a.counter("x"), 2);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    /// The guarantee campaign merging leans on: folding per-case
    /// snapshots is associative and has the empty snapshot as identity,
    /// so any bracketing of the same case sequence yields the same
    /// aggregate — including with partially overlapping metric names.
    #[test]
    fn absorb_is_associative_with_empty_identity() {
        let snap = |seed: u64| {
            let mut r = Registry::new();
            r.add("shared", seed);
            r.add(&format!("only.{}", seed % 3), 1);
            r.observe("h.shared", &[10, 100], (seed % 200) as i64);
            r.observe(&format!("h.only.{}", seed % 2), &[5], (seed % 7) as i64);
            r.snapshot()
        };
        let (a, b, c) = (snap(1), snap(2), snap(3));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(left, right);

        // Empty is an identity on both sides.
        let mut from_empty = MetricsSnapshot::default();
        from_empty.absorb(&left);
        assert_eq!(from_empty, left);
        let mut with_empty = left.clone();
        with_empty.absorb(&MetricsSnapshot::default());
        assert_eq!(with_empty, left);
    }

    #[test]
    fn gauges_are_last_write_levels_that_absorb_by_max() {
        let mut r = Registry::new();
        r.set_gauge("sync.eps_hat_ns.n0", 1_500_000);
        r.set_gauge("sync.eps_hat_ns.n0", 1_200_000);
        assert_eq!(r.gauge("sync.eps_hat_ns.n0"), Some(1_200_000));
        assert_eq!(r.gauge("absent"), None);

        let mut merged = r.snapshot();
        let mut worse = Registry::new();
        worse.set_gauge("sync.eps_hat_ns.n0", 1_900_000);
        worse.set_gauge("sync.eps_hat_ns.n1", -5);
        merged.absorb(&worse.snapshot());
        assert_eq!(merged.gauge("sync.eps_hat_ns.n0"), Some(1_900_000));
        assert_eq!(merged.gauge("sync.eps_hat_ns.n1"), Some(-5));

        // Restore round-trips gauges like everything else.
        let mut back = Registry::new();
        back.restore(&merged);
        assert_eq!(back.snapshot(), merged);

        let json = merged.to_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"sync.eps_hat_ns.n0\": 1900000"));
    }

    #[test]
    fn json_snapshot_is_stable_and_integer_only() {
        let mut r = Registry::new();
        r.add("engine.steps", 3);
        r.observe("engine.queue_depth", &[1, 2], 1);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"engine.steps\": 3"));
        assert!(json.contains("\"bounds\": [1, 2]"));
        assert_eq!(json, r.snapshot().to_json());
    }

    #[test]
    fn empty_snapshot_serializes() {
        let json = MetricsSnapshot::default().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
    }
}
