//! Observability for the psync engines.
//!
//! Three layers, each usable on its own:
//!
//! - [`metrics`] — a registry of named counters and fixed-bucket
//!   histograms with deterministically ordered, `Eq`-comparable
//!   [`MetricsSnapshot`]s and hand-rolled JSON serialization.
//! - [`observe`] — [`psync_executor::Observer`] implementations that tap
//!   engine hook points into a shared [`MetricsHub`] (steps, deliveries,
//!   queue depth, clock drift, per-channel delay) plus the streaming
//!   [`CEpsMonitor`] for the `C_ε` clock-accuracy predicate.
//! - [`monitor`] — streaming monitors for the paper's trace relations
//!   `=_{ε,κ}` and `≤_{δ,K}`, verdict-equivalent to the offline matchers
//!   in [`psync_automata::relations`] but with memory bounded by the
//!   reference trace, and [`psync_verify::Oracle`] adapters for both.
//! - [`approx`] — bounded-memory *approximate* variants of the same
//!   monitors: times coarsened to a grain-sized lattice, lanes run-length
//!   compressed into buckets, every verdict carrying a quantified `±err`
//!   interval.
//! - [`shard`] — deterministic parallel judging: [`check_all_sharded`]
//!   fans a slice of oracles across a scoped thread pool and
//!   [`ShardedEps`] splits one `=_{ε,κ}` check by lane, both merging
//!   results in a fixed order so verdicts and metrics are bit-identical
//!   to the sequential path.
//! - [`online`] — [`OnlineJudge`], an [`psync_executor::Observer`] that
//!   feeds events to [`psync_verify::StreamOracle`]s *during* the run and
//!   exposes a handle for short-circuiting the moment a violation is
//!   certain.
//!
//! Everything here is an *observer* in the strict sense: attaching any of
//! these to an [`Engine`](psync_executor::Engine) or
//! [`ReferenceEngine`](psync_executor::ReferenceEngine) never changes the
//! produced [`Execution`](psync_automata::Execution) — the engines invoke
//! hooks read-only, and `crates/executor/tests/engine_equiv.rs` pins
//! attached-vs-detached equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod metrics;
pub mod monitor;
pub mod observe;
pub mod online;
pub mod shard;

pub use approx::{ApproxDelta, ApproxEps, ApproxViolation, ApproxWitness, StableFnv};
pub use metrics::{Histogram, MetricsSnapshot, Registry};
pub use monitor::{DeltaTraceOracle, EpsTraceOracle, StreamingDelta, StreamingEps};
pub use observe::{
    CEpsMonitor, CEpsOracle, ChannelDelayObserver, EngineMetrics, MetricsHub, ADVANCE_NS_BOUNDS,
    DELAY_NS_BOUNDS, DRIFT_NS_BOUNDS, QUEUE_DEPTH_BOUNDS,
};
pub use online::OnlineJudge;
pub use shard::{check_all_sharded, monitor_snapshot, ShardedEps};
