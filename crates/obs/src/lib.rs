//! Observability for the psync engines.
//!
//! Three layers, each usable on its own:
//!
//! - [`metrics`] — a registry of named counters and fixed-bucket
//!   histograms with deterministically ordered, `Eq`-comparable
//!   [`MetricsSnapshot`]s and hand-rolled JSON serialization.
//! - [`observe`] — [`psync_executor::Observer`] implementations that tap
//!   engine hook points into a shared [`MetricsHub`] (steps, deliveries,
//!   queue depth, clock drift, per-channel delay) plus the streaming
//!   [`CEpsMonitor`] for the `C_ε` clock-accuracy predicate.
//! - [`monitor`] — streaming monitors for the paper's trace relations
//!   `=_{ε,κ}` and `≤_{δ,K}`, verdict-equivalent to the offline matchers
//!   in [`psync_automata::relations`] but with memory bounded by the
//!   reference trace, and [`psync_verify::Oracle`] adapters for both.
//!
//! Everything here is an *observer* in the strict sense: attaching any of
//! these to an [`Engine`](psync_executor::Engine) or
//! [`ReferenceEngine`](psync_executor::ReferenceEngine) never changes the
//! produced [`Execution`](psync_automata::Execution) — the engines invoke
//! hooks read-only, and `crates/executor/tests/engine_equiv.rs` pins
//! attached-vs-detached equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod monitor;
pub mod observe;

pub use metrics::{Histogram, MetricsSnapshot, Registry};
pub use monitor::{DeltaTraceOracle, EpsTraceOracle, StreamingDelta, StreamingEps};
pub use observe::{
    CEpsMonitor, CEpsOracle, ChannelDelayObserver, EngineMetrics, MetricsHub, ADVANCE_NS_BOUNDS,
    DELAY_NS_BOUNDS, DRIFT_NS_BOUNDS, QUEUE_DEPTH_BOUNDS,
};
