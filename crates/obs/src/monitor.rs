//! Streaming evaluation of the trace relations `=_{ε,κ}` (Definition 2.8)
//! and `≤_{δ,K}` (Definition 2.9) against a fixed reference trace.
//!
//! The offline matchers in [`psync_automata::relations`] exploit the fact
//! that the bijection of both definitions is *forced*: within a class of
//! `κ` (or `K`) it must be the unique monotone one, and the unclassified
//! remainder is either greedily paired per action value (`=_{ε,κ}`) or
//! order-forced with exact times (`≤_{δ,K}`). Forced matchings need no
//! lookahead — which is what makes a streaming evaluation possible at all:
//! the monitor partitions the *reference* trace once at construction and
//! keeps a cursor per class (plus one per distinct unclassified action
//! value for `=_{ε,κ}`); each observed event advances exactly one cursor
//! in O(classes) time. Memory is **bounded by the reference trace** —
//! O(|reference| + classes) — and independent of how many events the
//! monitored run produces before failing.
//!
//! Verdicts agree with the offline matchers by construction: the monitors
//! check the same forced pairs against the same bounds and reuse
//! [`ClassMap`] and [`Witness`], so on acceptance the witness (worst
//! deviation, matched count) is *equal* to the offline one, and on
//! rejection both sides reject (the offline matcher may report a
//! different — earlier in its scan order — [`RelationError`] for the same
//! defect pair of traces). `tests/prop_monitors.rs` pins this agreement
//! differentially on proptest-generated traces.

use psync_automata::relations::{ClassMap, RelationError, Witness};
use psync_automata::{Action, Execution, TimedTrace, Verdict};
use psync_time::{Duration, Time};
use psync_verify::Oracle;

/// One forced-matching lane: the reference indices of a class (or of one
/// unclassified action value) and how far the observed stream has consumed
/// them.
#[derive(Debug)]
struct Lane {
    indices: Vec<usize>,
    cursor: usize,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            indices: Vec::new(),
            cursor: 0,
        }
    }
}

/// Streaming `reference =_{ε,κ} observed` monitor (Definition 2.8).
///
/// Observed events arrive via [`observe`](StreamingEps::observe) in trace
/// order; [`finish`](StreamingEps::finish) delivers the verdict. The
/// reference trace is the *left* side of the relation, the observed stream
/// the *right*.
#[derive(Debug)]
pub struct StreamingEps<'a, A: Action> {
    reference: &'a TimedTrace<A>,
    classes: &'a ClassMap<A>,
    eps: Duration,
    /// Per-class lanes, ascending by class index.
    class_lanes: Vec<(usize, Lane)>,
    /// Per-action-value lanes for the unclassified remainder.
    rest_lanes: Vec<(A, Lane)>,
    observed: usize,
    max_dev: Duration,
    matched: usize,
    error: Option<RelationError<A>>,
}

impl<'a, A: Action> StreamingEps<'a, A> {
    /// Creates a monitor for `reference =_{ε,κ} ⟨observed stream⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative (as the offline matcher does).
    #[must_use]
    pub fn new(reference: &'a TimedTrace<A>, eps: Duration, classes: &'a ClassMap<A>) -> Self {
        assert!(!eps.is_negative(), "ε must be non-negative");
        let mut class_lanes: Vec<(usize, Lane)> = Vec::new();
        let mut rest_lanes: Vec<(A, Lane)> = Vec::new();
        for (i, (a, _)) in reference.iter().enumerate() {
            match classes.class_of(a) {
                Some(c) => {
                    let lane = match class_lanes.iter_mut().find(|(k, _)| *k == c) {
                        Some((_, lane)) => lane,
                        None => {
                            class_lanes.push((c, Lane::new()));
                            &mut class_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.indices.push(i);
                }
                None => {
                    let lane = match rest_lanes.iter_mut().find(|(v, _)| v == a) {
                        Some((_, lane)) => lane,
                        None => {
                            rest_lanes.push((a.clone(), Lane::new()));
                            &mut rest_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.indices.push(i);
                }
            }
        }
        class_lanes.sort_by_key(|(c, _)| *c);
        StreamingEps {
            reference,
            classes,
            eps,
            class_lanes,
            rest_lanes,
            observed: 0,
            max_dev: Duration::ZERO,
            matched: 0,
            error: None,
        }
    }

    /// Feeds the next observed `(action, time)` pair. After the first
    /// violation further calls are no-ops; the verdict is sticky.
    pub fn observe(&mut self, action: &A, time: Time) {
        if self.error.is_some() {
            return;
        }
        let position = self.observed;
        self.observed += 1;
        let class = self.classes.class_of(action);
        let lane = match class {
            Some(c) => self
                .class_lanes
                .iter_mut()
                .find(|(k, _)| *k == c)
                .map(|(_, l)| l),
            None => self
                .rest_lanes
                .iter_mut()
                .find(|(v, _)| v == action)
                .map(|(_, l)| l),
        };
        let Some(lane) = lane else {
            // The observed action has no counterpart lane in the reference.
            self.error = Some(match class {
                Some(c) => RelationError::CardinalityMismatch {
                    class: Some(c),
                    left: 0,
                    right: 1,
                },
                None => RelationError::ActionMismatch {
                    class: None,
                    position,
                    left: action.clone(),
                    right: action.clone(),
                },
            });
            return;
        };
        let Some(&i) = lane.indices.get(lane.cursor) else {
            // More observed actions in this lane than the reference holds.
            self.error = Some(RelationError::CardinalityMismatch {
                class,
                left: lane.indices.len(),
                right: lane.indices.len() + 1,
            });
            return;
        };
        let pos = lane.cursor;
        lane.cursor += 1;
        let (ra, rt) = self.reference.get(i).expect("lane index in range");
        if ra != action {
            self.error = Some(RelationError::ActionMismatch {
                class,
                position: pos,
                left: ra.clone(),
                right: action.clone(),
            });
            return;
        }
        let dev = rt.skew(time);
        if dev > self.eps {
            self.error = Some(RelationError::TimeBound {
                action: ra.clone(),
                left_time: rt,
                right_time: time,
                bound: self.eps,
            });
            return;
        }
        self.max_dev = self.max_dev.max(dev);
        self.matched += 1;
    }

    /// Closes the observed stream and delivers the verdict. On success the
    /// [`Witness`] equals the offline
    /// [`eps_equivalent`](psync_automata::relations::eps_equivalent) one.
    ///
    /// # Errors
    ///
    /// The first violation observed, or a [`RelationError::CardinalityMismatch`]
    /// when the stream ended with reference actions unmatched.
    pub fn finish(&self) -> Result<Witness, RelationError<A>> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        for (c, lane) in &self.class_lanes {
            if lane.cursor < lane.indices.len() {
                return Err(RelationError::CardinalityMismatch {
                    class: Some(*c),
                    left: lane.indices.len(),
                    right: lane.cursor,
                });
            }
        }
        for (_, lane) in &self.rest_lanes {
            if lane.cursor < lane.indices.len() {
                return Err(RelationError::CardinalityMismatch {
                    class: None,
                    left: lane.indices.len(),
                    right: lane.cursor,
                });
            }
        }
        Ok(Witness {
            max_deviation: self.max_dev,
            matched: self.matched,
        })
    }
}

/// Streaming `reference ≤_{δ,K} observed` monitor (Definition 2.9): class
/// actions may slide up to `δ` *into the future*; everything else keeps
/// exact times and relative order.
#[derive(Debug)]
pub struct StreamingDelta<'a, A: Action> {
    reference: &'a TimedTrace<A>,
    classes: &'a ClassMap<A>,
    delta: Duration,
    class_lanes: Vec<(usize, Lane)>,
    /// The unclassified remainder is order-forced as a whole: one lane.
    rest: Lane,
    max_dev: Duration,
    matched: usize,
    error: Option<RelationError<A>>,
}

impl<'a, A: Action> StreamingDelta<'a, A> {
    /// Creates a monitor for `reference ≤_{δ,K} ⟨observed stream⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative (as the offline matcher does).
    #[must_use]
    pub fn new(reference: &'a TimedTrace<A>, delta: Duration, classes: &'a ClassMap<A>) -> Self {
        assert!(!delta.is_negative(), "δ must be non-negative");
        let mut class_lanes: Vec<(usize, Lane)> = Vec::new();
        let mut rest = Lane::new();
        for (i, (a, _)) in reference.iter().enumerate() {
            match classes.class_of(a) {
                Some(c) => {
                    let lane = match class_lanes.iter_mut().find(|(k, _)| *k == c) {
                        Some((_, lane)) => lane,
                        None => {
                            class_lanes.push((c, Lane::new()));
                            &mut class_lanes.last_mut().expect("just pushed").1
                        }
                    };
                    lane.indices.push(i);
                }
                None => rest.indices.push(i),
            }
        }
        class_lanes.sort_by_key(|(c, _)| *c);
        StreamingDelta {
            reference,
            classes,
            delta,
            class_lanes,
            rest,
            max_dev: Duration::ZERO,
            matched: 0,
            error: None,
        }
    }

    /// Feeds the next observed `(action, time)` pair; sticky on violation.
    pub fn observe(&mut self, action: &A, time: Time) {
        if self.error.is_some() {
            return;
        }
        let class = self.classes.class_of(action);
        let lane = match class {
            Some(c) => match self.class_lanes.iter_mut().find(|(k, _)| *k == c) {
                Some((_, l)) => l,
                None => {
                    self.error = Some(RelationError::CardinalityMismatch {
                        class: Some(c),
                        left: 0,
                        right: 1,
                    });
                    return;
                }
            },
            None => &mut self.rest,
        };
        let Some(&i) = lane.indices.get(lane.cursor) else {
            self.error = Some(RelationError::CardinalityMismatch {
                class,
                left: lane.indices.len(),
                right: lane.indices.len() + 1,
            });
            return;
        };
        let pos = lane.cursor;
        lane.cursor += 1;
        let (ra, rt) = self.reference.get(i).expect("lane index in range");
        if ra != action {
            self.error = Some(RelationError::ActionMismatch {
                class,
                position: pos,
                left: ra.clone(),
                right: action.clone(),
            });
            return;
        }
        match class {
            Some(_) => {
                if time < rt {
                    self.error = Some(RelationError::IllegalShift {
                        action: ra.clone(),
                        left_time: rt,
                        right_time: time,
                    });
                    return;
                }
                let dev = time - rt;
                if dev > self.delta {
                    self.error = Some(RelationError::TimeBound {
                        action: ra.clone(),
                        left_time: rt,
                        right_time: time,
                        bound: self.delta,
                    });
                    return;
                }
                self.max_dev = self.max_dev.max(dev);
            }
            None => {
                if time != rt {
                    self.error = Some(RelationError::IllegalShift {
                        action: ra.clone(),
                        left_time: rt,
                        right_time: time,
                    });
                    return;
                }
            }
        }
        self.matched += 1;
    }

    /// Closes the observed stream and delivers the verdict. On success the
    /// [`Witness`] equals the offline
    /// [`delta_shifted`](psync_automata::relations::delta_shifted) one.
    ///
    /// # Errors
    ///
    /// The first violation observed, or a [`RelationError::CardinalityMismatch`]
    /// when the stream ended with reference actions unmatched.
    pub fn finish(&self) -> Result<Witness, RelationError<A>> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        for (c, lane) in &self.class_lanes {
            if lane.cursor < lane.indices.len() {
                return Err(RelationError::CardinalityMismatch {
                    class: Some(*c),
                    left: lane.indices.len(),
                    right: lane.cursor,
                });
            }
        }
        if self.rest.cursor < self.rest.indices.len() {
            return Err(RelationError::CardinalityMismatch {
                class: None,
                left: self.rest.indices.len(),
                right: self.rest.cursor,
            });
        }
        Ok(Witness {
            max_deviation: self.max_dev,
            matched: self.matched,
        })
    }
}

/// A boxed trace extractor, defaulting to [`Execution::t_trace`].
type ExtractFn<A> = Box<dyn Fn(&Execution<A>) -> TimedTrace<A> + Send + Sync>;

/// An [`Oracle`] wrapping [`StreamingEps`]: an execution holds iff its
/// extracted trace is `=_{ε,κ}` the stored reference trace. Conformance
/// sweeps and explorer campaigns consume it like any other oracle.
pub struct EpsTraceOracle<A: Action> {
    name: String,
    reference: TimedTrace<A>,
    eps: Duration,
    classes: ClassMap<A>,
    extract: ExtractFn<A>,
}

impl<A: Action> EpsTraceOracle<A> {
    /// Judges `reference =_{ε,κ} t_trace(execution)`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        reference: TimedTrace<A>,
        eps: Duration,
        classes: ClassMap<A>,
    ) -> Self {
        EpsTraceOracle {
            name: name.into(),
            reference,
            eps,
            classes,
            extract: Box::new(|e| e.t_trace()),
        }
    }

    /// Replaces the trace extractor (default [`Execution::t_trace`]).
    #[must_use]
    pub fn with_extractor(
        mut self,
        extract: impl Fn(&Execution<A>) -> TimedTrace<A> + Send + Sync + 'static,
    ) -> Self {
        self.extract = Box::new(extract);
        self
    }
}

impl<A: Action + Send + Sync> Oracle<A> for EpsTraceOracle<A> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn check(&self, exec: &Execution<A>) -> Verdict {
        let observed = (self.extract)(exec);
        let mut monitor = StreamingEps::new(&self.reference, self.eps, &self.classes);
        for (a, t) in observed.iter() {
            monitor.observe(a, t);
        }
        match monitor.finish() {
            Ok(_) => Verdict::Holds,
            Err(e) => Verdict::violated(e),
        }
    }
}

/// An [`Oracle`] wrapping [`StreamingDelta`]: an execution holds iff the
/// stored reference trace is `≤_{δ,K}` its extracted trace.
pub struct DeltaTraceOracle<A: Action> {
    name: String,
    reference: TimedTrace<A>,
    delta: Duration,
    classes: ClassMap<A>,
    extract: ExtractFn<A>,
}

impl<A: Action> DeltaTraceOracle<A> {
    /// Judges `reference ≤_{δ,K} t_trace(execution)`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        reference: TimedTrace<A>,
        delta: Duration,
        classes: ClassMap<A>,
    ) -> Self {
        DeltaTraceOracle {
            name: name.into(),
            reference,
            delta,
            classes,
            extract: Box::new(|e| e.t_trace()),
        }
    }

    /// Replaces the trace extractor (default [`Execution::t_trace`]).
    #[must_use]
    pub fn with_extractor(
        mut self,
        extract: impl Fn(&Execution<A>) -> TimedTrace<A> + Send + Sync + 'static,
    ) -> Self {
        self.extract = Box::new(extract);
        self
    }
}

impl<A: Action + Send + Sync> Oracle<A> for DeltaTraceOracle<A> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn check(&self, exec: &Execution<A>) -> Verdict {
        let observed = (self.extract)(exec);
        let mut monitor = StreamingDelta::new(&self.reference, self.delta, &self.classes);
        for (a, t) in observed.iter() {
            monitor.observe(a, t);
        }
        match monitor.finish() {
            Ok(_) => Verdict::Holds,
            Err(e) => Verdict::violated(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::relations::{delta_shifted, eps_equivalent};

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    type Tr = TimedTrace<&'static str>;

    fn per_node() -> ClassMap<&'static str> {
        ClassMap::by(|a: &&str| match a.chars().next() {
            Some('a') => Some(0),
            Some('b') => Some(1),
            _ => None,
        })
    }

    fn stream_eps(
        reference: &Tr,
        observed: &Tr,
        eps: Duration,
        classes: &ClassMap<&'static str>,
    ) -> Result<Witness, RelationError<&'static str>> {
        let mut m = StreamingEps::new(reference, eps, classes);
        for (a, tm) in observed.iter() {
            m.observe(a, tm);
        }
        m.finish()
    }

    #[test]
    fn streaming_eps_matches_offline_on_accept() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(10)), ("b1", t(11)), ("x", t(12))]);
        let right = Tr::from_pairs(vec![("b1", t(10)), ("a1", t(11)), ("x", t(13))]);
        let offline = eps_equivalent(&left, &right, ms(2), &classes).unwrap();
        let online = stream_eps(&left, &right, ms(2), &classes).unwrap();
        assert_eq!(offline, online);
    }

    #[test]
    fn streaming_eps_rejects_beyond_bound() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(10))]);
        let right = Tr::from_pairs(vec![("a1", t(13))]);
        assert!(stream_eps(&left, &right, ms(3), &classes).is_ok());
        let err = stream_eps(&left, &right, ms(2), &classes).unwrap_err();
        assert!(matches!(err, RelationError::TimeBound { .. }));
    }

    #[test]
    fn streaming_eps_detects_missing_and_extra_actions() {
        let classes = per_node();
        let two = Tr::from_pairs(vec![("a1", t(10)), ("a2", t(11))]);
        let one = Tr::from_pairs(vec![("a1", t(10))]);
        // Observed stream too short: caught at finish.
        let err = stream_eps(&two, &one, ms(5), &classes).unwrap_err();
        assert!(matches!(err, RelationError::CardinalityMismatch { .. }));
        // Observed stream too long: caught at the offending observe.
        let err = stream_eps(&one, &two, ms(5), &classes).unwrap_err();
        assert!(matches!(err, RelationError::CardinalityMismatch { .. }));
    }

    #[test]
    fn streaming_delta_matches_offline_on_accept() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("x", t(4)), ("a1", t(5)), ("b1", t(6))]);
        let right = Tr::from_pairs(vec![("x", t(4)), ("a1", t(6)), ("b1", t(7))]);
        let offline = delta_shifted(&left, &right, ms(2), &classes).unwrap();
        let mut m = StreamingDelta::new(&left, ms(2), &classes);
        for (a, tm) in right.iter() {
            m.observe(a, tm);
        }
        assert_eq!(offline, m.finish().unwrap());
    }

    #[test]
    fn streaming_delta_rejects_backward_shift_and_moved_unclassified() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(5))]);
        let mut m = StreamingDelta::new(&left, ms(2), &classes);
        m.observe(&"a1", t(4));
        assert!(matches!(
            m.finish().unwrap_err(),
            RelationError::IllegalShift { .. }
        ));

        let left = Tr::from_pairs(vec![("x", t(5))]);
        let mut m = StreamingDelta::new(&left, ms(2), &classes);
        m.observe(&"x", t(6));
        assert!(matches!(
            m.finish().unwrap_err(),
            RelationError::IllegalShift { .. }
        ));
    }

    #[test]
    fn verdicts_are_sticky() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(10)), ("a2", t(20))]);
        let mut m = StreamingEps::new(&left, ms(1), &classes);
        m.observe(&"a1", t(15)); // violation
        m.observe(&"a2", t(20)); // ignored
        assert!(m.finish().is_err());
    }
}
