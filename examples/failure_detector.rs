//! A timeout failure detector built with the paper's first design
//! technique (Section 7.1): design in the timed model, budget every
//! timeout against the *widened* delay bounds `[max(0, d₁−2ε), d₂+2ε]`,
//! and let Simulation 1 carry the algorithm to the clock model.
//!
//! The demo runs the same monitor twice against a maximally skewed pair of
//! clocks: once with the widened budget (accurate + complete), once with
//! the naive physical budget (falsely suspects a live node).
//!
//! Run with: `cargo run --example failure_detector`

use psync::prelude::*;
use psync_apps::heartbeat::{outcome, FdOp, FdParams, Heartbeater, Monitor};
use psync_net::MsgId;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// Worst-case delays: alternate min and max per message.
#[derive(Debug, Clone, Copy)]
struct AlternatingDelay;

impl DelayPolicy for AlternatingDelay {
    fn delay(
        &self,
        _src: NodeId,
        _dst: NodeId,
        id: MsgId,
        _at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        if id.0.is_multiple_of(2) {
            bounds.min()
        } else {
            bounds.max()
        }
    }
}

/// Slow (−ε) until `flip`, then fast (+ε): one adversarial clock jump.
struct JumpClock {
    flip: Time,
    eps: Duration,
}

impl ClockStrategy for JumpClock {
    fn next_clock(&mut self, ctx: psync_executor::AdvanceCtx) -> Time {
        let desired = if ctx.target < self.flip {
            ctx.target.saturating_add_duration(-self.eps)
        } else {
            ctx.target + self.eps
        };
        ctx.fit(desired)
    }
}

fn run(params: FdParams, eps: Duration, physical: DelayBounds, crash_at: Time) -> String {
    let topo = Topology::complete(2);
    let (target, monitor) = (NodeId(0), NodeId(1));
    let algorithms = vec![
        NodeSpec::new(target, Heartbeater::new(target, monitor, ms(10))),
        NodeSpec::new(monitor, Monitor::new(monitor, target, params)),
    ];
    let strategies: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(-eps, eps)),
        Box::new(JumpClock {
            flip: Time::ZERO + ms(95),
            eps,
        }),
    ];
    let crash = Script::new(
        vec![(crash_at, FdOp::Crash { node: target })],
        |op: &FdOp| matches!(op, FdOp::Suspect { .. }),
    );
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(AlternatingDelay)
    })
    .timed(crash)
    .horizon(crash_at + Duration::from_secs(1))
    .build();
    let trace = app_trace(&engine.run().expect("well-formed").execution);
    let o = outcome(&trace);
    match (o.false_suspicion(), o.detection_latency()) {
        (true, _) => format!(
            "FALSE SUSPICION at {} (crash only at {})",
            o.suspected_at.map_or("never".into(), |t| t.to_string()),
            o.crashed_at.map_or("never".into(), |t| t.to_string()),
        ),
        (false, Some(l)) => format!("accurate; crash detected after {l}"),
        (false, None) => "accurate; crash not yet detected".to_string(),
    }
}

fn main() {
    let physical = DelayBounds::new(ms(3), ms(7)).expect("valid");
    let eps = ms(1);
    let crash_at = Time::ZERO + ms(200);
    let period = ms(10);

    println!("links {physical}, ε = {eps}, heartbeat every {period}, crash at {crash_at}\n");

    let widened = physical.widen_for_skew(eps);
    let good = FdParams::timeout_for(period, widened, ms(1));
    println!(
        "technique #1 (budget vs widened {widened}): timeout = {}\n  → {}",
        good.timeout,
        run(good, eps, physical, crash_at)
    );

    let naive = FdParams::timeout_for(period, physical, Duration::from_micros(500));
    println!(
        "\nnaive (budget vs physical {physical}): timeout = {}\n  → {}",
        naive.timeout,
        run(naive, eps, physical, crash_at)
    );

    println!(
        "\nthe 4ε the widening adds ({} here) is exactly what the clock adversary can steal ✓",
        eps * 4
    );
}
