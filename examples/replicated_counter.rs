//! The "other shared memory objects" generalization (end of Section 6):
//! a replicated *counter* through the same Simulation 1 pipeline as the
//! register — same transformation, same latency formulas, object-specific
//! linearizability checked against the counter's sequential specification.
//!
//! Run with: `cargo run --example replicated_counter`

use psync::prelude::*;
use psync_register::object::Counter;
use psync_register::{AlgorithmSObj, ObjAction, ObjOp, ObjWorkload};
use psync_verify::{check_object_linearizable, extract_object_history, ObjOpKind};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn main() {
    let n = 4;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).expect("valid");
    let eps = ms(1);
    let seed = 4242;
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));
    println!(
        "replicated counter, n = {n}, links {physical}, ε = {eps}\n\
         formulas (same as Theorem 6.5): query = {}, increment = {}\n",
        params.read_latency(),
        params.write_latency()
    );

    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmSObj::new(i, Counter, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 4 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                2 => Box::new(DriftClock::new(800)),
                _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
            }
        })
        .collect();
    // Each node increments by its own power of ten, so the trace reads
    // like a checksum.
    let workload = ObjWorkload::<Counter>::new(
        &topo,
        seed,
        DelayBounds::new(ms(1), ms(4)).expect("valid"),
        6,
        |node, _k| 10i64.pow(node.0 as u32),
    );

    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(2))
    .build();

    let exec = engine.run().expect("well-formed").execution;
    let trace: psync_automata::TimedTrace<ObjAction<Counter>> = exec
        .events()
        .iter()
        .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
        .map(|e| (e.action.clone(), e.now))
        .collect();

    println!("history:");
    for (a, t) in trace.iter() {
        if let SysAction::App(op) = a {
            match op {
                ObjOp::Do { node, update } => println!("  {t}  {node} += {update}"),
                ObjOp::Done { node } => println!("  {t}  {node} done"),
                ObjOp::Query { node } => println!("  {t}  {node} query"),
                ObjOp::Answer { node, output } => println!("  {t}  {node} → {output}"),
                ObjOp::Apply { .. } => {}
            }
        }
    }

    let ops = extract_object_history::<Counter>(&trace, n).expect("well-formed");
    let verdict = check_object_linearizable(&Counter, &ops);
    println!("\nlinearizable against the counter spec? {verdict}");
    assert!(verdict.holds());

    let total: i64 = ops
        .iter()
        .filter_map(|o| match &o.kind {
            ObjOpKind::Update(u) if o.responded.is_some() => Some(*u),
            _ => None,
        })
        .sum();
    println!("sum of completed increments: {total} (no update lost, none duplicated)");
}
