//! The full two-simulation pipeline of Theorem 5.2:
//!
//! ```text
//! Algorithm S (timed model)
//!   │ Simulation 1: C(A,ε) + send/recv buffers         (Theorem 4.7)
//!   ▼
//! clock-model node A^c
//!   │ Simulation 2: M(A^c, ℓ) + TICK subsystem + T(·)  (Theorem 5.1)
//!   ▼
//! MMT-model node — finite step times, discrete clock readings
//! ```
//!
//! The demo runs the same scripted workload in the clock model (`D_C`) and
//! the realistic MMT model (`D_M`), prints both traces side by side, and
//! verifies the `≤_{δ,K}` relation with `δ = kℓ + 2ε + 3ℓ`.
//!
//! Run with: `cargo run --example mmt_pipeline`

use psync::prelude::*;
use psync_core::output_classes;

fn main() {
    let ms = Duration::from_millis;
    let us = Duration::from_micros;
    let n = 2;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(4)).expect("valid bounds");
    let eps = us(500);
    let ell = us(100);
    let k = n as i64;

    // Design the algorithm against the fully widened virtual link
    // (Theorem 5.2): d'₂ = d₂ + 2ε + kℓ.
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_composed(eps, k, ell).max(),
        c: ms(1),
        delta: us(50),
        read_slack: eps * 2,
    };
    let algorithms = || {
        topo.nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect::<Vec<_>>()
    };

    // One write and one read per node, far apart.
    let script: Vec<(Time, RegisterOp)> = vec![
        (
            Time::ZERO + ms(5),
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(7),
            },
        ),
        (Time::ZERO + ms(30), RegisterOp::Read { node: NodeId(1) }),
        (
            Time::ZERO + ms(60),
            RegisterOp::Write {
                node: NodeId(1),
                value: Value(8),
            },
        ),
        (Time::ZERO + ms(90), RegisterOp::Read { node: NodeId(0) }),
    ];
    let workload = || Script::new(script.clone(), |op: &RegisterOp| op.is_response());
    let horizon = Time::ZERO + ms(130);

    // ── D_C: the clock model, perfect clocks.
    let strategies = (0..n)
        .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
        .collect();
    let mut dc_engine = build_dc(&topo, physical, eps, algorithms(), strategies, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(workload())
    .horizon(horizon)
    .build();
    let dc = app_trace(&dc_engine.run().expect("D_C").execution);

    // ── D_M: the realistic model — steps take up to ℓ, the clock is only
    //    known through TICK readings every ℓ.
    let configs = (0..n)
        .map(|_| DmNodeConfig {
            ell,
            step_policy: StepPolicy::Lazy,
            tick: TickConfig::honest(eps, ell),
        })
        .collect();
    let mut dm_engine = build_dm(&topo, physical, algorithms(), configs, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(workload())
    .horizon(horizon)
    .build();
    let dm = app_trace(&dm_engine.run().expect("D_M").execution);

    println!(
        "{:<44} {:<44}",
        "D_C (clock model)", "D_M (realistic MMT model)"
    );
    for i in 0..dc.len().max(dm.len()) {
        let left = dc
            .get(i)
            .map_or(String::new(), |(a, t)| format!("{t}  {a:?}"));
        let right = dm
            .get(i)
            .map_or(String::new(), |(a, t)| format!("{t}  {a:?}"));
        println!("{left:<44} {right:<44}");
    }

    let bound = sim2_shift_bound(k, eps, ell);
    let classes = output_classes::<RegMsg, RegisterOp>(|op| op.is_response().then(|| op.node()));
    let w = psync_core::check_sim2(&dc, &dm, bound, &classes).expect("Theorem 5.1 relation");
    println!(
        "\n≤_δ,K check: {} actions matched, worst output shift {} (bound kℓ+2ε+3ℓ = {})",
        w.matched, w.max_deviation, bound
    );
    assert!(w.max_deviation <= bound);
    println!("the realistic node lags the clock-model node by at most the paper's bound ✓");
}
