//! The introduction's motivating use-case: *synchronizing activities of
//! different system components* with only partially synchronized clocks.
//!
//! N nodes agree to fire an action at a rendezvous time `T`. Designed in
//! the timed model they all fire at exactly `T`; transformed to the clock
//! model, each fires when *its clock* reads `T`, so the real firing times
//! spread over at most `2ε` — and Theorem 4.7 is precisely the statement
//! that this is the best uniform guarantee a transformation can give.
//!
//! Run with: `cargo run --example event_ordering`

use psync::prelude::*;

/// Fires `FIRE(node)` at exactly the rendezvous time, once.
#[derive(Debug, Clone)]
struct FireAt {
    node: NodeId,
    at: Time,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FireAction {
    Fire(NodeId),
}

impl Action for FireAction {
    fn name(&self) -> &'static str {
        "FIRE"
    }
}

impl TimedComponent for FireAt {
    type Action = FireAction;
    type State = bool; // fired?

    fn name(&self) -> String {
        format!("fire-at({}, {})", self.node, self.at)
    }

    fn initial(&self) -> bool {
        false
    }

    fn classify(&self, a: &FireAction) -> Option<ActionKind> {
        match a {
            FireAction::Fire(n) if *n == self.node => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn step(&self, fired: &bool, a: &FireAction, now: Time) -> Option<bool> {
        match a {
            FireAction::Fire(n) if *n == self.node && !fired && now >= self.at => Some(true),
            _ => None,
        }
    }

    fn enabled(&self, fired: &bool, now: Time) -> Vec<FireAction> {
        if !fired && now >= self.at {
            vec![FireAction::Fire(self.node)]
        } else {
            Vec::new()
        }
    }

    fn deadline(&self, fired: &bool, _now: Time) -> Option<Time> {
        (!fired).then_some(self.at)
    }
}

fn main() {
    let ms = Duration::from_millis;
    let n = 6;
    let eps = ms(2);
    let rendezvous = Time::ZERO + ms(100);

    // ── Timed model: everyone fires at exactly T.
    let mut builder = Engine::builder();
    for i in 0..n {
        builder = builder.timed(FireAt {
            node: NodeId(i),
            at: rendezvous,
        });
    }
    let run = builder
        .horizon(rendezvous + ms(10))
        .build()
        .run()
        .expect("timed run");
    println!("timed model: all {n} nodes fire at exactly {rendezvous}");
    for e in run.execution.events() {
        assert_eq!(e.now, rendezvous);
    }

    // ── Clock model: each node fires when *its* clock reads T.
    let mut builder = Engine::builder();
    for i in 0..n {
        let strategy: Box<dyn ClockStrategy> = match i % 4 {
            0 => Box::new(OffsetClock::new(eps, eps)),
            1 => Box::new(OffsetClock::new(-eps, eps)),
            2 => Box::new(DriftClock::new(1_000)),
            _ => Box::new(RandomWalkClock::new(i as u64, eps / 4)),
        };
        builder = builder.clock_node(ClockNode::new(format!("n{i}"), eps, strategy).with(
            ClockSim::new(FireAt {
                node: NodeId(i),
                at: rendezvous,
            }),
        ));
    }
    let run = builder
        .horizon(rendezvous + ms(10))
        .build()
        .run()
        .expect("clock run");

    println!("\nclock model (ε = {eps}): firing times spread inside [T−ε, T+ε]");
    let mut earliest = Time::MAX;
    let mut latest = Time::ZERO;
    for e in run.execution.events() {
        println!(
            "  {:?} fired at {}  (its clock read {})",
            e.action,
            e.now,
            e.clock.expect("node action").elapsed()
        );
        earliest = earliest.min(e.now);
        latest = latest.max(e.now);
    }
    let spread = latest - earliest;
    println!("\nobserved spread: {spread} (bound 2ε = {})", eps * 2);
    assert_eq!(run.execution.len(), n);
    assert!(spread <= eps * 2);
    assert!(earliest >= rendezvous - eps && latest <= rendezvous + eps);
    println!(
        "every node fired within ε of the rendezvous — Theorem 4.7's perturbation, visualized ✓"
    );
}
