//! Section 7.2's practical question: when does the receive buffering
//! actually do anything?
//!
//! The paper observes that the hold-back buffer `R_{ji,ε}` only ever
//! engages when a message can arrive at a clock time earlier than its send
//! stamp — impossible once the minimum network delay exceeds `2ε`. This
//! demo sweeps `d₁` against a fixed `ε` and reports, for each setting, how
//! many messages were held and for how long.
//!
//! Run with: `cargo run --example clock_skew_stress`

use psync::prelude::*;
use psync_core::analysis::{duration_stats, flights};
use psync_register::history;

fn main() {
    let us = Duration::from_micros;
    let ms = Duration::from_millis;
    let n = 3;
    let topo = Topology::complete(n);
    let eps = ms(1); // 2ε = 2 ms is the buffering threshold
    let seed = 7;

    println!(
        "ε = {eps} (threshold: buffering impossible once d₁ > 2ε = {})\n",
        eps * 2
    );
    println!(
        "{:>8}  {:>9} {:>9}  {:>12}  {:>12}",
        "d₁", "messages", "held", "max hold", "bound 2ε−d₁"
    );

    for d1_us in [0i64, 500, 1_000, 1_500, 1_999, 2_001, 3_000, 5_000] {
        let d1 = us(d1_us);
        let physical = DelayBounds::new(d1, d1 + ms(4)).expect("valid bounds");
        let params =
            RegisterParams::for_clock_model(&topo, physical, eps, ms(1), Duration::from_micros(50));
        let algorithms = topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect();
        // Extreme corners: a fast sender next to a slow receiver maximizes
        // the chance of "arrival before send" in clock time.
        let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
            .map(|i| -> Box<dyn ClockStrategy> {
                if i % 2 == 0 {
                    Box::new(OffsetClock::new(eps, eps))
                } else {
                    Box::new(OffsetClock::new(-eps, eps))
                }
            })
            .collect();
        let workload = ClosedLoopWorkload::new(&topo, seed, DelayBounds::exact(ms(2)), 10);
        let mut engine = build_dc(
            &topo,
            physical,
            eps,
            algorithms,
            strategies,
            |_, _| Box::new(MinDelay), // fastest messages stress hardest
        )
        .timed(workload)
        .horizon(Time::ZERO + Duration::from_secs(3))
        .build();
        let run = engine.run().expect("well-formed");

        // Sanity: the run is still correct.
        let ops = history::extract(&app_trace(&run.execution), n).expect("well-formed");
        assert!(check_linearizable(&ops, Value::INITIAL).holds());

        let all = flights(&run.execution);
        let holds: Vec<Duration> = all
            .values()
            .filter_map(psync_core::analysis::Flight::hold_time)
            .filter(|h| h.is_positive())
            .collect();
        let held = holds.len();
        let max_hold = duration_stats(holds).map_or(Duration::ZERO, |s| s.max);
        let bound = (eps * 2 - d1).max_zero();
        println!(
            "{:>8}  {:>9} {:>9}  {:>12}  {:>12}",
            d1.to_string(),
            all.len(),
            held,
            max_hold.to_string(),
            bound.to_string(),
        );
        assert!(
            max_hold <= bound,
            "hold time {max_hold} exceeded the analytical bound {bound}"
        );
        if d1 > eps * 2 {
            assert_eq!(held, 0, "buffering must never engage when d₁ > 2ε");
        }
    }

    println!("\nevery observed hold is within the 2ε − d₁ bound; none occur past the threshold ✓");
}
