//! The paper's application, end to end: a linearizable distributed
//! read-write register in the clock model (Theorem 6.5).
//!
//! Five nodes run the *transformed* Algorithm S over jittery links with
//! adversarially skewed clocks; a closed-loop client per node issues a
//! random mix of reads and writes. The demo prints the history, verifies
//! linearizability, and compares the measured latencies with the paper's
//! formulas: read `2ε + δ + c`, write `d₂ + 2ε − c`.
//!
//! Run with: `cargo run --example register_demo`

use psync::prelude::*;
use psync_core::analysis::duration_stats;
use psync_register::history;

fn main() {
    let ms = Duration::from_millis;
    let n = 5;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).expect("valid bounds");
    let eps = ms(1);
    let c = ms(2);
    let delta = Duration::from_micros(100);
    let seed = 2026;

    let params = RegisterParams::for_clock_model(&topo, physical, eps, c, delta);
    println!("n = {n}, links {physical}, ε = {eps}, c = {c}, δ = {delta}");
    println!(
        "paper formulas: read = 2ε+δ+c = {}, write = d₂+2ε−c = {}\n",
        params.read_latency(),
        params.write_latency()
    );

    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 4 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                2 => Box::new(DriftClock::new(800)),
                _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
            }
        })
        .collect();
    let workload = ClosedLoopWorkload::new(
        &topo,
        seed,
        DelayBounds::new(ms(1), ms(4)).expect("valid think time"),
        8,
    );

    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(2))
    .build();

    let run = engine.run().expect("well-formed system");
    let trace = app_trace(&run.execution);
    let ops = history::extract(&trace, n).expect("closed-loop clients alternate");

    println!("history ({} operations):", ops.len());
    for o in &ops {
        let lat = o.latency().map_or("open".to_string(), |l| l.to_string());
        match o.kind {
            history::OpKind::Read { returned } => {
                println!("  {}  read  → {returned}   ({lat})", o.node);
            }
            history::OpKind::Write { value } => {
                println!("  {}  write {value}        ({lat})", o.node);
            }
        }
    }

    let verdict = check_linearizable(&ops, Value::INITIAL);
    println!("\nlinearizable? {verdict}");
    assert!(verdict.holds());

    let (reads, writes) = history::latency_split(&ops);
    if let Some(s) = duration_stats(reads) {
        println!(
            "reads : {} samples, min {} / mean {} / max {}   (formula {})",
            s.count,
            s.min,
            s.mean,
            s.max,
            params.read_latency()
        );
    }
    if let Some(s) = duration_stats(writes) {
        println!(
            "writes: {} samples, min {} / mean {} / max {}   (formula {})",
            s.count,
            s.min,
            s.mean,
            s.max,
            params.write_latency()
        );
    }
    println!("\n(real-time latencies deviate from the clock-time formulas by at most 2ε)");
}
