//! Quickstart: the paper's idea in one file.
//!
//! 1. Write a tiny algorithm against the *timed automaton* model, where
//!    `now` is directly readable (here: a beeper that acts at exact times).
//! 2. Run it — the timed-model execution is the specification.
//! 3. Transform it mechanically with Simulation 1 (`C(A, ε)`) and run it
//!    on a *skewed clock* — the realistic execution.
//! 4. Check Theorem 4.7's promise with the `=_{ε,κ}` matcher: the
//!    realistic trace is the specification trace with every action moved
//!    by at most ε.
//!
//! Run with: `cargo run --example quickstart`

use psync::prelude::*;
use psync_automata::relations::{eps_equivalent, ClassMap};
use psync_automata::toys::Beeper;

fn main() {
    let period = Duration::from_millis(10);
    let eps = Duration::from_millis(2);
    let horizon = Time::ZERO + Duration::from_millis(65);

    // ── 1+2. The algorithm in the simple model: direct access to `now`.
    let mut timed_engine = Engine::builder()
        .timed(Beeper::new(period))
        .horizon(horizon)
        .build();
    let spec = timed_engine.run().expect("timed run").execution;
    println!("timed-model (specification) trace:");
    for (a, t) in spec.t_trace().iter() {
        println!("  {t}  {a:?}");
    }

    // ── 3. The same algorithm, mechanically transformed to run against a
    //       clock that may drift anywhere inside |clock − now| ≤ ε. We
    //       pick an adversarial strategy: permanently slow by the full ε.
    let node = ClockNode::new("n0", eps, OffsetClock::new(-eps, eps))
        .with(ClockSim::new(Beeper::new(period)));
    let mut clock_engine = Engine::builder().clock_node(node).horizon(horizon).build();
    let real = clock_engine.run().expect("clock run").execution;
    println!("\nclock-model (realistic) trace, slow clock (−ε):");
    for e in real.events() {
        println!(
            "  {}  {:?}   [node clock read {}]",
            e.now,
            e.action,
            e.clock.expect("node actions carry clocks").elapsed()
        );
    }

    // ── 4. Theorem 4.7: the realistic trace equals the specification
    //       trace up to an ε perturbation per action.
    let witness = eps_equivalent(&spec.t_trace(), &real.t_trace(), eps, &ClassMap::single())
        .expect("Theorem 4.7 in action");
    println!(
        "\n=_ε check: {} actions matched, worst perturbation {} (bound ε = {})",
        witness.matched, witness.max_deviation, eps
    );
    assert!(witness.max_deviation <= eps);
    println!("the realistic system implements the specification, ε-closely ✓");
}
